/**
 * @file
 * Fleet capacity planner: how many accelerators (and how many dollars)
 * does it take to serve a given traffic mix within every app's SLO?
 *
 * This is the level at which Lesson 3 actually operates: nobody buys
 * one chip — the fleet bill is chips x TCO, and chips per app is set
 * by throughput *under the latency SLO* (Lesson 10), derated for tail
 * headroom. The planner profiles each app on the chip, sizes the
 * per-app sub-fleet, and prices it with the TCO model.
 */
#ifndef T4I_FLEET_PLANNER_H
#define T4I_FLEET_PLANNER_H

#include <string>
#include <vector>

#include "src/arch/chip.h"
#include "src/common/status.h"
#include "src/models/zoo.h"
#include "src/serving/faults.h"
#include "src/tco/tco.h"

namespace t4i {

/** Traffic target for one application. */
struct AppDemand {
    App app;
    double qps = 0.0;  ///< inferences per second to serve
};

/** Planner knobs. */
struct FleetParams {
    /** Fraction of a chip's SLO-batch throughput usable in steady
     *  state (headroom for tails, maintenance, load imbalance). */
    double utilization_headroom = 0.6;
    /** dtype used for serving (bf16 unless the chip lacks it). */
    DType preferred_dtype = DType::kBf16;
    TcoParams tco;
};

/** Sizing of one app's sub-fleet. */
struct AppFleet {
    std::string app_name;
    double qps = 0.0;
    /** Per-chip serving capacity under the SLO, after headroom. */
    double capacity_per_chip = 0.0;
    int64_t chips = 0;
    /** True if the app cannot meet its SLO on this chip at any batch. */
    bool infeasible = false;
};

/** Whole-fleet plan. */
struct FleetPlan {
    std::string chip_name;
    std::vector<AppFleet> apps;
    int64_t total_chips = 0;
    double capex_usd = 0.0;
    double tco_usd = 0.0;
    double fleet_power_w = 0.0;   ///< TDP sum (provisioned power)
    bool feasible = true;
};

/**
 * Plans a fleet of @p chip serving @p demands. Apps whose SLO the chip
 * cannot meet at any batch are marked infeasible (and the plan
 * overall).
 */
StatusOr<FleetPlan> PlanFleet(const std::vector<AppDemand>& demands,
                              const ChipConfig& chip,
                              const FleetParams& params);

/**
 * A reference traffic mix: the QPS each production app receives when a
 * baseline fleet of @p baseline_chips TPUv4i is split by fleet_share.
 */
StatusOr<std::vector<AppDemand>> ReferenceTraffic(
    int64_t baseline_chips);

// --- N+k spare provisioning ------------------------------------------
//
// A fleet sized exactly for demand loses its SLO the moment one device
// dies; production fleets carry k spares per sub-fleet so the cell
// still holds p99 through single/double (or worse) device loss. The
// spare count follows from the FaultPlan's steady-state availability:
// with each chip up with probability a, k is the smallest spare count
// such that P(at most k of N+k chips are down) meets the target.

/** Redundancy sizing knobs. */
struct RedundancyParams {
    /** Probability the sub-fleet retains >= N usable chips. */
    double target_availability = 0.999;
    /** Safety bound on the spare search. */
    int64_t max_spares = 256;
    TcoParams tco;
};

/** Redundancy sizing of one app's sub-fleet. */
struct AppRedundancy {
    std::string app_name;
    int64_t base_chips = 0;   ///< demand-sized fleet (N)
    int64_t spare_chips = 0;  ///< provisioned spares (k)
    /** P(all N of N chips up) — what you get with zero spares. */
    double availability_no_spares = 0.0;
    /** P(>= N of N+k chips up) — with the provisioned spares. */
    double availability_with_spares = 0.0;
};

/** Whole-fleet redundancy plan: the price of availability. */
struct RedundancyPlan {
    double chip_availability = 1.0;  ///< steady-state, per chip
    std::vector<AppRedundancy> apps;
    int64_t total_spares = 0;
    double spare_capex_usd = 0.0;
    double spare_tco_usd = 0.0;
    /** Spare TCO as a fraction of the demand-sized fleet's TCO. */
    double tco_overhead_fraction = 0.0;
};

/**
 * P(at least @p needed of @p total chips are up) when each chip is
 * independently up with probability @p availability. Exact binomial
 * tail, evaluated in log space so 10k-chip fleets don't overflow.
 */
double CellAvailability(int64_t needed, int64_t total,
                        double availability);

/**
 * Smallest spare count k such that an N+k sub-fleet keeps >= @p n
 * chips up with probability >= @p target. Returns max_spares + 1 when
 * even that many spares cannot reach the target.
 */
int64_t NPlusKSpares(int64_t n, double availability, double target,
                     int64_t max_spares = 256);

/**
 * Sizes N+k spares for every feasible app in @p plan under the
 * failure process of @p faults, and prices the redundancy with the
 * TCO model of @p chip. Infeasible apps are skipped.
 */
StatusOr<RedundancyPlan> PlanRedundancy(const FleetPlan& plan,
                                        const ChipConfig& chip,
                                        const FaultPlan& faults,
                                        const RedundancyParams& params);

}  // namespace t4i

#endif  // T4I_FLEET_PLANNER_H
