/**
 * @file
 * Deployment-velocity model (Lesson 4: backwards ML compatibility
 * helps deploy DNNs quickly).
 *
 * Shipping a newly trained model to production takes compile +
 * validation + canary time on any chip. On an int8-only chip it also
 * takes post-training quantization (calibration data collection, scale
 * search, accuracy sign-off) — and when PTQ cannot hold accuracy on
 * the model's activation statistics, quantization-aware retraining.
 * The decision is driven by a *measured* mechanism, not a coin flip:
 * the functional executor quantizes a class-representative proxy of
 * the app end-to-end and compares the int8 output SQNR against the
 * accuracy bar.
 */
#ifndef T4I_FLEET_DEPLOYMENT_H
#define T4I_FLEET_DEPLOYMENT_H

#include <string>

#include "src/arch/chip.h"
#include "src/common/status.h"
#include "src/models/zoo.h"

namespace t4i {

/** Engineering-time assumptions (calendar days unless noted). */
struct DeploymentParams {
    double compile_hours = 4.0;        ///< XLA compile + perf triage
    double validation_days = 2.0;      ///< offline quality eval
    double canary_days = 3.0;          ///< staged production rollout
    double ptq_calibration_days = 5.0; ///< data capture + scale search
    double qat_retraining_days = 21.0; ///< quantization-aware retrain
    /** End-to-end int8 SQNR (dB) below which PTQ fails sign-off. */
    double required_sqnr_db = 33.0;
};

/** The deployment path for one app on one chip. */
struct DeploymentPlan {
    std::string app_name;
    std::string chip_name;
    DType deployed_dtype = DType::kBf16;
    bool needs_ptq = false;
    bool needs_qat = false;
    /** Measured int8 end-to-end SQNR of the class proxy (dB);
     *  meaningful when needs_ptq. */
    double measured_sqnr_db = 0.0;
    /** Total calendar days from trained checkpoint to full rollout. */
    double days = 0.0;
};

/**
 * Plans the deployment of @p app on @p chip. Fails only when the chip
 * cannot run the model under any supported dtype.
 */
StatusOr<DeploymentPlan> PlanDeployment(const App& app,
                                        const ChipConfig& chip,
                                        const DeploymentParams& params);

/**
 * The small class-representative proxy graph used for the PTQ fidelity
 * measurement (exposed for tests and the A10 bench).
 */
Graph DomainProxyGraph(AppDomain domain);

}  // namespace t4i

#endif  // T4I_FLEET_DEPLOYMENT_H
