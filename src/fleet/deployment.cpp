#include "src/fleet/deployment.h"

#include "src/tensor/executor.h"

namespace t4i {

Graph
DomainProxyGraph(AppDomain domain)
{
    // Small enough to execute functionally in milliseconds, structured
    // enough to carry the domain's activation statistics.
    switch (domain) {
      case AppDomain::kMlp:
        return BuildMlp("proxy_mlp", 2000, 16, 8, 128, {64, 32});
      case AppDomain::kCnn:
        return BuildSmallCnn("proxy_cnn");
      case AppDomain::kRnn:
        return BuildLstmStack("proxy_rnn", 1000, 64, 2, 64, 8);
      case AppDomain::kBert:
        return BuildBert("proxy_bert", 2, 64, 2, 128, 8, 500);
    }
    return BuildSmallCnn("proxy");
}

StatusOr<DeploymentPlan>
PlanDeployment(const App& app, const ChipConfig& chip,
               const DeploymentParams& params)
{
    DeploymentPlan plan;
    plan.app_name = app.name;
    plan.chip_name = chip.name;
    plan.days = params.compile_hours / 24.0 + params.validation_days +
                params.canary_days;

    if (chip.supports_bf16) {
        // Lesson 4's happy path: the trained checkpoint ships as-is.
        plan.deployed_dtype = DType::kBf16;
        return plan;
    }
    if (!chip.supports_int8) {
        return Status::FailedPrecondition(
            chip.name + " supports no inference dtype");
    }

    // int8-only: the quantization detour. Measure PTQ fidelity on the
    // class proxy with the functional executor.
    plan.deployed_dtype = DType::kInt8;
    plan.needs_ptq = true;
    plan.days += params.ptq_calibration_days;

    Graph proxy = DomainProxyGraph(app.domain);
    auto loss = PrecisionLoss(proxy, MatmulPrecision::kInt8,
                              /*batch=*/4, /*seed=*/20150512);
    T4I_RETURN_IF_ERROR(loss.status());
    plan.measured_sqnr_db = loss.value().sqnr_db;

    if (plan.measured_sqnr_db < params.required_sqnr_db) {
        plan.needs_qat = true;
        plan.days += params.qat_retraining_days;
    }
    return plan;
}

}  // namespace t4i
