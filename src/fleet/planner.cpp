#include "src/fleet/planner.h"

#include <cmath>

#include "src/arch/catalog.h"
#include "src/common/strings.h"
#include "src/compiler/compiler.h"
#include "src/obs/registry.h"
#include "src/serving/latency_table.h"
#include "src/sim/machine.h"

namespace t4i {
namespace {

/** Per-chip SLO-constrained capacity of @p app on @p chip (inf/s),
 *  or 0 when infeasible. */
StatusOr<double>
CapacityUnderSlo(const App& app, const ChipConfig& chip, DType dtype)
{
    LatencyTable table;
    for (int64_t batch = 1; batch <= 256; batch *= 2) {
        CompileOptions opts;
        opts.batch = batch;
        opts.dtype = dtype;
        auto prog = Compile(app.graph, chip, opts);
        if (!prog.ok()) {
            // Capacity limits can stop the ladder early; what we have
            // so far still defines the feasible range.
            if (table.empty()) return prog.status();
            break;
        }
        auto result = Simulate(prog.value(), chip);
        T4I_RETURN_IF_ERROR(result.status());
        table.AddPoint(batch, result.value().latency_s);
    }
    const double slo_s = app.slo_ms * 1e-3;
    const int64_t batch = table.MaxBatchUnderSlo(slo_s);
    if (batch <= 0) return 0.0;
    return table.ThroughputAt(batch);
}

}  // namespace

StatusOr<FleetPlan>
PlanFleet(const std::vector<AppDemand>& demands, const ChipConfig& chip,
          const FleetParams& params)
{
    if (demands.empty()) {
        return Status::InvalidArgument("no traffic to plan for");
    }
    if (params.utilization_headroom <= 0.0 ||
        params.utilization_headroom > 1.0) {
        return Status::InvalidArgument("headroom must be in (0, 1]");
    }
    const DType dtype = chip.supports_bf16 && params.preferred_dtype !=
                                                  DType::kInt8
                            ? params.preferred_dtype
                            : DType::kInt8;

    FleetPlan plan;
    plan.chip_name = chip.name;
    auto tco = ComputeTco(chip, params.tco);
    T4I_RETURN_IF_ERROR(tco.status());

    for (const auto& demand : demands) {
        if (demand.qps <= 0.0) {
            return Status::InvalidArgument("non-positive qps for " +
                                           demand.app.name);
        }
        AppFleet entry;
        entry.app_name = demand.app.name;
        entry.qps = demand.qps;
        auto capacity = CapacityUnderSlo(demand.app, chip, dtype);
        T4I_RETURN_IF_ERROR(capacity.status());
        entry.capacity_per_chip =
            capacity.value() * params.utilization_headroom;
        if (entry.capacity_per_chip <= 0.0) {
            entry.infeasible = true;
            plan.feasible = false;
        } else {
            entry.chips = static_cast<int64_t>(
                std::ceil(demand.qps / entry.capacity_per_chip));
            plan.total_chips += entry.chips;
            plan.capex_usd +=
                static_cast<double>(entry.chips) * tco.value().capex_usd;
            plan.tco_usd +=
                static_cast<double>(entry.chips) * tco.value().tco_usd;
            plan.fleet_power_w +=
                static_cast<double>(entry.chips) * chip.tdp_w;
        }
        plan.apps.push_back(std::move(entry));
    }

    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    reg.GetCounter("fleet.plans")->Increment();
    for (const auto& entry : plan.apps) {
        const obs::Labels labels = {{"app", entry.app_name}};
        if (entry.infeasible) {
            reg.GetCounter("fleet.infeasible_apps")->Increment();
            continue;
        }
        reg.GetGauge("fleet.chips", labels)
            ->Set(static_cast<double>(entry.chips));
        reg.GetGauge("fleet.capacity_per_chip", labels)
            ->Set(entry.capacity_per_chip);
    }
    reg.GetGauge("fleet.total_chips")
        ->Set(static_cast<double>(plan.total_chips));
    reg.GetGauge("fleet.tco_usd")->Set(plan.tco_usd);
    reg.GetGauge("fleet.capex_usd")->Set(plan.capex_usd);
    reg.GetGauge("fleet.power_w")->Set(plan.fleet_power_w);
    return plan;
}

double
CellAvailability(int64_t needed, int64_t total, double availability)
{
    if (needed <= 0) return 1.0;
    if (total < needed) return 0.0;
    if (availability >= 1.0) return 1.0;
    if (availability <= 0.0) return 0.0;
    // P(X >= needed), X ~ Binomial(total, a) == P(down <= total-needed).
    const double log_a = std::log(availability);
    const double log_q = std::log(1.0 - availability);
    const double n = static_cast<double>(total);
    double prob = 0.0;
    const int64_t max_down = total - needed;
    for (int64_t j = 0; j <= max_down; ++j) {
        const double jd = static_cast<double>(j);
        const double log_choose = std::lgamma(n + 1.0) -
                                  std::lgamma(jd + 1.0) -
                                  std::lgamma(n - jd + 1.0);
        prob += std::exp(log_choose + (n - jd) * log_a + jd * log_q);
    }
    return std::min(prob, 1.0);
}

int64_t
NPlusKSpares(int64_t n, double availability, double target,
             int64_t max_spares)
{
    for (int64_t k = 0; k <= max_spares; ++k) {
        if (CellAvailability(n, n + k, availability) >= target) {
            return k;
        }
    }
    return max_spares + 1;
}

StatusOr<RedundancyPlan>
PlanRedundancy(const FleetPlan& plan, const ChipConfig& chip,
               const FaultPlan& faults, const RedundancyParams& params)
{
    if (params.target_availability <= 0.0 ||
        params.target_availability >= 1.0) {
        return Status::InvalidArgument(
            "target availability must be in (0, 1)");
    }
    if (params.max_spares < 0) {
        return Status::InvalidArgument("max_spares must be >= 0");
    }
    auto tco = ComputeTco(chip, params.tco);
    T4I_RETURN_IF_ERROR(tco.status());

    RedundancyPlan redundancy;
    redundancy.chip_availability = SteadyStateAvailability(faults);
    double base_tco = 0.0;
    for (const auto& app : plan.apps) {
        if (app.infeasible || app.chips < 1) continue;
        AppRedundancy entry;
        entry.app_name = app.app_name;
        entry.base_chips = app.chips;
        entry.availability_no_spares = CellAvailability(
            app.chips, app.chips, redundancy.chip_availability);
        const int64_t k = NPlusKSpares(
            app.chips, redundancy.chip_availability,
            params.target_availability, params.max_spares);
        if (k > params.max_spares) {
            return Status::ResourceExhausted(StrFormat(
                "app %s cannot reach %.4f availability within %lld "
                "spares",
                app.app_name.c_str(), params.target_availability,
                static_cast<long long>(params.max_spares)));
        }
        entry.spare_chips = k;
        entry.availability_with_spares = CellAvailability(
            app.chips, app.chips + k, redundancy.chip_availability);
        redundancy.total_spares += k;
        redundancy.spare_capex_usd +=
            static_cast<double>(k) * tco.value().capex_usd;
        redundancy.spare_tco_usd +=
            static_cast<double>(k) * tco.value().tco_usd;
        base_tco +=
            static_cast<double>(app.chips) * tco.value().tco_usd;
        redundancy.apps.push_back(std::move(entry));
    }
    redundancy.tco_overhead_fraction =
        base_tco > 0.0 ? redundancy.spare_tco_usd / base_tco : 0.0;

    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    reg.GetGauge("fleet.chip_availability")
        ->Set(redundancy.chip_availability);
    reg.GetGauge("fleet.spare_chips")
        ->Set(static_cast<double>(redundancy.total_spares));
    reg.GetGauge("fleet.redundancy_tco_usd")
        ->Set(redundancy.spare_tco_usd);
    reg.GetGauge("fleet.redundancy_overhead_fraction")
        ->Set(redundancy.tco_overhead_fraction);
    return redundancy;
}

StatusOr<std::vector<AppDemand>>
ReferenceTraffic(int64_t baseline_chips)
{
    if (baseline_chips < 1) {
        return Status::InvalidArgument("need at least one chip");
    }
    const ChipConfig v4i = Tpu_v4i();
    std::vector<AppDemand> demands;
    for (auto& app : ProductionApps()) {
        auto capacity = CapacityUnderSlo(app, v4i, DType::kBf16);
        T4I_RETURN_IF_ERROR(capacity.status());
        // The app owns `fleet_share` of the baseline fleet's cycles,
        // served at 60% utilization.
        const double chips =
            app.fleet_share * static_cast<double>(baseline_chips);
        AppDemand demand;
        demand.qps = 0.6 * capacity.value() * chips;
        demand.app = std::move(app);
        demands.push_back(std::move(demand));
    }
    return demands;
}

}  // namespace t4i
