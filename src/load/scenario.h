/**
 * @file
 * Declarative load scenarios: one artifact binding an arrival
 * program (generators or trace replay), a fault/outage plan, inline
 * alert rules + SLO objectives, and the *expected* alert set — the
 * assertion that makes "which policy breaks first" a CI-checkable
 * fact instead of a bench anecdote.
 *
 * File grammar (one directive per line, '#' comments, key=value
 * options after the directive word):
 *
 *   scenario NAME
 *   duration S            # sim seconds (default 2.0)
 *   seed N                # run seed; every substream derives from it
 *   cells N               # cluster width (default 1)
 *   devices N             # devices per cell (default 1)
 *   policy NAME           # round-robin | least-loaded | p2c | affinity
 *   control-interval S    # router control-plane cadence
 *   health-interval S     # health-check cadence
 *   window S              # time-series window width
 *   error-budget F        # default SLO error budget
 *   tenant NAME [load=F] [rate=R] [deadline=S] [max-queue=N]
 *               [priority=N]
 *       # load= is a fraction of one cell's SLO-batch capacity
 *       # (resolved by the runner); rate= is absolute requests/s.
 *   arrivals poisson      # generator program (default)
 *   arrivals trace PATH [mode=open|closed] [time-scale=F]
 *            [rate-scale=F] [repeat=N] [clients=N] [think=S]
 *   flash-crowd [tenant=NAME] at=S ramp=S hold=S mult=F
 *   burst shock-rate=F shock-mult=F shock-dur=S
 *   sizes pareto alpha=F [xm=F] [max=F]
 *   sizes lognormal sigma=F [mu=F] [max=F]
 *   retry-storm timeout=S backoff=fixed|exponential|exp-jitter
 *               base=S [max-retries=N]
 *   outage cell=N at=S [repair=S]
 *   alert NAME SELECTOR CMP THRESHOLD [for S]   # alerts.h grammar
 *   slo NAME tenant=T ...                       # slo.h grammar
 *   expect ALERT_NAME     # must be firing at run end
 *   expect-not ALERT_NAME # documents a rule that must stay quiet
 *                         # (every un-expected rule must be quiet
 *                         # anyway; this line is a readable pin)
 *   expect-dominant COMPONENT [tenant=NAME]
 *                         # tail forensics: the critical-path
 *                         # component dominating the p99 band
 *                         # (queue | batch | execute | retry |
 *                         # route | backoff | an engine group);
 *                         # tenant defaults to the cross-tenant
 *                         # aggregate
 *
 * LLM serving program (src/llm): the `llm` directive switches the
 * scenario onto the continuous-batching LLM cell (tenant rate= must
 * be absolute, cells must be 1):
 *
 *   llm model=NAME [mode=continuous|static|disagg] [max-batch=N]
 *       [max-queue=N] [kv-cmem-mb=F] [kv-hbm-mb=F] [ttft-slo=S]
 *       [tpot-slo=S]
 *   prompt tenant=NAME mean=N [sigma=F] [max=N]   # prompt tokens
 *   output tenant=NAME mean=N [sigma=F] [max=N]   # output tokens
 *   context-flood at=S dur=S mult=F [tenant=NAME] # prompt shock
 *   shared-prefix tenant=NAME frac=F len=N        # prefix-cache hits
 *
 * `t4sim_cli check --scenario FILE` runs the scenario and exits 0
 * iff the fired alert set equals the expected set exactly and the
 * request-conservation books close.
 */
#ifndef T4I_LOAD_SCENARIO_H
#define T4I_LOAD_SCENARIO_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/load/arrivals.h"

namespace t4i {
namespace load {

/** One tenant declared by a scenario. */
struct ScenarioTenant {
    std::string name;
    /** Fraction of one cell's SLO-batch capacity (resolved to an
     *  absolute rate by the runner); used when rate == 0. */
    double load = 0.5;
    /** Absolute arrival rate (requests/s); wins over load. */
    double rate = 0.0;
    /** Per-request deadline; 0 defers to the runner's default. */
    double deadline_s = 0.0;
    int64_t max_queue = 0;  // 0 = runner default
    int priority = 0;
};

/** The arrival program half of a scenario. */
struct ArrivalProgram {
    enum class Kind { kGenerator, kTrace };
    Kind kind = Kind::kGenerator;

    // Generator program.
    std::vector<FlashCrowd> crowds;
    BurstShock shock;
    SizeDistribution sizes;

    // Trace program.
    std::string trace_path;
    ReplayOptions replay;

    // Optional retry-storm wrapper around either program.
    bool retry_storm = false;
    RetryPolicy retry;
};

/** One scripted cell outage. */
struct ScenarioOutage {
    int cell = 0;
    double fail_at_s = 0.0;
    double repair_at_s = -1.0;  // < 0 = never repairs
};

/** Per-tenant LLM traffic shape (parallel to Scenario::tenants). */
struct LlmTenantProgram {
    double prompt_mean = 256.0;
    double prompt_sigma = 0.0;
    double prompt_max = 4096.0;
    double output_mean = 32.0;
    double output_sigma = 0.0;
    double output_max = 1024.0;
    double shared_prefix_frac = 0.0;
    double shared_prefix_len = 0.0;
};

/** One prompt-length shock (`context-flood` directive). */
struct LlmContextFlood {
    double at_s = 0.0;
    double dur_s = 0.0;
    double mult = 1.0;
    int tenant = -1;  ///< -1 = every tenant
};

/**
 * LLM autoregressive-serving program (`llm` directive present). The
 * scenario runs through llm::RunLlmScenario instead of the request-
 * serving cluster: token-level load (prompt/output length
 * distributions, long-context floods, shared-prefix correlation) on
 * a continuous-batching cell with KV-cache residency.
 */
struct LlmProgram {
    bool enabled = false;
    std::string model = "TINYLM";
    /** continuous | static | disagg. */
    std::string mode = "continuous";
    int64_t max_batch = 8;
    int64_t max_queue = 256;
    /** KV tier budgets in MiB; < 0 derives them from the chip. */
    double kv_cmem_mb = -1.0;
    double kv_hbm_mb = -1.0;
    /** Token SLOs applied to every tenant. */
    double ttft_slo_s = 0.050;
    double tpot_slo_s = 0.005;
    /** One entry per scenario tenant (defaults when undeclared). */
    std::vector<LlmTenantProgram> tenants;
    std::vector<LlmContextFlood> floods;
};

/** A parsed scenario file. */
struct Scenario {
    std::string name = "scenario";
    double duration_s = 2.0;
    uint64_t seed = 42;
    int cells = 1;
    int devices_per_cell = 1;
    std::string policy = "least-loaded";
    double control_interval_s = 0.05;
    double health_interval_s = 0.1;
    double window_s = 0.05;
    double error_budget = 0.01;

    std::vector<ScenarioTenant> tenants;
    ArrivalProgram program;
    std::vector<ScenarioOutage> outages;
    LlmProgram llm;

    /** Raw rule / objective lines, fed verbatim to the engines. */
    std::string alert_rules_text;
    std::string slo_objectives_text;

    /** Rule names that must be firing at run end. */
    std::vector<std::string> expect;
    /** Rule names pinned quiet (documentation; checked for overlap
     *  with `expect` at parse time). */
    std::vector<std::string> expect_not;
    /** Critical-path component that must dominate the p99 band
     *  (empty = no tail contract). */
    std::string expect_dominant;
    /** Tenant the dominant contract grades against; "" is the
     *  cross-tenant aggregate. */
    std::string expect_dominant_tenant;
};

/** Parses the grammar above. Errors carry the offending line. */
StatusOr<Scenario> ParseScenario(const std::string& text);

/** ReadTextFile + ParseScenario; relative trace paths resolve
 *  against the scenario file's directory. */
StatusOr<Scenario> ParseScenarioFile(const std::string& path);

/**
 * Builds the scenario's arrival source. @p tenant_rates are the
 * resolved absolute rates (one per scenario tenant, in order);
 * @p tenant_names resolve trace tenant references. The horizon is
 * the scenario duration: nothing is emitted at or past it.
 */
StatusOr<std::unique_ptr<ArrivalSource>> BuildArrivalSource(
    const Scenario& scenario,
    const std::vector<double>& tenant_rates,
    const std::vector<std::string>& tenant_names);

}  // namespace load
}  // namespace t4i

#endif  // T4I_LOAD_SCENARIO_H
