/**
 * @file
 * Pluggable arrival sources: trace replay and adversarial load
 * generators for the serving stack (ROADMAP item 4).
 *
 * An ArrivalSource is a pull-based stream of timestamped requests
 * that the single-cell loop (`ServeCell` with
 * `Options::arrival_source`) or the cluster router
 * (`ClusterConfig::arrival_source`) drains in simulated-time order.
 * The driver peeks the next arrival to schedule its event, takes it
 * when the clock reaches it, and feeds back every request's terminal
 * event (`OnRequestEnd`) so closed-loop sources (response-gated
 * clients, retry storms) can schedule their next emission.
 *
 * Contract:
 *  - Emissions are nondecreasing in time and strictly below the
 *    horizon passed at construction; anything that would land at or
 *    past the horizon is silently dropped inside the source (so the
 *    driver never has to discard, and bookkeeping stays honest:
 *    every taken arrival is injected).
 *  - `Exhausted()` == true means no arrival will ever be emitted
 *    again. `Peek()` empty with `Exhausted()` == false means the
 *    source is waiting on feedback for in-flight requests; the
 *    driver must keep advancing the simulation and delivering
 *    `OnRequestEnd` until the source drains.
 *  - Arrivals carry an `id` (assigned at Take) that the driver
 *    echoes back in `OnRequestEnd`; id 0 means "no feedback wanted".
 *
 * The generators model the load shapes that actually break serving
 * fleets: flash crowds (ramped rate steps), correlated tenant bursts
 * (a shared shock process multiplying every tenant's rate at once),
 * heavy-tailed request sizes (Pareto / lognormal), and client retry
 * storms — downstream clients re-enqueueing failed or timed-out
 * requests with configurable backoff, the classic metastable
 * feedback loop. Every stochastic stream is seeded via
 * `SubstreamSeed` from one run seed.
 */
#ifndef T4I_LOAD_ARRIVALS_H
#define T4I_LOAD_ARRIVALS_H

#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"

namespace t4i {
namespace load {

/** One request emitted by an arrival source. */
struct LoadArrival {
    /** Emission time (sim seconds). */
    double t_s = 0.0;
    /** Tenant index into the run's tenant list. */
    size_t tenant = 0;
    /** Relative request size; execution time scales with the largest
     *  size in a batch. 1.0 is the profiled nominal request. */
    double size = 1.0;
    /** Per-request deadline override; 0 inherits the tenant's. */
    double deadline_s = 0.0;
    /** True when this is a client re-enqueue of a failed request. */
    bool client_retry = false;
    /** Feedback handle (0 = source does not want feedback). */
    uint64_t id = 0;
};

/** Pull-based arrival stream; see file comment for the contract. */
class ArrivalSource {
  public:
    virtual ~ArrivalSource() = default;

    /** Copies the next emission into @p out without consuming it.
     *  Returns false when nothing is currently pending. */
    virtual bool Peek(LoadArrival* out) = 0;

    /** Consumes and returns the next emission (must be pending).
     *  Assigns the definitive feedback id. */
    virtual LoadArrival Take() = 0;

    /** Terminal-event feedback for a taken arrival: @p success means
     *  the request completed (SLO miss included); drops and sheds are
     *  failures. Unknown ids are ignored. */
    virtual void OnRequestEnd(uint64_t id, double end_s, bool success)
    {
        (void)id;
        (void)end_s;
        (void)success;
    }

    /** True when the stream can never emit again. */
    virtual bool Exhausted() const = 0;
};

// ---------------------------------------------------------------------
// Adversarial generators
// ---------------------------------------------------------------------

/** A ramped rate step: the tenant's rate is multiplied by a factor
 *  that ramps 1 -> mult over [start, start+ramp], holds at mult for
 *  hold seconds, then ramps back down over another ramp interval.
 *  ramp == 0 is a hard step (the "spike" variant). */
struct FlashCrowd {
    /** Tenant index, or -1 to hit every tenant at once. */
    int tenant = -1;
    double start_s = 0.0;
    double ramp_s = 0.0;
    double hold_s = 0.0;
    double mult = 1.0;
};

/** Correlated tenant bursts: a shared Poisson shock process whose
 *  active intervals multiply *every* tenant's rate simultaneously
 *  (the common-cause burst that independent per-tenant Poisson
 *  arrivals can never produce). */
struct BurstShock {
    /** Shocks per second (Poisson process of shock starts). */
    double shock_rate = 0.0;
    /** Rate multiplier while a shock is active. */
    double shock_mult = 1.0;
    /** Duration of each shock. */
    double shock_dur_s = 0.0;
};

/** Heavy-tailed request-size distribution attached to a generator. */
struct SizeDistribution {
    enum class Kind { kConstant, kPareto, kLognormal };
    Kind kind = Kind::kConstant;
    /** Pareto shape (tail index); smaller = heavier tail. */
    double alpha = 1.5;
    /** Pareto scale (minimum size). */
    double xm = 1.0;
    /** Lognormal log-mean / log-stddev. */
    double mu = 0.0;
    double sigma = 0.0;
    /** Hard clamp so one sample cannot stall the sim. */
    double max = 64.0;
};

/** Per-tenant generator parameters. */
struct GeneratorTenant {
    /** Baseline arrival rate (requests/s). */
    double rate = 0.0;
    /** Per-request deadline override carried on emissions; 0 defers
     *  to the tenant config. */
    double deadline_s = 0.0;
};

/**
 * Modulated-Poisson generator: per-tenant thinned Poisson arrivals
 * whose instantaneous rate is baseline * flash-crowd factor * shared
 * shock factor, with optional heavy-tailed sizes. Emits in global
 * time order across tenants.
 */
class GeneratorSource : public ArrivalSource {
  public:
    GeneratorSource(std::vector<GeneratorTenant> tenants,
                    std::vector<FlashCrowd> crowds, BurstShock shock,
                    SizeDistribution sizes, uint64_t seed,
                    double horizon_s);

    bool Peek(LoadArrival* out) override;
    LoadArrival Take() override;
    bool Exhausted() const override;

    /** Instantaneous rate multiplier for @p tenant at @p t (exposed
     *  for tests). */
    double RateFactor(size_t tenant, double t_s) const;

  private:
    void DrawNext(size_t tenant);

    struct TenantState {
        GeneratorTenant cfg;
        Rng rng;
        Rng size_rng;
        double next_s = 0.0;
        bool dead = false;
    };

    std::vector<TenantState> tenants_;
    std::vector<FlashCrowd> crowds_;
    BurstShock shock_;
    SizeDistribution sizes_;
    /** Precomputed [start, end) shock intervals, time-sorted. */
    std::vector<std::pair<double, double>> shocks_;
    double horizon_s_ = 0.0;
    uint64_t next_id_ = 0;
};

/** Draws one size sample from @p dist using @p rng. */
double DrawSize(const SizeDistribution& dist, Rng& rng);

// ---------------------------------------------------------------------
// Trace replay
// ---------------------------------------------------------------------

/** One parsed trace record. */
struct TraceRecord {
    double t_s = 0.0;
    size_t tenant = 0;
    double size = 1.0;
    double deadline_s = 0.0;
};

/**
 * Parses a request trace. Two formats, auto-detected per line:
 *  - JSONL: `{"t": 0.01, "tenant": "web", "size": 1.0,
 *    "deadline": 0.05}` (tenant may also be a numeric index; size
 *    and deadline optional);
 *  - CSV: `t,tenant,size,deadline` (header line optional; trailing
 *    fields optional).
 * Unknown tenant names fail; records are sorted by time.
 */
StatusOr<std::vector<TraceRecord>> ParseTrace(
    const std::string& text,
    const std::vector<std::string>& tenant_names);

/** Replay parameters. */
struct ReplayOptions {
    /** false = open loop (timestamps are law); true = closed loop
     *  (each of `clients` concurrent clients per tenant issues its
     *  next record only after its previous response + think time). */
    bool closed_loop = false;
    /** Stretch factor on trace timestamps; 0.5 doubles the request
     *  rate. (`rate-scale R` in scenario files maps to 1/R.) */
    double time_scale = 1.0;
    /** Concatenate the trace this many times end-to-end. */
    int repeat = 1;
    /** Closed loop: concurrent clients per tenant. */
    int clients = 1;
    /** Closed loop: think time between response and next issue. */
    double think_s = 0.0;
};

/**
 * Replays a trace open- or closed-loop. Closed-loop replay requires
 * the driver to deliver OnRequestEnd for every taken arrival;
 * records whose gated release would land past the horizon are
 * dropped (counted in dropped_after_horizon()).
 */
class TraceSource : public ArrivalSource {
  public:
    TraceSource(std::vector<TraceRecord> records, size_t num_tenants,
                ReplayOptions options, double horizon_s);

    bool Peek(LoadArrival* out) override;
    LoadArrival Take() override;
    void OnRequestEnd(uint64_t id, double end_s,
                      bool success) override;
    bool Exhausted() const override;

    int64_t dropped_after_horizon() const
    {
        return dropped_after_horizon_;
    }

  private:
    struct Pending {
        LoadArrival arrival;
        bool operator>(const Pending& other) const
        {
            return arrival.t_s > other.arrival.t_s;
        }
    };

    /** Closed loop: release the tenant's next record to a client
     *  whose previous response ended at @p free_s. */
    void ScheduleNext(size_t tenant, double free_s);

    struct TenantQueue {
        std::vector<TraceRecord> records;  // time-scaled, repeated
        size_t next = 0;
        int alive = 0;  // closed loop: clients still inside horizon
    };

    std::vector<TenantQueue> tenants_;
    std::priority_queue<Pending, std::vector<Pending>,
                        std::greater<Pending>>
        pending_;
    std::unordered_map<uint64_t, size_t> outstanding_;  // id -> tenant
    ReplayOptions options_;
    double horizon_s_ = 0.0;
    uint64_t next_id_ = 0;
    int64_t dropped_after_horizon_ = 0;
};

// ---------------------------------------------------------------------
// Client retry storms
// ---------------------------------------------------------------------

/** Downstream-client retry behaviour. */
struct RetryPolicy {
    enum class Backoff { kFixed, kExponential, kExpJitter };
    /** A completed request slower than this still counts as a client
     *  timeout and is retried; 0 disables timeout-based retries. */
    double timeout_s = 0.0;
    Backoff backoff = Backoff::kFixed;
    /** Base backoff delay. Fixed: every retry waits exactly this.
     *  Exponential: base * 2^attempt. ExpJitter: uniform in
     *  (0, base * 2^attempt] — "full jitter", the decorrelating
     *  variant that breaks up retry waves. */
    double base_s = 0.0;
    /** Client gives up after this many retries of one request. */
    int max_retries = 3;
};

/**
 * Wraps any source with retrying clients: every failed (or, with
 * timeout_s set, too-slow) request is re-enqueued after the policy's
 * backoff as a fresh arrival flagged `client_retry`. With fixed
 * backoff the re-enqueues synchronize into waves that can hold an
 * overloaded fleet down long after the original spike — the
 * metastable failure mode; full-jitter exponential backoff
 * decorrelates and drains the same storm.
 */
class RetryStormSource : public ArrivalSource {
  public:
    RetryStormSource(std::unique_ptr<ArrivalSource> base,
                     RetryPolicy policy, uint64_t seed,
                     double horizon_s);

    bool Peek(LoadArrival* out) override;
    LoadArrival Take() override;
    void OnRequestEnd(uint64_t id, double end_s,
                      bool success) override;
    bool Exhausted() const override;

    /** Retries emitted so far (each also flagged on its arrival). */
    int64_t retries_emitted() const { return retries_emitted_; }
    /** Retries that would have landed past the horizon (dropped). */
    int64_t retries_suppressed() const { return retries_suppressed_; }

  private:
    struct PendingRetry {
        LoadArrival arrival;
        int attempt = 0;
        bool operator>(const PendingRetry& other) const
        {
            return arrival.t_s > other.arrival.t_s;
        }
    };

    struct Outstanding {
        uint64_t base_id = 0;  // forward feedback when nonzero
        size_t tenant = 0;
        double size = 1.0;
        double deadline_s = 0.0;
        double arrival_s = 0.0;
        int attempt = 0;
    };

    std::unique_ptr<ArrivalSource> base_;
    RetryPolicy policy_;
    Rng rng_;
    double horizon_s_ = 0.0;
    std::priority_queue<PendingRetry, std::vector<PendingRetry>,
                        std::greater<PendingRetry>>
        retries_;
    std::unordered_map<uint64_t, Outstanding> outstanding_;
    uint64_t next_id_ = 0;
    int64_t retries_emitted_ = 0;
    int64_t retries_suppressed_ = 0;
};

}  // namespace load
}  // namespace t4i

#endif  // T4I_LOAD_ARRIVALS_H
