#include "src/load/scenario.h"

#include <algorithm>
#include <cstdlib>

#include "src/common/strings.h"
#include "src/obs/export.h"

namespace t4i {
namespace load {

namespace {

Status
LineError(int line_no, const std::string& what)
{
    return Status::InvalidArgument(
        StrFormat("scenario line %d: %s", line_no, what.c_str()));
}

bool
ParseNumber(const std::string& text, double* out)
{
    if (text.empty()) return false;
    char* end = nullptr;
    *out = std::strtod(text.c_str(), &end);
    return end != nullptr && *end == '\0';
}

/** key=value options after a directive word. */
struct Options {
    std::vector<std::pair<std::string, std::string>> pairs;
    /** Tokens without an '='. */
    std::vector<std::string> bare;

    const std::string*
    Find(const std::string& key) const
    {
        for (const auto& kv : pairs) {
            if (kv.first == key) return &kv.second;
        }
        return nullptr;
    }

    bool
    GetDouble(const std::string& key, double* out) const
    {
        const std::string* value = Find(key);
        return value != nullptr && ParseNumber(*value, out);
    }
};

Options
ParseOptions(const std::vector<std::string>& tokens, size_t from)
{
    Options options;
    for (size_t i = from; i < tokens.size(); ++i) {
        const size_t eq = tokens[i].find('=');
        if (eq == std::string::npos) {
            options.bare.push_back(tokens[i]);
        } else {
            options.pairs.emplace_back(tokens[i].substr(0, eq),
                                       tokens[i].substr(eq + 1));
        }
    }
    return options;
}

/** Requires every key=value on the line to parse as a number into a
 *  named field; returns an error naming the first unknown key. */
struct FieldMap {
    std::vector<std::pair<const char*, double*>> fields;

    Status
    Apply(const Options& options, int line_no) const
    {
        for (const auto& kv : options.pairs) {
            bool known = false;
            for (const auto& field : fields) {
                if (kv.first == field.first) {
                    if (!ParseNumber(kv.second, field.second)) {
                        return LineError(
                            line_no,
                            StrFormat("bad number for %s",
                                      kv.first.c_str()));
                    }
                    known = true;
                    break;
                }
            }
            if (!known) {
                return LineError(
                    line_no, StrFormat("unknown option '%s'",
                                       kv.first.c_str()));
            }
        }
        return Status::Ok();
    }
};

}  // namespace

StatusOr<Scenario>
ParseScenario(const std::string& text)
{
    Scenario scenario;
    bool saw_retry = false;
    int line_no = 0;
    for (const std::string& line : SplitString(text, '\n')) {
        ++line_no;
        if (line.empty() || line[0] == '#') continue;
        const std::vector<std::string> tokens =
            SplitString(line, ' ');
        if (tokens.empty()) continue;
        const std::string& word = tokens[0];

        if (word == "alert" || word == "slo") {
            // Verbatim pass-through to the alert / SLO engines.
            (word == "alert" ? scenario.alert_rules_text
                             : scenario.slo_objectives_text) +=
                line + "\n";
            continue;
        }
        if (word == "scenario") {
            if (tokens.size() < 2) {
                return LineError(line_no, "scenario needs a name");
            }
            scenario.name = tokens[1];
            continue;
        }
        if (word == "duration" || word == "seed" || word == "cells" ||
            word == "devices" || word == "control-interval" ||
            word == "health-interval" || word == "window" ||
            word == "error-budget") {
            double value = 0.0;
            if (tokens.size() != 2 ||
                !ParseNumber(tokens[1], &value)) {
                return LineError(
                    line_no, StrFormat("%s needs one numeric value",
                                       word.c_str()));
            }
            if (word == "duration") scenario.duration_s = value;
            if (word == "seed") {
                scenario.seed = static_cast<uint64_t>(value);
            }
            if (word == "cells") {
                scenario.cells = static_cast<int>(value);
            }
            if (word == "devices") {
                scenario.devices_per_cell = static_cast<int>(value);
            }
            if (word == "control-interval") {
                scenario.control_interval_s = value;
            }
            if (word == "health-interval") {
                scenario.health_interval_s = value;
            }
            if (word == "window") scenario.window_s = value;
            if (word == "error-budget") scenario.error_budget = value;
            continue;
        }
        if (word == "policy") {
            if (tokens.size() != 2) {
                return LineError(line_no, "policy needs a name");
            }
            scenario.policy = tokens[1];
            continue;
        }
        if (word == "tenant") {
            if (tokens.size() < 2 ||
                tokens[1].find('=') != std::string::npos) {
                return LineError(line_no, "tenant needs a name");
            }
            ScenarioTenant tenant;
            tenant.name = tokens[1];
            double max_queue = 0.0, priority = 0.0;
            FieldMap map{{{"load", &tenant.load},
                          {"rate", &tenant.rate},
                          {"deadline", &tenant.deadline_s},
                          {"max-queue", &max_queue},
                          {"priority", &priority}}};
            Status s = map.Apply(ParseOptions(tokens, 2), line_no);
            if (!s.ok()) return s;
            tenant.max_queue = static_cast<int64_t>(max_queue);
            tenant.priority = static_cast<int>(priority);
            scenario.tenants.push_back(tenant);
            continue;
        }
        if (word == "arrivals") {
            if (tokens.size() < 2) {
                return LineError(line_no,
                                 "arrivals needs poisson|trace");
            }
            if (tokens[1] == "poisson") {
                scenario.program.kind =
                    ArrivalProgram::Kind::kGenerator;
                continue;
            }
            if (tokens[1] != "trace" || tokens.size() < 3) {
                return LineError(
                    line_no,
                    "arrivals wants `poisson` or `trace PATH ...`");
            }
            scenario.program.kind = ArrivalProgram::Kind::kTrace;
            scenario.program.trace_path = tokens[2];
            ReplayOptions& replay = scenario.program.replay;
            const Options options = ParseOptions(tokens, 3);
            double repeat = 1.0, clients = 1.0, rate_scale = 0.0;
            FieldMap map{{{"time-scale", &replay.time_scale},
                          {"rate-scale", &rate_scale},
                          {"repeat", &repeat},
                          {"clients", &clients},
                          {"think", &replay.think_s}}};
            // `mode=` is a string option; strip it before FieldMap.
            Options numeric = options;
            numeric.pairs.erase(
                std::remove_if(numeric.pairs.begin(),
                               numeric.pairs.end(),
                               [](const auto& kv) {
                                   return kv.first == "mode";
                               }),
                numeric.pairs.end());
            Status s = map.Apply(numeric, line_no);
            if (!s.ok()) return s;
            if (const std::string* mode = options.Find("mode")) {
                if (*mode == "closed") {
                    replay.closed_loop = true;
                } else if (*mode != "open") {
                    return LineError(line_no,
                                     "mode must be open|closed");
                }
            }
            if (rate_scale > 0.0) {
                replay.time_scale = 1.0 / rate_scale;
            }
            replay.repeat = static_cast<int>(repeat);
            replay.clients = static_cast<int>(clients);
            continue;
        }
        if (word == "flash-crowd") {
            FlashCrowd crowd;
            const Options options = ParseOptions(tokens, 1);
            Options numeric = options;
            numeric.pairs.erase(
                std::remove_if(numeric.pairs.begin(),
                               numeric.pairs.end(),
                               [](const auto& kv) {
                                   return kv.first == "tenant";
                               }),
                numeric.pairs.end());
            FieldMap map{{{"at", &crowd.start_s},
                          {"ramp", &crowd.ramp_s},
                          {"hold", &crowd.hold_s},
                          {"mult", &crowd.mult}}};
            Status s = map.Apply(numeric, line_no);
            if (!s.ok()) return s;
            if (const std::string* name = options.Find("tenant")) {
                crowd.tenant = -1;
                for (size_t i = 0; i < scenario.tenants.size(); ++i) {
                    if (scenario.tenants[i].name == *name) {
                        crowd.tenant = static_cast<int>(i);
                    }
                }
                if (crowd.tenant < 0) {
                    return LineError(
                        line_no,
                        StrFormat("flash-crowd names unknown tenant "
                                  "'%s' (declare tenants first)",
                                  name->c_str()));
                }
            }
            if (crowd.mult < 1.0) {
                return LineError(line_no,
                                 "flash-crowd mult must be >= 1");
            }
            scenario.program.crowds.push_back(crowd);
            continue;
        }
        if (word == "burst") {
            BurstShock& shock = scenario.program.shock;
            FieldMap map{{{"shock-rate", &shock.shock_rate},
                          {"shock-mult", &shock.shock_mult},
                          {"shock-dur", &shock.shock_dur_s}}};
            Status s = map.Apply(ParseOptions(tokens, 1), line_no);
            if (!s.ok()) return s;
            continue;
        }
        if (word == "sizes") {
            if (tokens.size() < 2) {
                return LineError(line_no,
                                 "sizes needs pareto|lognormal");
            }
            SizeDistribution& sizes = scenario.program.sizes;
            if (tokens[1] == "pareto") {
                sizes.kind = SizeDistribution::Kind::kPareto;
            } else if (tokens[1] == "lognormal") {
                sizes.kind = SizeDistribution::Kind::kLognormal;
            } else {
                return LineError(line_no,
                                 "sizes needs pareto|lognormal");
            }
            FieldMap map{{{"alpha", &sizes.alpha},
                          {"xm", &sizes.xm},
                          {"mu", &sizes.mu},
                          {"sigma", &sizes.sigma},
                          {"max", &sizes.max}}};
            Status s = map.Apply(ParseOptions(tokens, 2), line_no);
            if (!s.ok()) return s;
            continue;
        }
        if (word == "retry-storm") {
            saw_retry = true;
            scenario.program.retry_storm = true;
            RetryPolicy& retry = scenario.program.retry;
            const Options options = ParseOptions(tokens, 1);
            Options numeric = options;
            numeric.pairs.erase(
                std::remove_if(numeric.pairs.begin(),
                               numeric.pairs.end(),
                               [](const auto& kv) {
                                   return kv.first == "backoff";
                               }),
                numeric.pairs.end());
            double max_retries =
                static_cast<double>(retry.max_retries);
            FieldMap map{{{"timeout", &retry.timeout_s},
                          {"base", &retry.base_s},
                          {"max-retries", &max_retries}}};
            Status s = map.Apply(numeric, line_no);
            if (!s.ok()) return s;
            retry.max_retries = static_cast<int>(max_retries);
            if (const std::string* backoff =
                    options.Find("backoff")) {
                if (*backoff == "fixed") {
                    retry.backoff = RetryPolicy::Backoff::kFixed;
                } else if (*backoff == "exponential") {
                    retry.backoff =
                        RetryPolicy::Backoff::kExponential;
                } else if (*backoff == "exp-jitter") {
                    retry.backoff = RetryPolicy::Backoff::kExpJitter;
                } else {
                    return LineError(
                        line_no,
                        "backoff must be fixed|exponential|"
                        "exp-jitter");
                }
            }
            continue;
        }
        if (word == "llm") {
            scenario.llm.enabled = true;
            const Options options = ParseOptions(tokens, 1);
            Options numeric = options;
            numeric.pairs.erase(
                std::remove_if(numeric.pairs.begin(),
                               numeric.pairs.end(),
                               [](const auto& kv) {
                                   return kv.first == "model" ||
                                          kv.first == "mode";
                               }),
                numeric.pairs.end());
            double max_batch =
                static_cast<double>(scenario.llm.max_batch);
            double max_queue =
                static_cast<double>(scenario.llm.max_queue);
            FieldMap map{{{"max-batch", &max_batch},
                          {"max-queue", &max_queue},
                          {"kv-cmem-mb", &scenario.llm.kv_cmem_mb},
                          {"kv-hbm-mb", &scenario.llm.kv_hbm_mb},
                          {"ttft-slo", &scenario.llm.ttft_slo_s},
                          {"tpot-slo", &scenario.llm.tpot_slo_s}}};
            Status s = map.Apply(numeric, line_no);
            if (!s.ok()) return s;
            scenario.llm.max_batch =
                static_cast<int64_t>(max_batch);
            scenario.llm.max_queue =
                static_cast<int64_t>(max_queue);
            if (const std::string* model = options.Find("model")) {
                scenario.llm.model = *model;
            }
            if (const std::string* mode = options.Find("mode")) {
                if (*mode != "continuous" && *mode != "static" &&
                    *mode != "disagg") {
                    return LineError(
                        line_no,
                        "llm mode must be continuous|static|disagg");
                }
                scenario.llm.mode = *mode;
            }
            continue;
        }
        if (word == "prompt" || word == "output" ||
            word == "shared-prefix") {
            const Options options = ParseOptions(tokens, 1);
            const std::string* name = options.Find("tenant");
            if (name == nullptr) {
                return LineError(
                    line_no,
                    StrFormat("%s needs tenant=NAME", word.c_str()));
            }
            int tenant = -1;
            for (size_t i = 0; i < scenario.tenants.size(); ++i) {
                if (scenario.tenants[i].name == *name) {
                    tenant = static_cast<int>(i);
                }
            }
            if (tenant < 0) {
                return LineError(
                    line_no,
                    StrFormat("%s names unknown tenant '%s' "
                              "(declare tenants first)",
                              word.c_str(), name->c_str()));
            }
            if (scenario.llm.tenants.size() <
                scenario.tenants.size()) {
                scenario.llm.tenants.resize(scenario.tenants.size());
            }
            LlmTenantProgram& prog =
                scenario.llm.tenants[static_cast<size_t>(tenant)];
            Options numeric = options;
            numeric.pairs.erase(
                std::remove_if(numeric.pairs.begin(),
                               numeric.pairs.end(),
                               [](const auto& kv) {
                                   return kv.first == "tenant";
                               }),
                numeric.pairs.end());
            FieldMap map =
                word == "prompt"
                    ? FieldMap{{{"mean", &prog.prompt_mean},
                                {"sigma", &prog.prompt_sigma},
                                {"max", &prog.prompt_max}}}
                : word == "output"
                    ? FieldMap{{{"mean", &prog.output_mean},
                                {"sigma", &prog.output_sigma},
                                {"max", &prog.output_max}}}
                    : FieldMap{
                          {{"frac", &prog.shared_prefix_frac},
                           {"len", &prog.shared_prefix_len}}};
            Status s = map.Apply(numeric, line_no);
            if (!s.ok()) return s;
            continue;
        }
        if (word == "context-flood") {
            LlmContextFlood flood;
            const Options options = ParseOptions(tokens, 1);
            Options numeric = options;
            numeric.pairs.erase(
                std::remove_if(numeric.pairs.begin(),
                               numeric.pairs.end(),
                               [](const auto& kv) {
                                   return kv.first == "tenant";
                               }),
                numeric.pairs.end());
            FieldMap map{{{"at", &flood.at_s},
                          {"dur", &flood.dur_s},
                          {"mult", &flood.mult}}};
            Status s = map.Apply(numeric, line_no);
            if (!s.ok()) return s;
            if (const std::string* name = options.Find("tenant")) {
                flood.tenant = -1;
                for (size_t i = 0; i < scenario.tenants.size(); ++i) {
                    if (scenario.tenants[i].name == *name) {
                        flood.tenant = static_cast<int>(i);
                    }
                }
                if (flood.tenant < 0) {
                    return LineError(
                        line_no,
                        StrFormat("context-flood names unknown "
                                  "tenant '%s' (declare tenants "
                                  "first)",
                                  name->c_str()));
                }
            }
            if (flood.mult <= 0.0 || flood.dur_s < 0.0) {
                return LineError(
                    line_no,
                    "context-flood needs mult > 0 and dur >= 0");
            }
            scenario.llm.floods.push_back(flood);
            continue;
        }
        if (word == "outage") {
            ScenarioOutage outage;
            double cell = 0.0;
            outage.repair_at_s = -1.0;
            FieldMap map{{{"cell", &cell},
                          {"at", &outage.fail_at_s},
                          {"repair", &outage.repair_at_s}}};
            Status s = map.Apply(ParseOptions(tokens, 1), line_no);
            if (!s.ok()) return s;
            outage.cell = static_cast<int>(cell);
            scenario.outages.push_back(outage);
            continue;
        }
        if (word == "expect" || word == "expect-not") {
            if (tokens.size() != 2) {
                return LineError(
                    line_no,
                    StrFormat("%s needs one alert name",
                              word.c_str()));
            }
            (word == "expect" ? scenario.expect
                              : scenario.expect_not)
                .push_back(tokens[1]);
            continue;
        }
        if (word == "expect-dominant") {
            if (tokens.size() < 2) {
                return LineError(
                    line_no, "expect-dominant needs a component");
            }
            if (!scenario.expect_dominant.empty()) {
                return LineError(
                    line_no, "duplicate expect-dominant directive");
            }
            scenario.expect_dominant = tokens[1];
            const Options options = ParseOptions(tokens, 2);
            if (!options.bare.empty()) {
                return LineError(
                    line_no,
                    "expect-dominant takes one component and "
                    "optional tenant=NAME");
            }
            for (const auto& [key, value] : options.pairs) {
                if (key != "tenant") {
                    return LineError(
                        line_no,
                        StrFormat("unknown option '%s'",
                                  key.c_str()));
                }
                scenario.expect_dominant_tenant = value;
            }
            continue;
        }
        return LineError(line_no, StrFormat("unknown directive '%s'",
                                            word.c_str()));
    }

    if (scenario.tenants.empty()) {
        return Status::InvalidArgument(
            "scenario declares no tenants");
    }
    if (scenario.duration_s <= 0.0) {
        return Status::InvalidArgument(
            "scenario duration must be > 0");
    }
    if (scenario.cells < 1 || scenario.devices_per_cell < 1) {
        return Status::InvalidArgument(
            "scenario needs >= 1 cell and >= 1 device per cell");
    }
    if (saw_retry && scenario.program.retry.base_s <= 0.0) {
        return Status::InvalidArgument(
            "retry-storm needs base=S > 0");
    }
    for (const std::string& name : scenario.expect) {
        if (std::find(scenario.expect_not.begin(),
                      scenario.expect_not.end(),
                      name) != scenario.expect_not.end()) {
            return Status::InvalidArgument(StrFormat(
                "alert '%s' is both expected and expected-not",
                name.c_str()));
        }
    }
    if (!scenario.expect_dominant_tenant.empty()) {
        bool known = false;
        for (const ScenarioTenant& tenant : scenario.tenants) {
            if (tenant.name == scenario.expect_dominant_tenant) {
                known = true;
                break;
            }
        }
        if (!known) {
            return Status::InvalidArgument(StrFormat(
                "expect-dominant tenant '%s' is not declared",
                scenario.expect_dominant_tenant.c_str()));
        }
    }
    for (const ScenarioOutage& outage : scenario.outages) {
        if (outage.cell < 0 || outage.cell >= scenario.cells) {
            return Status::InvalidArgument(
                StrFormat("outage cell %d out of range",
                          outage.cell));
        }
    }
    if (!scenario.llm.enabled &&
        (!scenario.llm.floods.empty() ||
         !scenario.llm.tenants.empty())) {
        return Status::InvalidArgument(
            "prompt/output/context-flood/shared-prefix need an "
            "`llm` directive");
    }
    if (scenario.llm.enabled) {
        if (scenario.cells != 1) {
            return Status::InvalidArgument(
                "llm scenarios run one cell (cells must be 1)");
        }
        for (const ScenarioTenant& tenant : scenario.tenants) {
            if (tenant.rate <= 0.0) {
                return Status::InvalidArgument(StrFormat(
                    "llm tenant '%s' needs an absolute rate= "
                    "(load= has no SLO-batch capacity to resolve "
                    "against)",
                    tenant.name.c_str()));
            }
        }
        scenario.llm.tenants.resize(scenario.tenants.size());
    }
    return scenario;
}

StatusOr<Scenario>
ParseScenarioFile(const std::string& path)
{
    auto text = obs::ReadTextFile(path);
    if (!text.ok()) return text.status();
    auto scenario = ParseScenario(text.value());
    if (!scenario.ok()) {
        return Status::InvalidArgument(
            StrFormat("%s: %s", path.c_str(),
                      scenario.status().message().c_str()));
    }
    Scenario result = std::move(scenario).ConsumeValue();
    // Relative trace paths resolve against the scenario file's dir.
    std::string& trace = result.program.trace_path;
    if (!trace.empty() && trace[0] != '/') {
        const size_t slash = path.find_last_of('/');
        if (slash != std::string::npos) {
            trace = path.substr(0, slash + 1) + trace;
        }
    }
    return result;
}

StatusOr<std::unique_ptr<ArrivalSource>>
BuildArrivalSource(const Scenario& scenario,
                   const std::vector<double>& tenant_rates,
                   const std::vector<std::string>& tenant_names)
{
    if (tenant_rates.size() != scenario.tenants.size()) {
        return Status::InvalidArgument(
            "tenant_rates must match the scenario's tenant list");
    }
    std::unique_ptr<ArrivalSource> source;
    if (scenario.program.kind == ArrivalProgram::Kind::kTrace) {
        auto text = obs::ReadTextFile(scenario.program.trace_path);
        if (!text.ok()) return text.status();
        auto records = ParseTrace(text.value(), tenant_names);
        if (!records.ok()) return records.status();
        source = std::make_unique<TraceSource>(
            std::move(records).ConsumeValue(), tenant_names.size(),
            scenario.program.replay, scenario.duration_s);
    } else {
        std::vector<GeneratorTenant> tenants;
        for (size_t i = 0; i < scenario.tenants.size(); ++i) {
            GeneratorTenant tenant;
            tenant.rate = tenant_rates[i];
            tenant.deadline_s = 0.0;  // tenant config carries it
            tenants.push_back(tenant);
        }
        source = std::make_unique<GeneratorSource>(
            std::move(tenants), scenario.program.crowds,
            scenario.program.shock, scenario.program.sizes,
            scenario.seed, scenario.duration_s);
    }
    if (scenario.program.retry_storm) {
        source = std::make_unique<RetryStormSource>(
            std::move(source), scenario.program.retry, scenario.seed,
            scenario.duration_s);
    }
    return source;
}

}  // namespace load
}  // namespace t4i
