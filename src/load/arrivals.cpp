#include "src/load/arrivals.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "src/common/status.h"
#include "src/common/strings.h"

namespace t4i {
namespace load {

namespace {

/** Multiplier contributed by one flash crowd at time @p t. */
double
CrowdFactor(const FlashCrowd& crowd, double t_s)
{
    const double rel = t_s - crowd.start_s;
    const double total = 2.0 * crowd.ramp_s + crowd.hold_s;
    if (rel < 0.0 || rel >= total) return 1.0;
    if (crowd.ramp_s == 0.0) return crowd.mult;  // hard step
    if (rel < crowd.ramp_s) {
        return 1.0 + (crowd.mult - 1.0) * (rel / crowd.ramp_s);
    }
    if (rel < crowd.ramp_s + crowd.hold_s) return crowd.mult;
    const double down = (rel - crowd.ramp_s - crowd.hold_s) /
                        crowd.ramp_s;
    return 1.0 + (crowd.mult - 1.0) * (1.0 - down);
}

}  // namespace

double
DrawSize(const SizeDistribution& dist, Rng& rng)
{
    double size = 1.0;
    switch (dist.kind) {
        case SizeDistribution::Kind::kConstant:
            return 1.0;
        case SizeDistribution::Kind::kPareto: {
            double u = rng.NextDouble();
            if (u < 1e-12) u = 1e-12;
            size = dist.xm *
                   std::pow(u, -1.0 / std::max(dist.alpha, 1e-6));
            break;
        }
        case SizeDistribution::Kind::kLognormal:
            size = std::exp(dist.mu + dist.sigma * rng.NextGaussian());
            break;
    }
    return std::min(std::max(size, 1e-6), dist.max);
}

// ---------------------------------------------------------------------
// GeneratorSource
// ---------------------------------------------------------------------

GeneratorSource::GeneratorSource(std::vector<GeneratorTenant> tenants,
                                 std::vector<FlashCrowd> crowds,
                                 BurstShock shock,
                                 SizeDistribution sizes, uint64_t seed,
                                 double horizon_s)
    : crowds_(std::move(crowds)),
      shock_(shock),
      sizes_(sizes),
      horizon_s_(horizon_s)
{
    if (shock_.shock_rate > 0.0 && shock_.shock_dur_s > 0.0) {
        Rng shock_rng = Substream(seed, "load.shock");
        double t = shock_rng.NextExponential(shock_.shock_rate);
        while (t < horizon_s_) {
            shocks_.emplace_back(t, t + shock_.shock_dur_s);
            t += shock_rng.NextExponential(shock_.shock_rate);
        }
    }
    tenants_.reserve(tenants.size());
    for (size_t i = 0; i < tenants.size(); ++i) {
        TenantState state;
        state.cfg = tenants[i];
        state.rng = Substream(seed, "load.arrivals", i);
        state.size_rng = Substream(seed, "load.sizes", i);
        tenants_.push_back(std::move(state));
        DrawNext(i);
    }
}

double
GeneratorSource::RateFactor(size_t tenant, double t_s) const
{
    double factor = 1.0;
    for (const FlashCrowd& crowd : crowds_) {
        if (crowd.tenant >= 0 &&
            static_cast<size_t>(crowd.tenant) != tenant) {
            continue;
        }
        factor *= CrowdFactor(crowd, t_s);
    }
    for (const auto& interval : shocks_) {
        if (interval.first > t_s) break;  // time-sorted
        if (t_s < interval.second) {
            factor *= shock_.shock_mult;
            break;  // overlaps were emitted in start order; one hit
        }
    }
    return factor;
}

void
GeneratorSource::DrawNext(size_t tenant)
{
    TenantState& state = tenants_[tenant];
    if (state.cfg.rate <= 0.0) {
        state.dead = true;
        return;
    }
    // Thinned non-homogeneous Poisson against the peak factor the
    // crowds and shock process can reach.
    double peak = 1.0;
    for (const FlashCrowd& crowd : crowds_) {
        if (crowd.tenant >= 0 &&
            static_cast<size_t>(crowd.tenant) != tenant) {
            continue;
        }
        peak *= std::max(1.0, crowd.mult);
    }
    if (!shocks_.empty()) peak *= std::max(1.0, shock_.shock_mult);
    const double peak_rate = state.cfg.rate * peak;
    double t = state.next_s;
    for (int guard = 0; guard < 1000000; ++guard) {
        t += state.rng.NextExponential(peak_rate);
        if (t >= horizon_s_) {
            state.dead = true;
            return;
        }
        const double accept =
            state.cfg.rate * RateFactor(tenant, t) / peak_rate;
        if (state.rng.NextDouble() < accept) {
            state.next_s = t;
            return;
        }
    }
    state.dead = true;  // pathological thinning ratio; stop emitting
}

bool
GeneratorSource::Peek(LoadArrival* out)
{
    bool have = false;
    size_t best = 0;
    for (size_t i = 0; i < tenants_.size(); ++i) {
        if (tenants_[i].dead) continue;
        if (!have || tenants_[i].next_s < tenants_[best].next_s) {
            best = i;
            have = true;
        }
    }
    if (!have) return false;
    out->t_s = tenants_[best].next_s;
    out->tenant = best;
    out->size = 1.0;
    out->deadline_s = tenants_[best].cfg.deadline_s;
    out->client_retry = false;
    out->id = 0;
    return true;
}

LoadArrival
GeneratorSource::Take()
{
    LoadArrival arrival;
    const bool have = Peek(&arrival);
    T4I_CHECK(have, "Take() on an empty GeneratorSource");
    arrival.size =
        DrawSize(sizes_, tenants_[arrival.tenant].size_rng);
    DrawNext(arrival.tenant);
    return arrival;
}

bool
GeneratorSource::Exhausted() const
{
    for (const TenantState& state : tenants_) {
        if (!state.dead) return false;
    }
    return true;
}

// ---------------------------------------------------------------------
// Trace parsing
// ---------------------------------------------------------------------

namespace {

/** Extracts the raw JSON value after `"key":` in a flat object, or
 *  empty when absent. Handles string and numeric values only — the
 *  trace schema is flat by construction. */
std::string
JsonField(const std::string& line, const std::string& key)
{
    const std::string needle = "\"" + key + "\"";
    size_t pos = line.find(needle);
    if (pos == std::string::npos) return "";
    pos = line.find(':', pos + needle.size());
    if (pos == std::string::npos) return "";
    ++pos;
    while (pos < line.size() &&
           (line[pos] == ' ' || line[pos] == '\t')) {
        ++pos;
    }
    if (pos >= line.size()) return "";
    if (line[pos] == '"') {
        const size_t end = line.find('"', pos + 1);
        if (end == std::string::npos) return "";
        return line.substr(pos + 1, end - pos - 1);
    }
    size_t end = pos;
    while (end < line.size() && line[end] != ',' &&
           line[end] != '}') {
        ++end;
    }
    std::string value = line.substr(pos, end - pos);
    while (!value.empty() &&
           (value.back() == ' ' || value.back() == '\t')) {
        value.pop_back();
    }
    return value;
}

bool
ParseNumber(const std::string& text, double* out)
{
    if (text.empty()) return false;
    char* end = nullptr;
    *out = std::strtod(text.c_str(), &end);
    return end != nullptr && *end == '\0';
}

StatusOr<size_t>
ResolveTenant(const std::string& token,
              const std::vector<std::string>& tenant_names)
{
    for (size_t i = 0; i < tenant_names.size(); ++i) {
        if (tenant_names[i] == token) return i;
    }
    double index = 0.0;
    if (ParseNumber(token, &index) && index >= 0.0 &&
        index < static_cast<double>(tenant_names.size())) {
        return static_cast<size_t>(index);
    }
    return Status::InvalidArgument(
        StrFormat("trace references unknown tenant '%s'",
                  token.c_str()));
}

}  // namespace

StatusOr<std::vector<TraceRecord>>
ParseTrace(const std::string& text,
           const std::vector<std::string>& tenant_names)
{
    std::vector<TraceRecord> records;
    int line_no = 0;
    for (const std::string& line : SplitString(text, '\n')) {
        ++line_no;
        if (line.empty() || line[0] == '#') continue;
        TraceRecord record;
        std::string tenant_token;
        std::string t_token, size_token, deadline_token;
        if (line[0] == '{') {
            t_token = JsonField(line, "t");
            tenant_token = JsonField(line, "tenant");
            size_token = JsonField(line, "size");
            deadline_token = JsonField(line, "deadline");
        } else {
            std::vector<std::string> fields = SplitString(line, ',');
            if (fields.size() < 2) {
                return Status::InvalidArgument(StrFormat(
                    "trace line %d: want t,tenant[,size[,deadline]]",
                    line_no));
            }
            double probe = 0.0;
            if (!ParseNumber(fields[0], &probe)) {
                continue;  // header line
            }
            t_token = fields[0];
            tenant_token = fields[1];
            if (fields.size() > 2) size_token = fields[2];
            if (fields.size() > 3) deadline_token = fields[3];
        }
        if (!ParseNumber(t_token, &record.t_s) || record.t_s < 0.0) {
            return Status::InvalidArgument(StrFormat(
                "trace line %d: bad timestamp '%s'", line_no,
                t_token.c_str()));
        }
        auto tenant = ResolveTenant(tenant_token, tenant_names);
        if (!tenant.ok()) {
            return Status::InvalidArgument(
                StrFormat("trace line %d: %s", line_no,
                          tenant.status().message().c_str()));
        }
        record.tenant = tenant.value();
        if (!size_token.empty() &&
            (!ParseNumber(size_token, &record.size) ||
             record.size <= 0.0)) {
            return Status::InvalidArgument(StrFormat(
                "trace line %d: bad size '%s'", line_no,
                size_token.c_str()));
        }
        if (!deadline_token.empty() &&
            (!ParseNumber(deadline_token, &record.deadline_s) ||
             record.deadline_s < 0.0)) {
            return Status::InvalidArgument(StrFormat(
                "trace line %d: bad deadline '%s'", line_no,
                deadline_token.c_str()));
        }
        records.push_back(record);
    }
    std::stable_sort(records.begin(), records.end(),
                     [](const TraceRecord& a, const TraceRecord& b) {
                         return a.t_s < b.t_s;
                     });
    return records;
}

// ---------------------------------------------------------------------
// TraceSource
// ---------------------------------------------------------------------

TraceSource::TraceSource(std::vector<TraceRecord> records,
                         size_t num_tenants, ReplayOptions options,
                         double horizon_s)
    : options_(options), horizon_s_(horizon_s)
{
    if (options_.time_scale <= 0.0) options_.time_scale = 1.0;
    if (options_.repeat < 1) options_.repeat = 1;
    if (options_.clients < 1) options_.clients = 1;
    tenants_.resize(num_tenants);
    double span = 0.0;
    for (const TraceRecord& r : records) {
        span = std::max(span, r.t_s * options_.time_scale);
    }
    for (int rep = 0; rep < options_.repeat; ++rep) {
        const double offset = span * static_cast<double>(rep);
        for (const TraceRecord& r : records) {
            if (r.tenant >= num_tenants) continue;
            TraceRecord scaled = r;
            scaled.t_s = r.t_s * options_.time_scale + offset;
            tenants_[r.tenant].records.push_back(scaled);
        }
    }
    if (!options_.closed_loop) {
        // Open loop: timestamps are law; pre-schedule everything.
        for (TenantQueue& queue : tenants_) {
            for (const TraceRecord& r : queue.records) {
                if (r.t_s >= horizon_s_) {
                    ++dropped_after_horizon_;
                    continue;
                }
                LoadArrival arrival;
                arrival.t_s = r.t_s;
                arrival.tenant = r.tenant;
                arrival.size = r.size;
                arrival.deadline_s = r.deadline_s;
                pending_.push(Pending{arrival});
            }
            queue.next = queue.records.size();
        }
        return;
    }
    // Closed loop: each tenant starts `clients` concurrent clients.
    for (size_t tenant = 0; tenant < tenants_.size(); ++tenant) {
        tenants_[tenant].alive = options_.clients;
        for (int c = 0; c < options_.clients; ++c) {
            ScheduleNext(tenant, 0.0);
        }
    }
}

void
TraceSource::ScheduleNext(size_t tenant, double free_s)
{
    TenantQueue& queue = tenants_[tenant];
    if (queue.next >= queue.records.size()) return;
    // A client freed at or past the horizon can never issue again;
    // leave its record for a still-live client, and when the last
    // client dies, book the stranded remainder so the trace's
    // conservation law (taken + dropped == records) still holds.
    if (free_s >= horizon_s_) {
        if (--queue.alive <= 0) {
            dropped_after_horizon_ += static_cast<int64_t>(
                queue.records.size() - queue.next);
            queue.next = queue.records.size();
        }
        return;
    }
    const TraceRecord& record = queue.records[queue.next++];
    const double release = std::max(free_s, record.t_s);
    if (release >= horizon_s_) {
        // Records are time-sorted, so everything behind this one is
        // past the horizon for every client too.
        dropped_after_horizon_ += 1 + static_cast<int64_t>(
            queue.records.size() - queue.next);
        queue.next = queue.records.size();
        return;
    }
    LoadArrival arrival;
    arrival.t_s = release;
    arrival.tenant = tenant;
    arrival.size = record.size;
    arrival.deadline_s = record.deadline_s;
    pending_.push(Pending{arrival});
}

bool
TraceSource::Peek(LoadArrival* out)
{
    if (pending_.empty()) return false;
    *out = pending_.top().arrival;
    return true;
}

LoadArrival
TraceSource::Take()
{
    T4I_CHECK(!pending_.empty(), "Take() on an empty TraceSource");
    LoadArrival arrival = pending_.top().arrival;
    pending_.pop();
    if (options_.closed_loop) {
        arrival.id = ++next_id_;
        outstanding_[arrival.id] = arrival.tenant;
    }
    return arrival;
}

void
TraceSource::OnRequestEnd(uint64_t id, double end_s, bool success)
{
    (void)success;  // closed-loop clients re-issue either way
    auto it = outstanding_.find(id);
    if (it == outstanding_.end()) return;
    const size_t tenant = it->second;
    outstanding_.erase(it);
    ScheduleNext(tenant, end_s + options_.think_s);
}

bool
TraceSource::Exhausted() const
{
    // Pending and outstanding both empty means no client can ever
    // release another record (any records left are unreachable —
    // their gated releases fell past the horizon).
    return pending_.empty() && outstanding_.empty();
}

// ---------------------------------------------------------------------
// RetryStormSource
// ---------------------------------------------------------------------

RetryStormSource::RetryStormSource(
    std::unique_ptr<ArrivalSource> base, RetryPolicy policy,
    uint64_t seed, double horizon_s)
    : base_(std::move(base)),
      policy_(policy),
      rng_(Substream(seed, "load.retry_jitter")),
      horizon_s_(horizon_s)
{
}

bool
RetryStormSource::Peek(LoadArrival* out)
{
    LoadArrival from_base;
    const bool have_base = base_->Peek(&from_base);
    const bool have_retry = !retries_.empty();
    if (!have_base && !have_retry) return false;
    if (have_base &&
        (!have_retry || from_base.t_s <= retries_.top().arrival.t_s)) {
        *out = from_base;
    } else {
        *out = retries_.top().arrival;
    }
    return true;
}

LoadArrival
RetryStormSource::Take()
{
    LoadArrival from_base;
    const bool have_base = base_->Peek(&from_base);
    const bool have_retry = !retries_.empty();
    T4I_CHECK(have_base || have_retry,
              "Take() on an empty RetryStormSource");
    LoadArrival arrival;
    Outstanding info;
    if (have_base &&
        (!have_retry || from_base.t_s <= retries_.top().arrival.t_s)) {
        arrival = base_->Take();
        info.base_id = arrival.id;  // forward feedback to the base
        info.attempt = 0;
    } else {
        const PendingRetry retry = retries_.top();
        retries_.pop();
        arrival = retry.arrival;
        info.attempt = retry.attempt;
        ++retries_emitted_;
    }
    info.tenant = arrival.tenant;
    info.size = arrival.size;
    info.deadline_s = arrival.deadline_s;
    info.arrival_s = arrival.t_s;
    arrival.id = ++next_id_;
    outstanding_[arrival.id] = info;
    return arrival;
}

void
RetryStormSource::OnRequestEnd(uint64_t id, double end_s,
                               bool success)
{
    auto it = outstanding_.find(id);
    if (it == outstanding_.end()) return;
    const Outstanding info = it->second;
    outstanding_.erase(it);
    if (info.base_id != 0) {
        base_->OnRequestEnd(info.base_id, end_s, success);
    }
    const bool timed_out =
        success && policy_.timeout_s > 0.0 &&
        end_s - info.arrival_s > policy_.timeout_s;
    if ((success && !timed_out) || info.attempt >= policy_.max_retries) {
        return;
    }
    double backoff = policy_.base_s;
    const double scale = std::pow(
        2.0, static_cast<double>(std::min(info.attempt, 20)));
    switch (policy_.backoff) {
        case RetryPolicy::Backoff::kFixed:
            break;
        case RetryPolicy::Backoff::kExponential:
            backoff *= scale;
            break;
        case RetryPolicy::Backoff::kExpJitter:
            // Full jitter: uniform in (0, base * 2^attempt]. The
            // open interval at zero keeps retries strictly after the
            // response.
            backoff *= scale * std::max(rng_.NextDouble(), 1e-9);
            break;
    }
    const double retry_s = end_s + std::max(backoff, 0.0);
    if (retry_s >= horizon_s_) {
        ++retries_suppressed_;
        return;
    }
    PendingRetry retry;
    retry.arrival.t_s = retry_s;
    retry.arrival.tenant = info.tenant;
    retry.arrival.size = info.size;
    retry.arrival.deadline_s = info.deadline_s;
    retry.arrival.client_retry = true;
    retry.attempt = info.attempt + 1;
    retries_.push(retry);
}

bool
RetryStormSource::Exhausted() const
{
    return base_->Exhausted() && retries_.empty() &&
           outstanding_.empty();
}

}  // namespace load
}  // namespace t4i
