/**
 * @file
 * Roofline helpers (the analytic frame the paper uses to compare
 * generations). Attainable performance at an operational intensity is
 * min(peak compute, bandwidth x intensity); the simulator's achieved
 * points must sit on or below this roof — a property the test suite
 * asserts.
 */
#ifndef T4I_ROOFLINE_ROOFLINE_H
#define T4I_ROOFLINE_ROOFLINE_H

#include <string>
#include <vector>

#include "src/arch/chip.h"

namespace t4i {

/** One roofline curve for a chip/dtype pair. */
struct Roofline {
    std::string chip_name;
    DType dtype = DType::kBf16;
    double peak_flops = 0.0;
    double mem_bw_Bps = 0.0;
    /** Intensity where the roof flattens (FLOPs/byte). */
    double ridge_ops_per_byte = 0.0;

    /** Attainable FLOP/s at the given operational intensity. */
    double Attainable(double ops_per_byte) const;
};

/** Builds the HBM roofline of a chip. */
Roofline BuildRoofline(const ChipConfig& chip, DType dtype);

/** A measured application point to plot against the roof. */
struct RooflinePoint {
    std::string label;
    double ops_per_byte = 0.0;    ///< operational intensity
    double achieved_flops = 0.0;  ///< from the simulator
};

/**
 * Renders an ASCII log-log roofline chart with points, for the E5 bench.
 */
std::string RenderRoofline(const Roofline& roof,
                           const std::vector<RooflinePoint>& points);

}  // namespace t4i

#endif  // T4I_ROOFLINE_ROOFLINE_H
