#include "src/roofline/roofline.h"

#include <algorithm>
#include <cmath>

#include "src/common/strings.h"

namespace t4i {

double
Roofline::Attainable(double ops_per_byte) const
{
    return std::min(peak_flops, mem_bw_Bps * ops_per_byte);
}

Roofline
BuildRoofline(const ChipConfig& chip, DType dtype)
{
    Roofline roof;
    roof.chip_name = chip.name;
    roof.dtype = dtype;
    roof.peak_flops = chip.PeakFlops(dtype);
    roof.mem_bw_Bps = chip.dram_bw_Bps;
    roof.ridge_ops_per_byte =
        roof.mem_bw_Bps > 0.0 ? roof.peak_flops / roof.mem_bw_Bps : 0.0;
    return roof;
}

std::string
RenderRoofline(const Roofline& roof,
               const std::vector<RooflinePoint>& points)
{
    // Log-log grid: x = ops/byte in [0.5, 2048], y = GFLOPS.
    constexpr int kCols = 64;
    constexpr int kRows = 18;
    const double x_lo = std::log2(0.5);
    const double x_hi = std::log2(2048.0);
    const double y_hi = std::log2(roof.peak_flops * 2.0);
    const double y_lo = y_hi - 12.0;  // 12 octaves of range

    std::vector<std::string> grid(
        kRows, std::string(static_cast<size_t>(kCols), ' '));
    auto plot = [&](double ops_per_byte, double flops, char mark) {
        const double x = std::log2(std::max(ops_per_byte, 0.51));
        const double y = std::log2(std::max(flops, 1.0));
        int col = static_cast<int>((x - x_lo) / (x_hi - x_lo) *
                                   (kCols - 1));
        int row = static_cast<int>((y_hi - y) / (y_hi - y_lo) *
                                   (kRows - 1));
        col = std::clamp(col, 0, kCols - 1);
        row = std::clamp(row, 0, kRows - 1);
        grid[static_cast<size_t>(row)][static_cast<size_t>(col)] = mark;
    };

    // The roof itself.
    for (int c = 0; c < kCols; ++c) {
        const double x = x_lo + (x_hi - x_lo) * c / (kCols - 1);
        plot(std::pow(2.0, x), roof.Attainable(std::pow(2.0, x)), '-');
    }
    for (const auto& p : points) {
        plot(p.ops_per_byte, p.achieved_flops, '*');
    }

    std::string out = StrFormat(
        "%s %s roofline: peak %.1f TFLOPS, %.0f GB/s, ridge %.0f FLOPs/B\n",
        roof.chip_name.c_str(), DTypeName(roof.dtype),
        roof.peak_flops / 1e12, roof.mem_bw_Bps / 1e9,
        roof.ridge_ops_per_byte);
    for (const auto& row : grid) out += "|" + row + "\n";
    out += "+";
    out.append(kCols, '-');
    out += "> FLOPs/byte (log2, 0.5 .. 2048)\n";
    for (const auto& p : points) {
        out += StrFormat("  * %-8s intensity %7.1f FLOPs/B  achieved "
                         "%7.2f TFLOPS  (roof %7.2f)\n",
                         p.label.c_str(), p.ops_per_byte,
                         p.achieved_flops / 1e12,
                         roof.Attainable(p.ops_per_byte) / 1e12);
    }
    return out;
}

}  // namespace t4i
