/**
 * @file
 * Per-layer profiling of a simulated schedule: where did the time, the
 * FLOPs and the bytes go? This is the report performance engineers
 * read first — it attributes each engine's busy time back to the model
 * layer that issued the work.
 */
#ifndef T4I_SIM_PROFILE_H
#define T4I_SIM_PROFILE_H

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/compiler/program.h"
#include "src/sim/machine.h"

namespace t4i {

/** Aggregated activity of one model layer. */
struct LayerProfile {
    int layer_id = -1;
    /** Layer name (derived from instruction labels). */
    std::string name;
    /** Wall-clock span: first start to last finish of its instrs. */
    double span_s = 0.0;
    /** Busy seconds per engine (overlapping engines both count). */
    double mxu_s = 0.0;
    double vpu_s = 0.0;
    double mem_s = 0.0;   ///< HBM + CMEM
    double link_s = 0.0;  ///< ICI + PCIe
    double macs = 0.0;
    int64_t bytes = 0;
    int64_t instructions = 0;
};

/**
 * Aggregates the schedule per layer, sorted by descending MXU+VPU+mem
 * busy time. @p schedule must come from SimulateWithSchedule on
 * @p program.
 */
StatusOr<std::vector<LayerProfile>> ProfileByLayer(
    const Program& program, const std::vector<ScheduleEntry>& schedule);

/** Renders the top-N rows as an aligned table. */
std::string RenderProfile(const std::vector<LayerProfile>& profiles,
                          size_t top_n = 16);

}  // namespace t4i

#endif  // T4I_SIM_PROFILE_H
