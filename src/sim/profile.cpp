#include "src/sim/profile.h"

#include <algorithm>
#include <map>

#include "src/common/strings.h"
#include "src/common/table.h"

namespace t4i {

StatusOr<std::vector<LayerProfile>>
ProfileByLayer(const Program& program,
               const std::vector<ScheduleEntry>& schedule)
{
    if (schedule.size() != program.instrs.size()) {
        return Status::InvalidArgument(
            "schedule does not match program");
    }

    struct Span {
        double first = 1e300;
        double last = 0.0;
    };
    std::map<int, LayerProfile> by_layer;
    std::map<int, Span> spans;

    for (const auto& entry : schedule) {
        const Instr& instr =
            program.instrs[static_cast<size_t>(entry.instr_id)];
        LayerProfile& p = by_layer[instr.layer_id];
        p.layer_id = instr.layer_id;
        if (p.name.empty()) {
            // The label is "<layer>.<suffix>"; strip the suffix.
            const size_t dot = instr.label.rfind('.');
            p.name = dot == std::string::npos
                         ? instr.label
                         : instr.label.substr(0, dot);
        }
        const double dur = entry.finish_s - entry.start_s;
        switch (instr.engine) {
          case Engine::kMxu: p.mxu_s += dur; break;
          case Engine::kVpu: p.vpu_s += dur; break;
          case Engine::kHbm:
          case Engine::kCmem: p.mem_s += dur; break;
          case Engine::kIci:
          case Engine::kPcie:
          case Engine::kPcieIn: p.link_s += dur; break;
          case Engine::kEngineCount: break;
        }
        p.macs += instr.macs;
        p.bytes += instr.bytes;
        p.instructions += 1;
        Span& span = spans[instr.layer_id];
        span.first = std::min(span.first, entry.start_s);
        span.last = std::max(span.last, entry.finish_s);
    }

    std::vector<LayerProfile> out;
    out.reserve(by_layer.size());
    for (auto& [id, profile] : by_layer) {
        profile.span_s = spans[id].last - spans[id].first;
        out.push_back(std::move(profile));
    }
    std::sort(out.begin(), out.end(),
              [](const LayerProfile& a, const LayerProfile& b) {
                  return a.mxu_s + a.vpu_s + a.mem_s >
                         b.mxu_s + b.vpu_s + b.mem_s;
              });
    return out;
}

std::string
RenderProfile(const std::vector<LayerProfile>& profiles, size_t top_n)
{
    TablePrinter table({"Layer", "Span", "MXU", "VPU", "Mem", "Link",
                        "GMACs", "Bytes", "Instrs"});
    for (size_t i = 0; i < profiles.size() && i < top_n; ++i) {
        const auto& p = profiles[i];
        table.AddRow({
            p.name,
            HumanSeconds(p.span_s),
            HumanSeconds(p.mxu_s),
            HumanSeconds(p.vpu_s),
            HumanSeconds(p.mem_s),
            HumanSeconds(p.link_s),
            StrFormat("%.2f", p.macs / 1e9),
            HumanBytes(static_cast<double>(p.bytes)),
            StrFormat("%lld", static_cast<long long>(p.instructions)),
        });
    }
    std::string out = table.Render();
    if (profiles.size() > top_n) {
        out += StrFormat("... and %zu more layers\n",
                         profiles.size() - top_n);
    }
    return out;
}

}  // namespace t4i
