#include "src/sim/timing.h"

#include <algorithm>
#include <cmath>

#include "src/common/status.h"
#include "src/common/units.h"

namespace t4i {

double
MxuRateFactor(const ChipConfig& chip, DType dtype)
{
    switch (dtype) {
      case DType::kInt8:
        return chip.supports_int8 ? chip.mxu.int8_rate : 0.0;
      case DType::kBf16:
        return chip.supports_bf16 ? 1.0 : 0.0;
      case DType::kFp32:
        // fp32 runs through the bf16 array with 4-pass splitting.
        return chip.supports_bf16 ? 0.25 : 0.0;
    }
    return 0.0;
}

double
MxuCycles(const ChipConfig& chip, const Instr& instr)
{
    const double rate = MxuRateFactor(chip, instr.dtype);
    T4I_CHECK(rate > 0.0, "dtype unsupported on this chip");
    const int arrays = chip.mxu.count * chip.num_cores;
    const double passes =
        static_cast<double>(instr.k_tiles * instr.n_tiles);
    // Work divides across the arrays; the ceil models the remainder
    // imbalance of the last wave of passes.
    const double passes_per_array =
        std::ceil(passes / static_cast<double>(arrays));
    // One pass: stream `rows` activations at `rate` rows/cycle, plus
    // fill+drain of the array depth.
    const double fill = 2.0 * static_cast<double>(chip.mxu.rows);
    const double cycles_per_pass =
        static_cast<double>(instr.rows) / rate + fill;
    // The sequencer issues one pass descriptor at a time; with enough
    // arrays the descriptor stream, not the arrays, limits throughput.
    const double issue_cycles =
        passes * static_cast<double>(chip.mxu.issue_cycles) /
        static_cast<double>(chip.num_cores);
    return std::max(passes_per_array * cycles_per_pass, issue_cycles) /
           chip.sustained_compute_fraction;
}

double
VpuCycles(const ChipConfig& chip, const Instr& instr)
{
    const double lanes = static_cast<double>(chip.vpu_lanes) *
                         chip.vpu_ops_per_lane *
                         static_cast<double>(chip.num_cores);
    T4I_CHECK(lanes > 0.0, "chip has no vector capability");
    double work = static_cast<double>(instr.elements) *
                  std::max(instr.flops_per_element, 1.0);
    // A fixed-function activation pipeline (TPUv1) runs post-2017
    // transcendental primitives (softmax/layernorm/GELU) far off its
    // line rate; a programmable VPU does not care (Lesson 9).
    if (instr.complex_vector && !chip.flexible_vpu) work *= 16.0;
    // Issue overhead per macro-op.
    return work / lanes / chip.sustained_compute_fraction + 32.0;
}

double
InstrDuration(const ChipConfig& chip, const Instr& instr)
{
    switch (instr.engine) {
      case Engine::kMxu:
        return MxuCycles(chip, instr) / chip.clock_hz;
      case Engine::kVpu:
        return VpuCycles(chip, instr) / chip.clock_hz;
      case Engine::kHbm: {
        const double bw = chip.dram_bw_Bps * instr.bw_efficiency;
        return static_cast<double>(instr.bytes) / bw +
               chip.dram_latency_s;
      }
      case Engine::kCmem: {
        T4I_CHECK(chip.cmem_bw_Bps > 0.0,
                  "CMEM instruction on a chip without CMEM");
        const double bw = chip.cmem_bw_Bps * instr.bw_efficiency;
        return static_cast<double>(instr.bytes) / bw + 20e-9;
      }
      case Engine::kIci: {
        const double bw = static_cast<double>(chip.ici_links) *
                          chip.ici_bw_Bps_per_link;
        T4I_CHECK(bw > 0.0, "ICI instruction on a chip without links");
        return static_cast<double>(instr.bytes) / bw + 1e-6;
      }
      case Engine::kPcie:
      case Engine::kPcieIn:
        return static_cast<double>(instr.bytes) / chip.pcie_bw_Bps +
               2e-6;
      case Engine::kEngineCount:
        break;
    }
    T4I_CHECK(false, "bad engine");
    return 0.0;
}

}  // namespace t4i
