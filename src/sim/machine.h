/**
 * @file
 * The machine simulator: executes a compiled Program on a ChipConfig and
 * reports timing, utilization and activity counters.
 *
 * Execution model: every engine (MXU pool, VPU, HBM channel, CMEM port,
 * ICI, PCIe) is an in-order queue, like the hardware's DMA descriptor
 * rings and the TensorCore's in-order issue. An instruction starts when
 * it reaches its engine's head AND all its dependencies have finished.
 * Because dependencies always point backwards in program order and
 * queues are in-order, a single forward pass computes the exact schedule
 * — no event heap needed — while still resolving all cross-engine
 * overlap and head-of-line blocking.
 */
#ifndef T4I_SIM_MACHINE_H
#define T4I_SIM_MACHINE_H

#include <array>
#include <string>
#include <vector>

#include "src/arch/chip.h"
#include "src/common/status.h"
#include "src/compiler/program.h"
#include "src/obs/registry.h"

namespace t4i {

/** Activity and timing of one engine over a run. */
struct EngineStats {
    double busy_s = 0.0;
    int64_t instructions = 0;
    int64_t bytes = 0;       ///< transfer engines only
    double utilization = 0.0;

    // Stall attribution: when an instruction reached the head of this
    // engine's queue, what was it waiting for?
    /** Seconds the engine sat idle waiting on cross-engine deps. */
    double dep_stall_s = 0.0;
    /** Seconds instructions waited ready behind a busy engine. */
    double queue_stall_s = 0.0;
    int64_t dep_stalls = 0;    ///< instructions delayed by deps
    int64_t queue_stalls = 0;  ///< instructions delayed by the engine
};

/** Result of simulating one program execution. */
struct SimResult {
    /** End-to-end latency of one inference (batch) in seconds. */
    double latency_s = 0.0;
    /** Same, in core clock cycles. */
    double cycles = 0.0;

    std::array<EngineStats, static_cast<size_t>(Engine::kEngineCount)>
        engines;

    double total_macs = 0.0;
    double vpu_flops = 0.0;

    /** Achieved matrix FLOP/s over the run (2*macs / latency). */
    double achieved_flops = 0.0;
    /** Achieved / peak at the program's dtype. */
    double mxu_utilization = 0.0;

    /**
     * Steady-state throughput in inferences/s when batches run
     * back-to-back: the bottleneck engine limits the pipeline
     * (batch / max engine busy time).
     */
    double steady_state_ips = 0.0;

    /** Convenience accessor. */
    const EngineStats& engine(Engine e) const
    {
        return engines[static_cast<size_t>(e)];
    }

    std::string Summary() const;

    /**
     * gem5-style machine-readable stats dump: one `key value` pair per
     * line, stable key names, suitable for grep/awk pipelines.
     */
    std::string DumpStats() const;
};

/**
 * Simulates @p program on @p chip. The chip must match the one the
 * program was compiled for (checked by name).
 */
StatusOr<SimResult> Simulate(const Program& program,
                             const ChipConfig& chip);

/**
 * Records @p result into @p registry (Global() by default): run-level
 * gauges (`sim.latency_seconds`, `sim.mxu_utilization`, ...) plus
 * per-engine gauges and counters labeled `{engine=NAME}` — including
 * the stall-reason split above. Engines that saw no instructions are
 * skipped so the export stays dense.
 */
void RecordSimMetrics(const SimResult& result,
                      obs::MetricsRegistry* registry = nullptr);

/** Per-instruction schedule entry (for tests and trace dumps). */
struct ScheduleEntry {
    int instr_id;
    double start_s;
    double finish_s;
};

/** Simulates and also returns the full schedule. */
StatusOr<SimResult> SimulateWithSchedule(
    const Program& program, const ChipConfig& chip,
    std::vector<ScheduleEntry>* schedule);

/** Throughput picture of a back-to-back pipelined run. */
struct PipelineResult {
    int iterations = 0;
    double total_s = 0.0;        ///< makespan of all iterations
    double first_latency_s = 0.0;
    /** Inferences/s in steady state (excluding pipeline fill). */
    double steady_ips = 0.0;
};

/**
 * Simulates @p iterations of the program issued back-to-back — engine
 * queues stay warm across iterations, so later iterations overlap
 * earlier ones wherever the engines allow. This is the ground-truth
 * version of SimResult::steady_state_ips (which is the analytic
 * bottleneck-engine bound).
 */
StatusOr<PipelineResult> SimulatePipelined(const Program& program,
                                           const ChipConfig& chip,
                                           int iterations);

}  // namespace t4i

#endif  // T4I_SIM_MACHINE_H
