/**
 * @file
 * Chrome-trace export of a simulated schedule.
 *
 * Writes the `chrome://tracing` / Perfetto JSON event format: one track
 * per engine, one complete ('X') event per instruction. Loading the
 * file in a trace viewer shows the overlap structure the compiler
 * created — weight prefetch sliding under MXU work, ICI all-gathers
 * serializing sharded layers, and so on.
 */
#ifndef T4I_SIM_TRACE_H
#define T4I_SIM_TRACE_H

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/compiler/program.h"
#include "src/obs/trace_builder.h"
#include "src/sim/machine.h"

namespace t4i {

/**
 * Renders the schedule as Chrome-trace JSON. Timestamps are in
 * microseconds, as the format expects.
 */
StatusOr<std::string> RenderChromeTrace(
    const Program& program, const std::vector<ScheduleEntry>& schedule);

/** Renders and writes to @p path. */
Status WriteChromeTrace(const Program& program,
                        const std::vector<ScheduleEntry>& schedule,
                        const std::string& path);

/**
 * Appends the *enriched* trace of a simulated schedule to @p builder
 * under process id @p pid: the per-engine 'X' timeline plus
 *   - counter tracks: ready-queue depth for the MXU and HBM engines,
 *     achieved HBM/CMEM bandwidth (GB/s, bucketed), and the CMEM
 *     pinned-weight occupancy (MiB);
 *   - flow events: arrows from each cross-engine dependency (producer
 *     finish -> consumer start), capped at @p max_flow_events so huge
 *     programs stay loadable.
 * Callers can merge several sources (e.g. the serving simulator) into
 * the same builder under different pids before rendering.
 */
Status AppendScheduleTrace(const Program& program,
                           const std::vector<ScheduleEntry>& schedule,
                           obs::TraceBuilder* builder, int pid = 1,
                           int max_flow_events = 200);

/** Renders the enriched trace (convenience over AppendScheduleTrace). */
StatusOr<std::string> RenderEnrichedChromeTrace(
    const Program& program, const std::vector<ScheduleEntry>& schedule);

/** Renders the enriched trace and writes it to @p path. */
Status WriteEnrichedChromeTrace(
    const Program& program, const std::vector<ScheduleEntry>& schedule,
    const std::string& path);

}  // namespace t4i

#endif  // T4I_SIM_TRACE_H
