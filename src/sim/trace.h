/**
 * @file
 * Chrome-trace export of a simulated schedule.
 *
 * Writes the `chrome://tracing` / Perfetto JSON event format: one track
 * per engine, one complete ('X') event per instruction. Loading the
 * file in a trace viewer shows the overlap structure the compiler
 * created — weight prefetch sliding under MXU work, ICI all-gathers
 * serializing sharded layers, and so on.
 */
#ifndef T4I_SIM_TRACE_H
#define T4I_SIM_TRACE_H

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/compiler/program.h"
#include "src/sim/machine.h"

namespace t4i {

/**
 * Renders the schedule as Chrome-trace JSON. Timestamps are in
 * microseconds, as the format expects.
 */
StatusOr<std::string> RenderChromeTrace(
    const Program& program, const std::vector<ScheduleEntry>& schedule);

/** Renders and writes to @p path. */
Status WriteChromeTrace(const Program& program,
                        const std::vector<ScheduleEntry>& schedule,
                        const std::string& path);

}  // namespace t4i

#endif  // T4I_SIM_TRACE_H
