#include "src/sim/perfcounters.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/common/strings.h"
#include "src/common/table.h"

namespace t4i {
namespace {

constexpr double kUsPerSecond = 1e6;

/** Default number of windows when no interval is requested. */
constexpr size_t kAutoWindows = 64;
/** Hard cap on windows so a tiny interval cannot blow up memory. */
constexpr size_t kMaxWindows = 16384;

/** Per-instruction stall attribution, replaying the in-order engine
 *  queues exactly the way machine.cpp scheduled them. */
struct InstrStalls {
    std::vector<double> dep_s;
    std::vector<double> queue_s;
};

StatusOr<InstrStalls>
ReplayStalls(const Program& program,
             const std::vector<ScheduleEntry>& entries)
{
    const size_t n = program.instrs.size();
    if (entries.size() != n) {
        return Status::InvalidArgument("schedule does not match program");
    }
    std::vector<double> finish(n, 0.0);
    for (const auto& e : entries) {
        if (e.instr_id < 0 || static_cast<size_t>(e.instr_id) >= n) {
            return Status::InvalidArgument("schedule entry out of range");
        }
        finish[static_cast<size_t>(e.instr_id)] = e.finish_s;
    }
    InstrStalls stalls;
    stalls.dep_s.assign(n, 0.0);
    stalls.queue_s.assign(n, 0.0);
    std::array<double, kNumEngines> engine_free{};
    for (size_t i = 0; i < n; ++i) {
        const Instr& instr = program.instrs[i];
        const auto e = static_cast<size_t>(instr.engine);
        double dep_ready = 0.0;
        for (int dep : instr.deps) {
            dep_ready =
                std::max(dep_ready, finish[static_cast<size_t>(dep)]);
        }
        if (dep_ready > engine_free[e]) {
            stalls.dep_s[i] = dep_ready - engine_free[e];
        } else if (engine_free[e] > dep_ready) {
            stalls.queue_s[i] = engine_free[e] - dep_ready;
        }
        engine_free[e] = finish[i];
    }
    return stalls;
}

int64_t
IciFlits(const Instr& instr)
{
    if (instr.engine != Engine::kIci) return 0;
    return (instr.bytes + kIciFlitBytes - 1) / kIciFlitBytes;
}

}  // namespace

double
PerfCounterFile::SampledBusyCycles(Engine engine) const
{
    double total = 0.0;
    for (const auto& s : samples) {
        total += s.busy_cycles[static_cast<size_t>(engine)];
    }
    return total;
}

double
PerfCounterFile::SampledBytes(Engine engine) const
{
    double total = 0.0;
    for (const auto& s : samples) {
        total += s.bytes[static_cast<size_t>(engine)];
    }
    return total;
}

std::string
PerfCounterFile::Summary() const
{
    std::string out = StrFormat(
        "perf counters: %zu samples at %s intervals over %s\n",
        samples.size(),
        HumanSeconds(sample_interval_s).c_str(),
        HumanSeconds(duration_s).c_str());
    for (size_t e = 0; e < kNumEngines; ++e) {
        if (issue_count[e] == 0) continue;
        const char* name = EngineName(static_cast<Engine>(e));
        out += StrFormat(
            "  %-6s busy %s cyc, stall %s dep / %s queue, "
            "%lld issues",
            name, HumanCount(busy_cycles[e]).c_str(),
            HumanCount(dep_stall_cycles[e]).c_str(),
            HumanCount(queue_stall_cycles[e]).c_str(),
            static_cast<long long>(issue_count[e]));
        if (bytes[e] > 0) {
            out += ", " + HumanBytes(static_cast<double>(bytes[e]));
        }
        out += '\n';
    }
    for (size_t k = 0; k < kNumInstrKinds; ++k) {
        if (kind_count[k] == 0) continue;
        out += StrFormat("  class %-7s %lld\n",
                         InstrKindName(static_cast<InstrKind>(k)),
                         static_cast<long long>(kind_count[k]));
    }
    if (ici_flits > 0) {
        out += StrFormat("  ICI flits %lld\n",
                         static_cast<long long>(ici_flits));
    }
    return out;
}

StatusOr<PerfCounterFile>
CollectPerfCounters(const Program& program, const ChipConfig& chip,
                    const std::vector<ScheduleEntry>& schedule,
                    double sample_interval_s)
{
    auto stalls = ReplayStalls(program, schedule);
    T4I_RETURN_IF_ERROR(stalls.status());

    PerfCounterFile file;
    file.clock_hz = chip.clock_hz;
    for (const auto& entry : schedule) {
        file.duration_s = std::max(file.duration_s, entry.finish_s);
    }

    double dt = sample_interval_s;
    if (dt <= 0.0) {
        dt = file.duration_s > 0.0
                 ? file.duration_s / static_cast<double>(kAutoWindows)
                 : 1e-6;
    }
    const size_t windows = file.duration_s > 0.0
        ? static_cast<size_t>(std::ceil(file.duration_s / dt))
        : 1;
    if (windows > kMaxWindows) {
        return Status::InvalidArgument(StrFormat(
            "sampling interval %s yields %zu windows (max %zu)",
            HumanSeconds(dt).c_str(), windows, kMaxWindows));
    }
    file.sample_interval_s = dt;
    file.samples.resize(windows);
    for (size_t w = 0; w < windows; ++w) {
        file.samples[w].t0_s = static_cast<double>(w) * dt;
        file.samples[w].t1_s =
            std::min(static_cast<double>(w + 1) * dt, file.duration_s);
    }
    if (!file.samples.empty()) {
        // The last window is clipped to the run end; never shorter
        // than the run when duration rounds exactly onto a boundary.
        file.samples.back().t1_s =
            std::max(file.samples.back().t1_s, file.duration_s);
    }

    for (size_t i = 0; i < schedule.size(); ++i) {
        const ScheduleEntry& entry = schedule[i];
        const Instr& instr =
            program.instrs[static_cast<size_t>(entry.instr_id)];
        const auto e = static_cast<size_t>(instr.engine);
        const double dur = entry.finish_s - entry.start_s;

        file.busy_cycles[e] += dur * chip.clock_hz;
        file.dep_stall_cycles[e] +=
            stalls.value().dep_s[static_cast<size_t>(entry.instr_id)] *
            chip.clock_hz;
        file.queue_stall_cycles[e] +=
            stalls.value().queue_s[static_cast<size_t>(entry.instr_id)] *
            chip.clock_hz;
        file.issue_count[e] += 1;
        file.bytes[e] += instr.bytes;
        file.kind_count[static_cast<size_t>(instr.kind)] += 1;
        file.ici_flits += IciFlits(instr);

        // Pro-rata attribution of the instruction's activity to every
        // window it overlaps, so the series integrates exactly to the
        // aggregate registers.
        const auto first = static_cast<size_t>(std::clamp<double>(
            std::floor(entry.start_s / dt), 0.0,
            static_cast<double>(windows - 1)));
        for (size_t w = first; w < windows; ++w) {
            PerfCounterSample& s = file.samples[w];
            const double lo = std::max(entry.start_s, s.t0_s);
            const double hi = std::min(entry.finish_s, s.t1_s);
            if (hi <= lo) {
                if (s.t0_s > entry.finish_s) break;
                continue;
            }
            const double frac = dur > 0.0 ? (hi - lo) / dur : 1.0;
            s.busy_cycles[e] += (hi - lo) * chip.clock_hz;
            s.bytes[e] += static_cast<double>(instr.bytes) * frac;
            s.ici_flits += static_cast<double>(IciFlits(instr)) * frac;
            if (entry.start_s >= s.t0_s && entry.start_s < s.t1_s) {
                s.issues[e] += 1;
            }
        }
        // Zero-duration corner: count the issue in its start window.
        if (dur <= 0.0) {
            file.samples[first].issues[e] += 1;
        }
    }
    return file;
}

void
RecordCounterMetrics(const PerfCounterFile& file,
                     obs::MetricsRegistry* registry,
                     size_t max_sample_rows)
{
    obs::MetricsRegistry& reg =
        registry != nullptr ? *registry : obs::MetricsRegistry::Global();

    for (size_t e = 0; e < kNumEngines; ++e) {
        if (file.issue_count[e] == 0) continue;
        const obs::Labels labels = {
            {"engine", EngineName(static_cast<Engine>(e))}};
        reg.GetCounter("sim.counter.busy_cycles", labels)
            ->Increment(std::llround(file.busy_cycles[e]));
        reg.GetCounter("sim.counter.dep_stall_cycles", labels)
            ->Increment(std::llround(file.dep_stall_cycles[e]));
        reg.GetCounter("sim.counter.queue_stall_cycles", labels)
            ->Increment(std::llround(file.queue_stall_cycles[e]));
        reg.GetCounter("sim.counter.issue", labels)
            ->Increment(file.issue_count[e]);
        reg.GetCounter("sim.counter.bytes", labels)
            ->Increment(file.bytes[e]);
    }
    for (size_t k = 0; k < kNumInstrKinds; ++k) {
        if (file.kind_count[k] == 0) continue;
        reg.GetCounter("sim.counter.instr_kind",
                       {{"kind",
                         InstrKindName(static_cast<InstrKind>(k))}})
            ->Increment(file.kind_count[k]);
    }
    // Always present (zero without multi-chip programs) so the export
    // shape does not depend on the topology.
    reg.GetCounter("sim.counter.ici_flits")->Increment(file.ici_flits);

    // Sampled series: re-bucket down to at most max_sample_rows rows
    // (merging preserves the integral), one gauge per (engine, row).
    if (file.samples.empty() || max_sample_rows == 0) return;
    const size_t group =
        (file.samples.size() + max_sample_rows - 1) / max_sample_rows;
    const size_t rows =
        (file.samples.size() + group - 1) / group;
    reg.GetGauge("sim.counter.sample_interval_us")
        ->Set(file.sample_interval_s * static_cast<double>(group) *
              kUsPerSecond);
    reg.GetGauge("sim.counter.samples")
        ->Set(static_cast<double>(rows));
    for (size_t r = 0; r < rows; ++r) {
        const size_t begin = r * group;
        const size_t end =
            std::min(begin + group, file.samples.size());
        const std::string row = StrFormat("%04zu", r);
        double t1 = 0.0;
        std::array<double, kNumEngines> busy{};
        std::array<double, kNumEngines> bytes{};
        for (size_t w = begin; w < end; ++w) {
            const PerfCounterSample& s = file.samples[w];
            t1 = s.t1_s;
            for (size_t e = 0; e < kNumEngines; ++e) {
                busy[e] += s.busy_cycles[e];
                bytes[e] += s.bytes[e];
            }
        }
        reg.GetGauge("sim.counter.sample.end_us", {{"sample", row}})
            ->Set(t1 * kUsPerSecond);
        for (size_t e = 0; e < kNumEngines; ++e) {
            if (file.issue_count[e] == 0) continue;
            const obs::Labels labels = {
                {"engine", EngineName(static_cast<Engine>(e))},
                {"sample", row}};
            reg.GetGauge("sim.counter.sample.busy_cycles", labels)
                ->Set(busy[e]);
            if (file.bytes[e] > 0) {
                reg.GetGauge("sim.counter.sample.bytes", labels)
                    ->Set(bytes[e]);
            }
        }
    }
}

Status
AppendCounterTracks(const PerfCounterFile& file,
                    obs::TraceBuilder* builder, int pid)
{
    if (builder == nullptr) {
        return Status::InvalidArgument("null trace builder");
    }
    for (size_t e = 0; e < kNumEngines; ++e) {
        if (file.issue_count[e] == 0) continue;
        const std::string track = StrFormat(
            "perfctr: %s busy %%",
            EngineName(static_cast<Engine>(e)));
        for (const auto& s : file.samples) {
            const double window_cycles =
                (s.t1_s - s.t0_s) * file.clock_hz;
            const double pct = window_cycles > 0.0
                ? 100.0 * s.busy_cycles[e] / window_cycles
                : 0.0;
            builder->AddCounter(pid, track, s.t0_s * kUsPerSecond, pct);
        }
        builder->AddCounter(pid, track,
                            file.duration_s * kUsPerSecond, 0.0);
    }
    if (file.ici_flits > 0) {
        const std::string track = "perfctr: ICI flits/s";
        for (const auto& s : file.samples) {
            const double window_s = s.t1_s - s.t0_s;
            builder->AddCounter(
                pid, track, s.t0_s * kUsPerSecond,
                window_s > 0.0 ? s.ici_flits / window_s : 0.0);
        }
        builder->AddCounter(pid, track,
                            file.duration_s * kUsPerSecond, 0.0);
    }
    return Status::Ok();
}

StatusOr<std::vector<OpProfile>>
ProfileByOp(const Program& program, const ChipConfig& chip,
            const std::vector<ScheduleEntry>& schedule)
{
    auto stalls = ReplayStalls(program, schedule);
    T4I_RETURN_IF_ERROR(stalls.status());

    struct Span {
        double first = 1e300;
        double last = 0.0;
    };
    std::map<int, OpProfile> by_op;
    std::map<int, Span> spans;

    for (const auto& entry : schedule) {
        const Instr& instr =
            program.instrs[static_cast<size_t>(entry.instr_id)];
        OpProfile& op = by_op[instr.hlo_op_id];
        op.hlo_op_id = instr.hlo_op_id;
        if (op.name.empty()) {
            if (instr.hlo_op_id >= 0) {
                const HloOp& hlo = program.hlo_ops[
                    static_cast<size_t>(instr.hlo_op_id)];
                op.name = hlo.name;
                op.layer_id = hlo.layer_id;
            } else {
                op.name = "(unattributed)";
                op.layer_id = instr.layer_id;
            }
        }
        const double cycles =
            (entry.finish_s - entry.start_s) * chip.clock_hz;
        switch (instr.engine) {
          case Engine::kMxu: op.mxu_cycles += cycles; break;
          case Engine::kVpu: op.vpu_cycles += cycles; break;
          case Engine::kHbm:
            op.hbm_bytes += instr.bytes;
            op.mem_cycles += cycles;
            break;
          case Engine::kCmem:
            op.cmem_bytes += instr.bytes;
            op.mem_cycles += cycles;
            break;
          case Engine::kIci:
          case Engine::kPcie:
          case Engine::kPcieIn: op.link_cycles += cycles; break;
          case Engine::kEngineCount: break;
        }
        op.busy_cycles += cycles;
        op.dep_stall_cycles +=
            stalls.value().dep_s[static_cast<size_t>(entry.instr_id)] *
            chip.clock_hz;
        op.queue_stall_cycles +=
            stalls.value().queue_s[static_cast<size_t>(entry.instr_id)] *
            chip.clock_hz;
        op.macs += instr.macs;
        op.instructions += 1;
        Span& span = spans[instr.hlo_op_id];
        span.first = std::min(span.first, entry.start_s);
        span.last = std::max(span.last, entry.finish_s);
    }

    const double peak = chip.PeakFlops(program.dtype);
    std::vector<OpProfile> out;
    out.reserve(by_op.size());
    for (auto& [id, op] : by_op) {
        op.span_s = spans[id].last - spans[id].first;
        const double flops = 2.0 * op.macs;
        op.achieved_flops =
            op.span_s > 0.0 ? flops / op.span_s : 0.0;
        if (op.hbm_bytes > 0) {
            op.operational_intensity =
                flops / static_cast<double>(op.hbm_bytes);
            op.ceiling_flops = std::min(
                peak, op.operational_intensity * chip.dram_bw_Bps);
        } else {
            op.operational_intensity = 0.0;
            op.ceiling_flops = peak;
        }
        out.push_back(std::move(op));
    }
    std::sort(out.begin(), out.end(),
              [](const OpProfile& a, const OpProfile& b) {
                  return a.busy_cycles > b.busy_cycles;
              });
    return out;
}

std::string
RenderOpRoofline(const std::vector<OpProfile>& ops,
                 const PerfCounterFile& counters, size_t top_n)
{
    double total_busy = 0.0;
    for (const auto& c : counters.busy_cycles) total_busy += c;
    double op_busy = 0.0;
    for (const auto& op : ops) op_busy += op.busy_cycles;

    TablePrinter table({"Op", "Cycles", "Busy%", "MXU", "VPU", "Mem",
                        "Link", "Stall d/q", "OI F/B", "GFLOP/s",
                        "Ceil", "%ceil"});
    for (size_t i = 0; i < ops.size() && i < top_n; ++i) {
        const auto& op = ops[i];
        table.AddRow({
            op.name,
            HumanCount(op.busy_cycles),
            StrFormat("%.1f", total_busy > 0.0
                                  ? 100.0 * op.busy_cycles / total_busy
                                  : 0.0),
            HumanCount(op.mxu_cycles),
            HumanCount(op.vpu_cycles),
            HumanCount(op.mem_cycles),
            HumanCount(op.link_cycles),
            HumanCount(op.dep_stall_cycles) + "/" +
                HumanCount(op.queue_stall_cycles),
            op.operational_intensity > 0.0
                ? StrFormat("%.1f", op.operational_intensity)
                : "-",
            StrFormat("%.1f", op.achieved_flops / 1e9),
            StrFormat("%.1f", op.ceiling_flops / 1e9),
            StrFormat("%.1f", op.ceiling_flops > 0.0
                                  ? 100.0 * op.achieved_flops /
                                        op.ceiling_flops
                                  : 0.0),
        });
    }
    std::string out = table.Render();
    if (ops.size() > top_n) {
        out += StrFormat("... and %zu more ops\n", ops.size() - top_n);
    }
    out += StrFormat(
        "conservation: per-op cycles %.0f vs engine busy cycles %.0f "
        "(delta %.3g)\n",
        op_busy, total_busy, op_busy - total_busy);
    return out;
}

}  // namespace t4i
