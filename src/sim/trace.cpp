#include "src/sim/trace.h"

#include <cstdio>

#include "src/common/strings.h"

namespace t4i {
namespace {

/** Escapes the few characters instruction labels could contain. */
std::string
JsonEscape(const std::string& raw)
{
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
        if (c == '"' || c == '\\') out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

}  // namespace

StatusOr<std::string>
RenderChromeTrace(const Program& program,
                  const std::vector<ScheduleEntry>& schedule)
{
    if (schedule.size() != program.instrs.size()) {
        return Status::InvalidArgument(
            "schedule does not match program");
    }
    std::string out = "[\n";
    // Track-name metadata per engine.
    for (int e = 0; e < static_cast<int>(Engine::kEngineCount); ++e) {
        out += StrFormat(
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
            "\"tid\":%d,\"args\":{\"name\":\"%s\"}},\n",
            e, EngineName(static_cast<Engine>(e)));
    }
    for (const auto& entry : schedule) {
        const Instr& instr =
            program.instrs[static_cast<size_t>(entry.instr_id)];
        out += StrFormat(
            "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
            "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d,"
            "\"args\":{\"id\":%d,\"layer\":%d}},\n",
            JsonEscape(instr.label).c_str(), InstrKindName(instr.kind),
            entry.start_s * 1e6,
            (entry.finish_s - entry.start_s) * 1e6,
            static_cast<int>(instr.engine), instr.id, instr.layer_id);
    }
    // Trailing comma is legal in the Chrome trace format, but keep the
    // JSON strict: swap the final ",\n" for "\n".
    if (out.size() >= 2 && out[out.size() - 2] == ',') {
        out.erase(out.size() - 2, 1);
    }
    out += "]\n";
    return out;
}

Status
WriteChromeTrace(const Program& program,
                 const std::vector<ScheduleEntry>& schedule,
                 const std::string& path)
{
    auto rendered = RenderChromeTrace(program, schedule);
    T4I_RETURN_IF_ERROR(rendered.status());
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        return Status::InvalidArgument("cannot open " + path);
    }
    std::fwrite(rendered.value().data(), 1, rendered.value().size(), f);
    std::fclose(f);
    return Status::Ok();
}

}  // namespace t4i
