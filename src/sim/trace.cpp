#include "src/sim/trace.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "src/common/strings.h"

namespace t4i {
namespace {

/** Escapes the few characters instruction labels could contain. */
std::string
JsonEscape(const std::string& raw)
{
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
        if (c == '"' || c == '\\') out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

}  // namespace

StatusOr<std::string>
RenderChromeTrace(const Program& program,
                  const std::vector<ScheduleEntry>& schedule)
{
    if (schedule.size() != program.instrs.size()) {
        return Status::InvalidArgument(
            "schedule does not match program");
    }
    std::string out = "[\n";
    // Track-name metadata per engine.
    for (int e = 0; e < static_cast<int>(Engine::kEngineCount); ++e) {
        out += StrFormat(
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
            "\"tid\":%d,\"args\":{\"name\":\"%s\"}},\n",
            e, EngineName(static_cast<Engine>(e)));
    }
    for (const auto& entry : schedule) {
        const Instr& instr =
            program.instrs[static_cast<size_t>(entry.instr_id)];
        out += StrFormat(
            "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
            "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d,"
            "\"args\":{\"id\":%d,\"layer\":%d}},\n",
            JsonEscape(instr.label).c_str(), InstrKindName(instr.kind),
            entry.start_s * 1e6,
            (entry.finish_s - entry.start_s) * 1e6,
            static_cast<int>(instr.engine), instr.id, instr.layer_id);
    }
    // Trailing comma is legal in the Chrome trace format, but keep the
    // JSON strict: swap the final ",\n" for "\n".
    if (out.size() >= 2 && out[out.size() - 2] == ',') {
        out.erase(out.size() - 2, 1);
    }
    out += "]\n";
    return out;
}

Status
WriteChromeTrace(const Program& program,
                 const std::vector<ScheduleEntry>& schedule,
                 const std::string& path)
{
    auto rendered = RenderChromeTrace(program, schedule);
    T4I_RETURN_IF_ERROR(rendered.status());
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        return Status::InvalidArgument("cannot open " + path);
    }
    std::fwrite(rendered.value().data(), 1, rendered.value().size(), f);
    std::fclose(f);
    return Status::Ok();
}

namespace {

constexpr double kUsPerSecond = 1e6;
/** Buckets for the achieved-bandwidth counter tracks. */
constexpr int kBandwidthBuckets = 64;

/**
 * Emits an achieved-bandwidth counter track for one transfer engine:
 * each instruction's bytes are spread uniformly over its active
 * interval, accumulated into fixed time buckets.
 */
void
EmitBandwidthTrack(const Program& program,
                   const std::vector<ScheduleEntry>& schedule,
                   Engine engine, const std::string& track_name,
                   double makespan_s, obs::TraceBuilder* builder,
                   int pid)
{
    if (makespan_s <= 0.0) return;
    std::vector<double> bucket_bytes(kBandwidthBuckets, 0.0);
    const double bucket_s = makespan_s / kBandwidthBuckets;
    bool any = false;
    for (const auto& entry : schedule) {
        const Instr& instr =
            program.instrs[static_cast<size_t>(entry.instr_id)];
        if (instr.engine != engine || instr.bytes <= 0) continue;
        any = true;
        const double span = entry.finish_s - entry.start_s;
        const int lo = std::min(
            kBandwidthBuckets - 1,
            static_cast<int>(entry.start_s / bucket_s));
        const int hi = std::min(
            kBandwidthBuckets - 1,
            static_cast<int>(entry.finish_s / bucket_s));
        if (span <= 0.0) {
            bucket_bytes[static_cast<size_t>(lo)] +=
                static_cast<double>(instr.bytes);
            continue;
        }
        for (int b = lo; b <= hi; ++b) {
            const double overlap =
                std::min(entry.finish_s, (b + 1) * bucket_s) -
                std::max(entry.start_s, b * bucket_s);
            if (overlap <= 0.0) continue;
            bucket_bytes[static_cast<size_t>(b)] +=
                static_cast<double>(instr.bytes) * overlap / span;
        }
    }
    if (!any) return;
    for (int b = 0; b < kBandwidthBuckets; ++b) {
        builder->AddCounter(
            pid, track_name, b * bucket_s * kUsPerSecond,
            bucket_bytes[static_cast<size_t>(b)] / bucket_s / 1e9);
    }
    builder->AddCounter(pid, track_name, makespan_s * kUsPerSecond,
                        0.0);
}

/**
 * Emits a ready-queue-depth counter track for one engine: an
 * instruction is "queued" from the moment its dependencies finished
 * until its engine issued it.
 */
void
EmitQueueDepthTrack(const Program& program,
                    const std::vector<ScheduleEntry>& schedule,
                    const std::vector<double>& finish_by_id,
                    Engine engine, const std::string& track_name,
                    obs::TraceBuilder* builder, int pid)
{
    // (+1 at ready, -1 at issue) deltas, time-sorted.
    std::vector<std::pair<double, int>> deltas;
    for (const auto& entry : schedule) {
        const Instr& instr =
            program.instrs[static_cast<size_t>(entry.instr_id)];
        if (instr.engine != engine) continue;
        double ready = 0.0;
        for (int dep : instr.deps) {
            ready = std::max(ready,
                             finish_by_id[static_cast<size_t>(dep)]);
        }
        ready = std::min(ready, entry.start_s);
        if (entry.start_s - ready < 1e-12) continue;  // never queued
        deltas.emplace_back(ready, +1);
        deltas.emplace_back(entry.start_s, -1);
    }
    if (deltas.empty()) return;
    std::sort(deltas.begin(), deltas.end());
    builder->AddCounter(pid, track_name, 0.0, 0.0);
    int depth = 0;
    for (size_t i = 0; i < deltas.size(); ++i) {
        depth += deltas[i].second;
        // Coalesce identical timestamps into one sample.
        if (i + 1 < deltas.size() &&
            deltas[i + 1].first == deltas[i].first) {
            continue;
        }
        builder->AddCounter(pid, track_name,
                            deltas[i].first * kUsPerSecond, depth);
    }
}

}  // namespace

Status
AppendScheduleTrace(const Program& program,
                    const std::vector<ScheduleEntry>& schedule,
                    obs::TraceBuilder* builder, int pid,
                    int max_flow_events)
{
    if (schedule.size() != program.instrs.size()) {
        return Status::InvalidArgument(
            "schedule does not match program");
    }
    builder->SetProcessName(pid, "device: " + program.chip_name + " (" +
                                     program.model_name + ")");
    for (int e = 0; e < static_cast<int>(Engine::kEngineCount); ++e) {
        builder->SetThreadName(pid, e,
                               EngineName(static_cast<Engine>(e)));
    }

    std::vector<double> finish_by_id(program.instrs.size(), 0.0);
    double makespan_s = 0.0;
    for (const auto& entry : schedule) {
        finish_by_id[static_cast<size_t>(entry.instr_id)] =
            entry.finish_s;
        makespan_s = std::max(makespan_s, entry.finish_s);
    }

    // Timeline: one complete event per instruction.
    for (const auto& entry : schedule) {
        const Instr& instr =
            program.instrs[static_cast<size_t>(entry.instr_id)];
        builder->AddComplete(
            pid, static_cast<int>(instr.engine), instr.label,
            InstrKindName(instr.kind), entry.start_s * kUsPerSecond,
            (entry.finish_s - entry.start_s) * kUsPerSecond,
            StrFormat("{\"id\":%d,\"layer\":%d}", instr.id,
                      instr.layer_id));
    }

    // Flow events: cross-engine dependency arrows (producer finish ->
    // consumer start). Capped; the first edges cover the interesting
    // prefetch/compute overlap at the program head.
    int flow_events = 0;
    uint64_t flow_id = 1;
    for (const auto& entry : schedule) {
        if (flow_events + 2 > max_flow_events) break;
        const Instr& instr =
            program.instrs[static_cast<size_t>(entry.instr_id)];
        for (int dep : instr.deps) {
            if (flow_events + 2 > max_flow_events) break;
            const Instr& producer =
                program.instrs[static_cast<size_t>(dep)];
            if (producer.engine == instr.engine) continue;
            builder->AddFlowStart(
                pid, static_cast<int>(producer.engine), "dep", flow_id,
                finish_by_id[static_cast<size_t>(dep)] * kUsPerSecond);
            builder->AddFlowEnd(pid, static_cast<int>(instr.engine),
                                "dep", flow_id,
                                entry.start_s * kUsPerSecond);
            ++flow_id;
            flow_events += 2;
        }
    }

    // Counter tracks.
    EmitQueueDepthTrack(program, schedule, finish_by_id, Engine::kMxu,
                        "MXU ready-queue depth", builder, pid);
    EmitQueueDepthTrack(program, schedule, finish_by_id, Engine::kHbm,
                        "HBM ready-queue depth", builder, pid);
    EmitBandwidthTrack(program, schedule, Engine::kHbm, "HBM GB/s",
                       makespan_s, builder, pid);
    EmitBandwidthTrack(program, schedule, Engine::kCmem, "CMEM GB/s",
                       makespan_s, builder, pid);
    const double pinned_mib =
        static_cast<double>(program.memory.weight_bytes_cmem) /
        (1024.0 * 1024.0);
    builder->AddCounter(pid, "CMEM pinned MiB", 0.0, pinned_mib);
    builder->AddCounter(pid, "CMEM pinned MiB",
                        makespan_s * kUsPerSecond, pinned_mib);
    return Status::Ok();
}

StatusOr<std::string>
RenderEnrichedChromeTrace(const Program& program,
                          const std::vector<ScheduleEntry>& schedule)
{
    obs::TraceBuilder builder;
    T4I_RETURN_IF_ERROR(
        AppendScheduleTrace(program, schedule, &builder));
    return builder.Render();
}

Status
WriteEnrichedChromeTrace(const Program& program,
                         const std::vector<ScheduleEntry>& schedule,
                         const std::string& path)
{
    auto rendered = RenderEnrichedChromeTrace(program, schedule);
    T4I_RETURN_IF_ERROR(rendered.status());
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        return Status::InvalidArgument("cannot open " + path);
    }
    std::fwrite(rendered.value().data(), 1, rendered.value().size(), f);
    std::fclose(f);
    return Status::Ok();
}

}  // namespace t4i
