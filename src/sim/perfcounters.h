/**
 * @file
 * Modeled hardware performance counters.
 *
 * TPUv4i dedicates die area to performance counters and tracing because
 * a DSA without visibility cannot be tuned (the "ship visibility"
 * lesson; the TPUv1 paper hit the same wall attributing stalls). This
 * file models that counter hardware on top of the cycle simulator:
 *
 *  - a per-device *counter file*: per-engine busy/stall/issue cycles,
 *    per-instruction-class counts, bytes moved per memory level, and
 *    ICI link flits — the aggregate registers a driver would read once
 *    per run;
 *  - a *programmable sampling interval*: the same counters latched
 *    every N microseconds into time-series rows, so utilization is a
 *    curve rather than one number. Sampled rows integrate exactly
 *    (modulo float rounding) to the aggregate registers — a
 *    conservation invariant the tests enforce;
 *  - *per-op attribution*: instructions carry the compiler's HLO op
 *    stamp (Instr::hlo_op_id), and the profiler joins counter deltas
 *    back to ops to produce a roofline report per op — achieved vs
 *    ceiling FLOP/s, operational intensity, stall breakdown. Per-op
 *    cycles sum to engine busy cycles by construction (every
 *    instruction belongs to exactly one op).
 *
 * Exports: RecordCounterMetrics turns the counter file into
 * `sim.counter.*` registry instruments (including the sampled series),
 * and AppendCounterTracks renders the sampled series as Chrome-trace
 * counter tracks.
 */
#ifndef T4I_SIM_PERFCOUNTERS_H
#define T4I_SIM_PERFCOUNTERS_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/arch/chip.h"
#include "src/common/status.h"
#include "src/compiler/program.h"
#include "src/obs/registry.h"
#include "src/obs/trace_builder.h"
#include "src/sim/machine.h"

namespace t4i {

inline constexpr size_t kNumEngines =
    static_cast<size_t>(Engine::kEngineCount);
inline constexpr size_t kNumInstrKinds =
    static_cast<size_t>(InstrKind::kHostTransfer) + 1;

/** ICI transfers quantize into flits of this many bytes. */
inline constexpr int64_t kIciFlitBytes = 32;

/** One latched row of the sampled counter time series. */
struct PerfCounterSample {
    /** Window [t0_s, t1_s); the last window is clipped to the run. */
    double t0_s = 0.0;
    double t1_s = 0.0;
    /** Engine-busy cycles inside the window (pro-rata attribution). */
    std::array<double, kNumEngines> busy_cycles{};
    /** Instructions that *started* inside the window. */
    std::array<int64_t, kNumEngines> issues{};
    /** Bytes moved inside the window (pro-rata, hence fractional). */
    std::array<double, kNumEngines> bytes{};
    /** ICI flits inside the window (pro-rata). */
    double ici_flits = 0.0;
};

/** The per-device counter file for one simulated run. */
struct PerfCounterFile {
    double clock_hz = 0.0;
    double sample_interval_s = 0.0;
    /** End-to-end run time the samples cover. */
    double duration_s = 0.0;

    // Aggregate registers --------------------------------------------
    std::array<double, kNumEngines> busy_cycles{};
    std::array<double, kNumEngines> dep_stall_cycles{};
    std::array<double, kNumEngines> queue_stall_cycles{};
    std::array<int64_t, kNumEngines> issue_count{};
    std::array<int64_t, kNumEngines> bytes{};
    std::array<int64_t, kNumInstrKinds> kind_count{};
    int64_t ici_flits = 0;

    // Sampled time series --------------------------------------------
    std::vector<PerfCounterSample> samples;

    /** Busy cycles of one engine summed over all samples. */
    double SampledBusyCycles(Engine engine) const;
    /** Bytes of one engine summed over all samples. */
    double SampledBytes(Engine engine) const;

    /** Human-readable register dump (one line per nonzero counter). */
    std::string Summary() const;
};

/**
 * Builds the counter file for a simulated run. @p schedule must come
 * from SimulateWithSchedule on @p program. A non-positive
 * @p sample_interval_s picks one automatically (~64 windows across the
 * run); intervals producing more than 16384 windows are rejected.
 */
StatusOr<PerfCounterFile> CollectPerfCounters(
    const Program& program, const ChipConfig& chip,
    const std::vector<ScheduleEntry>& schedule,
    double sample_interval_s = 0.0);

/**
 * Records the counter file into @p registry (Global() by default):
 * aggregate `sim.counter.*` counters labeled by engine / instruction
 * class, plus the sampled series as
 * `sim.counter.sample.busy_cycles{engine=...,sample=NNNN}` gauge rows
 * (re-bucketed down to at most @p max_sample_rows windows so huge runs
 * stay exportable; re-bucketing preserves the integral).
 */
void RecordCounterMetrics(const PerfCounterFile& file,
                          obs::MetricsRegistry* registry = nullptr,
                          size_t max_sample_rows = 64);

/**
 * Appends the sampled series to @p builder as Chrome-trace counter
 * tracks under @p pid: per-engine busy% curves and an ICI flit-rate
 * curve, one point per sample window.
 */
Status AppendCounterTracks(const PerfCounterFile& file,
                           obs::TraceBuilder* builder, int pid = 1);

/** Per-op attribution joined from the counter deltas. */
struct OpProfile {
    int hlo_op_id = -1;
    int layer_id = -1;
    /** Canonical op name ("(unattributed)" for unstamped instrs). */
    std::string name;
    int64_t instructions = 0;

    // Busy-cycle attribution per engine group.
    double mxu_cycles = 0.0;
    double vpu_cycles = 0.0;
    double mem_cycles = 0.0;   ///< HBM + CMEM
    double link_cycles = 0.0;  ///< ICI + PCIe both directions
    /** All of the above summed. */
    double busy_cycles = 0.0;

    // Stall breakdown (cycles the op's instructions waited).
    double dep_stall_cycles = 0.0;
    double queue_stall_cycles = 0.0;

    double macs = 0.0;
    int64_t hbm_bytes = 0;
    int64_t cmem_bytes = 0;
    /** First start to last finish of the op's instructions. */
    double span_s = 0.0;

    // Roofline ------------------------------------------------------
    /** 2*macs / span. */
    double achieved_flops = 0.0;
    /** FLOPs per HBM byte; 0 when the op moves no HBM bytes. */
    double operational_intensity = 0.0;
    /** min(peak at the program dtype, intensity * DRAM bandwidth);
     *  peak alone when the op moves no HBM bytes. */
    double ceiling_flops = 0.0;
};

/**
 * Aggregates the schedule per HLO op, sorted by descending busy
 * cycles. Every instruction lands in exactly one op (unstamped ones in
 * a synthetic "(unattributed)" op), so per-op cycles sum to the engine
 * busy cycles of the run — the conservation invariant
 * tests/test_perfcounters.cpp enforces.
 */
StatusOr<std::vector<OpProfile>> ProfileByOp(
    const Program& program, const ChipConfig& chip,
    const std::vector<ScheduleEntry>& schedule);

/**
 * Renders the top-N ops as a roofline table (achieved vs ceiling
 * FLOP/s, operational intensity, stall split) with a conservation
 * footer comparing the per-op cycle sum to the engine busy cycles.
 */
std::string RenderOpRoofline(const std::vector<OpProfile>& ops,
                             const PerfCounterFile& counters,
                             size_t top_n = 24);

}  // namespace t4i

#endif  // T4I_SIM_PERFCOUNTERS_H
