#include "src/sim/machine.h"

#include <algorithm>

#include "src/common/strings.h"
#include "src/sim/timing.h"

namespace t4i {

std::string
SimResult::Summary() const
{
    std::string out = StrFormat(
        "latency %s, %.2f GMACs, achieved %.2f TFLOPS (%.1f%% MXU), "
        "steady-state %.1f inf/s\n",
        HumanSeconds(latency_s).c_str(), total_macs / 1e9,
        achieved_flops / 1e12, 100.0 * mxu_utilization, steady_state_ips);
    for (size_t e = 0; e < engines.size(); ++e) {
        if (engines[e].instructions == 0) continue;
        out += StrFormat("  %-5s busy %s (%.1f%%), %lld instrs",
                         EngineName(static_cast<Engine>(e)),
                         HumanSeconds(engines[e].busy_s).c_str(),
                         100.0 * engines[e].utilization,
                         static_cast<long long>(
                             engines[e].instructions));
        if (engines[e].bytes > 0) {
            out += ", " + HumanBytes(
                static_cast<double>(engines[e].bytes));
        }
        out += '\n';
    }
    return out;
}

std::string
SimResult::DumpStats() const
{
    std::string out;
    out += StrFormat("sim.latency_seconds %.9e\n", latency_s);
    out += StrFormat("sim.cycles %.0f\n", cycles);
    out += StrFormat("sim.total_macs %.0f\n", total_macs);
    out += StrFormat("sim.vpu_flops %.0f\n", vpu_flops);
    out += StrFormat("sim.achieved_flops %.6e\n", achieved_flops);
    out += StrFormat("sim.mxu_utilization %.6f\n", mxu_utilization);
    out += StrFormat("sim.steady_state_ips %.3f\n", steady_state_ips);
    for (size_t e = 0; e < engines.size(); ++e) {
        const char* name = EngineName(static_cast<Engine>(e));
        out += StrFormat("engine.%s.busy_seconds %.9e\n", name,
                         engines[e].busy_s);
        out += StrFormat("engine.%s.instructions %lld\n", name,
                         static_cast<long long>(
                             engines[e].instructions));
        out += StrFormat("engine.%s.bytes %lld\n", name,
                         static_cast<long long>(engines[e].bytes));
        out += StrFormat("engine.%s.utilization %.6f\n", name,
                         engines[e].utilization);
        out += StrFormat("engine.%s.dep_stall_seconds %.9e\n", name,
                         engines[e].dep_stall_s);
        out += StrFormat("engine.%s.queue_stall_seconds %.9e\n", name,
                         engines[e].queue_stall_s);
        out += StrFormat("engine.%s.dep_stalls %lld\n", name,
                         static_cast<long long>(engines[e].dep_stalls));
        out += StrFormat("engine.%s.queue_stalls %lld\n", name,
                         static_cast<long long>(
                             engines[e].queue_stalls));
    }
    return out;
}

void
RecordSimMetrics(const SimResult& result, obs::MetricsRegistry* registry)
{
    obs::MetricsRegistry& reg =
        registry != nullptr ? *registry : obs::MetricsRegistry::Global();
    reg.GetCounter("sim.runs")->Increment();
    reg.GetGauge("sim.latency_seconds")->Set(result.latency_s);
    reg.GetGauge("sim.mxu_utilization")->Set(result.mxu_utilization);
    reg.GetGauge("sim.achieved_flops")->Set(result.achieved_flops);
    reg.GetGauge("sim.steady_state_ips")->Set(result.steady_state_ips);
    for (size_t e = 0; e < result.engines.size(); ++e) {
        const EngineStats& stats = result.engines[e];
        if (stats.instructions == 0) continue;
        const obs::Labels labels = {
            {"engine", EngineName(static_cast<Engine>(e))}};
        reg.GetGauge("sim.engine.utilization", labels)
            ->Set(stats.utilization);
        reg.GetGauge("sim.engine.busy_seconds", labels)
            ->Set(stats.busy_s);
        reg.GetGauge("sim.engine.dep_stall_seconds", labels)
            ->Set(stats.dep_stall_s);
        reg.GetGauge("sim.engine.queue_stall_seconds", labels)
            ->Set(stats.queue_stall_s);
        reg.GetCounter("sim.engine.instructions", labels)
            ->Increment(stats.instructions);
        reg.GetCounter("sim.engine.bytes", labels)
            ->Increment(stats.bytes);
        reg.GetCounter("sim.engine.dep_stalls", labels)
            ->Increment(stats.dep_stalls);
        reg.GetCounter("sim.engine.queue_stalls", labels)
            ->Increment(stats.queue_stalls);
    }
}

StatusOr<SimResult>
SimulateWithSchedule(const Program& program, const ChipConfig& chip,
                     std::vector<ScheduleEntry>* schedule)
{
    if (program.chip_name != chip.name) {
        return Status::InvalidArgument(
            "program compiled for " + program.chip_name +
            " cannot run on " + chip.name);
    }
    T4I_RETURN_IF_ERROR(program.Validate());

    const size_t n = program.instrs.size();
    std::vector<double> finish(n, 0.0);
    std::array<double, static_cast<size_t>(Engine::kEngineCount)>
        engine_free{};

    SimResult result;

    for (size_t i = 0; i < n; ++i) {
        const Instr& instr = program.instrs[i];
        const auto e = static_cast<size_t>(instr.engine);

        double dep_ready = 0.0;
        for (int dep : instr.deps) {
            dep_ready =
                std::max(dep_ready, finish[static_cast<size_t>(dep)]);
        }
        const double ready = std::max(engine_free[e], dep_ready);
        const double dur = InstrDuration(chip, instr);
        const double end = ready + dur;
        finish[i] = end;

        EngineStats& stats = result.engines[e];
        // Stall attribution: the engine either sat idle waiting for a
        // cross-engine dependency, or the instruction sat ready behind
        // the engine's in-order queue.
        if (dep_ready > engine_free[e]) {
            stats.dep_stall_s += dep_ready - engine_free[e];
            ++stats.dep_stalls;
        } else if (engine_free[e] > dep_ready) {
            stats.queue_stall_s += engine_free[e] - dep_ready;
            ++stats.queue_stalls;
        }
        engine_free[e] = end;

        stats.busy_s += dur;
        stats.instructions += 1;
        stats.bytes += instr.bytes;

        if (instr.engine == Engine::kMxu) {
            result.total_macs += instr.macs;
        } else if (instr.engine == Engine::kVpu) {
            result.vpu_flops +=
                static_cast<double>(instr.elements) *
                instr.flops_per_element;
        }

        if (schedule != nullptr) {
            schedule->push_back({instr.id, end - dur, end});
        }
    }

    for (double f : finish) {
        result.latency_s = std::max(result.latency_s, f);
    }
    result.cycles = result.latency_s * chip.clock_hz;

    double max_busy = 0.0;
    for (auto& stats : result.engines) {
        if (result.latency_s > 0.0) {
            stats.utilization = stats.busy_s / result.latency_s;
        }
        max_busy = std::max(max_busy, stats.busy_s);
    }

    result.achieved_flops =
        result.latency_s > 0.0
            ? 2.0 * result.total_macs / result.latency_s
            : 0.0;
    const double peak = chip.PeakFlops(program.dtype);
    result.mxu_utilization =
        peak > 0.0 ? result.achieved_flops / peak : 0.0;
    result.steady_state_ips =
        max_busy > 0.0 ? static_cast<double>(program.batch) / max_busy
                       : 0.0;
    return result;
}

StatusOr<SimResult>
Simulate(const Program& program, const ChipConfig& chip)
{
    return SimulateWithSchedule(program, chip, nullptr);
}

StatusOr<PipelineResult>
SimulatePipelined(const Program& program, const ChipConfig& chip,
                  int iterations)
{
    if (program.chip_name != chip.name) {
        return Status::InvalidArgument(
            "program compiled for " + program.chip_name +
            " cannot run on " + chip.name);
    }
    if (iterations < 1) {
        return Status::InvalidArgument("need at least one iteration");
    }
    T4I_RETURN_IF_ERROR(program.Validate());

    const size_t n = program.instrs.size();
    std::vector<double> finish(n, 0.0);
    std::array<double, static_cast<size_t>(Engine::kEngineCount)>
        engine_free{};

    PipelineResult result;
    result.iterations = iterations;
    double first_iter_finish = 0.0;
    for (int iter = 0; iter < iterations; ++iter) {
        double iter_finish = 0.0;
        for (size_t i = 0; i < n; ++i) {
            const Instr& instr = program.instrs[i];
            const auto e = static_cast<size_t>(instr.engine);
            double ready = engine_free[e];
            for (int dep : instr.deps) {
                ready = std::max(
                    ready, finish[static_cast<size_t>(dep)]);
            }
            const double end = ready + InstrDuration(chip, instr);
            finish[i] = end;
            engine_free[e] = end;
            iter_finish = std::max(iter_finish, end);
        }
        if (iter == 0) first_iter_finish = iter_finish;
        result.total_s = std::max(result.total_s, iter_finish);
    }
    result.first_latency_s = first_iter_finish;
    if (iterations > 1 && result.total_s > first_iter_finish) {
        result.steady_ips =
            static_cast<double>(program.batch) *
            static_cast<double>(iterations - 1) /
            (result.total_s - first_iter_finish);
    } else {
        result.steady_ips = static_cast<double>(program.batch) /
                            result.total_s;
    }
    return result;
}

}  // namespace t4i
