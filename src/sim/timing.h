/**
 * @file
 * Per-instruction timing model: converts a work descriptor plus a chip
 * configuration into a duration in seconds.
 *
 * The MXU model is a weight-stationary systolic array: each (k,n) weight
 * tile requires streaming the activation rows through the array, paying a
 * fill+drain overhead of two array depths per pass. Small row counts
 * therefore achieve low utilization — the mechanism behind the paper's
 * small-batch/latency discussion (Lesson 10) and the RNNs' low MXU
 * efficiency.
 */
#ifndef T4I_SIM_TIMING_H
#define T4I_SIM_TIMING_H

#include "src/arch/chip.h"
#include "src/compiler/program.h"

namespace t4i {

/** Streaming-rate multiplier of the MXU for a dtype (bf16 == 1). */
double MxuRateFactor(const ChipConfig& chip, DType dtype);

/** Cycles an MXU instruction occupies the (pooled) matrix units. */
double MxuCycles(const ChipConfig& chip, const Instr& instr);

/** Cycles a VPU instruction occupies the vector unit. */
double VpuCycles(const ChipConfig& chip, const Instr& instr);

/** Duration of any instruction in seconds on @p chip. */
double InstrDuration(const ChipConfig& chip, const Instr& instr);

}  // namespace t4i

#endif  // T4I_SIM_TIMING_H
