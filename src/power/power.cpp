#include "src/power/power.h"

#include <algorithm>

#include "src/arch/tech.h"

namespace t4i {
namespace {

int
OperandBits(DType dtype)
{
    return static_cast<int>(DTypeBytes(dtype)) * 8;
}

}  // namespace

StatusOr<PowerReport>
EstimatePower(const Program& program, const SimResult& result,
              const ChipConfig& chip)
{
    auto node = TechNodeOf(chip.tech_nm);
    T4I_RETURN_IF_ERROR(node.status());
    const TechNode& tech = node.value();

    PowerReport report;
    const double pj = 1e-12;

    // Matrix units: per-MAC energy at the operand width.
    report.mxu_energy_j = result.total_macs *
                          MacEnergyPj(tech, OperandBits(program.dtype)) *
                          pj;

    // Vector unit: fp32-ish lanes, ~2x the energy of a 16-bit MAC per op.
    report.vpu_energy_j =
        result.vpu_flops * 2.0 * MacEnergyPj(tech, 32) * pj / 2.0;

    // SRAM traffic: the MXU reads each operand from VMEM once per use;
    // approximate on-chip traffic as 2 bytes per MAC (weight reuse in
    // the array means activations dominate) plus explicit CMEM bytes.
    const double vmem_bytes =
        result.total_macs * 2.0 *
        static_cast<double>(DTypeBytes(program.dtype)) /
        static_cast<double>(chip.mxu.rows);
    const double cmem_bytes = static_cast<double>(
        result.engine(Engine::kCmem).bytes);
    report.sram_energy_j =
        (vmem_bytes + cmem_bytes) * SramEnergyPjPerByte(tech) * pj;

    report.dram_energy_j =
        static_cast<double>(result.engine(Engine::kHbm).bytes) *
        DramEnergyPjPerByte(tech) * pj;

    // Links: ~10 pJ/bit for ICI-class SerDes, ~15 pJ/bit for PCIe.
    report.link_energy_j =
        (static_cast<double>(result.engine(Engine::kIci).bytes) * 8.0 *
             10.0 +
         (static_cast<double>(result.engine(Engine::kPcie).bytes) +
          static_cast<double>(
              result.engine(Engine::kPcieIn).bytes)) * 8.0 *
             15.0) * pj;

    report.static_energy_j = chip.idle_w * result.latency_s;

    report.total_energy_j =
        report.mxu_energy_j + report.vpu_energy_j + report.sram_energy_j +
        report.dram_energy_j + report.link_energy_j +
        report.static_energy_j;

    report.avg_power_w = result.latency_s > 0.0
                             ? report.total_energy_j / result.latency_s
                             : 0.0;

    // DVFS throttle: dynamic power scales ~linearly with clock at fixed
    // voltage; stretch time until sustained power fits under TDP.
    const double dynamic_w = report.avg_power_w - chip.idle_w;
    const double budget_w = chip.tdp_w - chip.idle_w;
    if (dynamic_w > budget_w && budget_w > 0.0) {
        report.throttle = budget_w / dynamic_w;
    }
    report.throttled_latency_s = result.latency_s / report.throttle;
    report.throttled_power_w =
        std::min(report.avg_power_w, chip.tdp_w);
    return report;
}

double
PerfPerTdp(const SimResult& result, const ChipConfig& chip)
{
    return chip.tdp_w > 0.0 ? result.achieved_flops / chip.tdp_w : 0.0;
}

}  // namespace t4i
