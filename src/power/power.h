/**
 * @file
 * Power and energy model.
 *
 * Bottom-up activity-based estimate: MAC count x per-MAC energy at the
 * chip's node and operand width, plus SRAM/DRAM traffic energy, plus
 * constant static power, all from the tech model (src/arch/tech.h).
 * A TDP cap applies DVFS-style throttling: if sustained power would
 * exceed TDP, the clock is scaled down until it fits (Lesson 5 — TPUv4i
 * was sized at 175 W so an air-cooled rack holds it; chips that blow
 * their TDP must throttle, which is how the model expresses the
 * air-cooling ceiling).
 */
#ifndef T4I_POWER_POWER_H
#define T4I_POWER_POWER_H

#include "src/arch/chip.h"
#include "src/common/status.h"
#include "src/compiler/program.h"
#include "src/sim/machine.h"

namespace t4i {

/** Energy/power breakdown for one simulated run. */
struct PowerReport {
    double mxu_energy_j = 0.0;
    double vpu_energy_j = 0.0;
    double sram_energy_j = 0.0;   ///< VMEM + CMEM traffic
    double dram_energy_j = 0.0;   ///< HBM traffic
    double link_energy_j = 0.0;   ///< ICI + PCIe traffic
    double static_energy_j = 0.0;
    double total_energy_j = 0.0;

    /** Average power over the run before any throttling. */
    double avg_power_w = 0.0;
    /** Clock multiplier needed to fit under TDP (1.0 = no throttle). */
    double throttle = 1.0;
    /** Run latency after throttling. */
    double throttled_latency_s = 0.0;
    /** Average power after throttling (== min(avg, TDP)). */
    double throttled_power_w = 0.0;
};

/**
 * Estimates power for @p result of running @p program on @p chip.
 */
StatusOr<PowerReport> EstimatePower(const Program& program,
                                    const SimResult& result,
                                    const ChipConfig& chip);

/**
 * Performance per watt in FLOPS/W using TDP as the denominator, the
 * paper's preferred metric for cross-chip comparison ("perf/TDP").
 */
double PerfPerTdp(const SimResult& result, const ChipConfig& chip);

}  // namespace t4i

#endif  // T4I_POWER_POWER_H
