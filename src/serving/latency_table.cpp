#include "src/serving/latency_table.h"

#include <algorithm>

namespace t4i {

void
LatencyTable::AddPoint(int64_t batch, double latency_s)
{
    T4I_CHECK(batch > 0 && latency_s > 0.0, "bad latency point");
    T4I_CHECK(points_.empty() || batch > points_.back().batch,
              "batches must be added in increasing order");
    points_.push_back({batch, latency_s});
}

double
LatencyTable::Eval(int64_t batch) const
{
    T4I_CHECK(!points_.empty(), "empty latency table");
    if (batch <= points_.front().batch) return points_.front().latency_s;
    if (batch >= points_.back().batch) return points_.back().latency_s;
    for (size_t i = 1; i < points_.size(); ++i) {
        if (batch <= points_[i].batch) {
            const auto& lo = points_[i - 1];
            const auto& hi = points_[i];
            const double t =
                static_cast<double>(batch - lo.batch) /
                static_cast<double>(hi.batch - lo.batch);
            return lo.latency_s + t * (hi.latency_s - lo.latency_s);
        }
    }
    return points_.back().latency_s;
}

int64_t
LatencyTable::MaxBatchUnderSlo(double slo_s) const
{
    T4I_CHECK(!points_.empty(), "empty latency table");
    if (Eval(1) > slo_s) return 0;
    int64_t best = 1;
    // Binary search over the integer batch range.
    int64_t lo = 1;
    int64_t hi = max_batch();
    while (lo <= hi) {
        const int64_t mid = lo + (hi - lo) / 2;
        if (Eval(mid) <= slo_s) {
            best = mid;
            lo = mid + 1;
        } else {
            hi = mid - 1;
        }
    }
    return best;
}

double
LatencyTable::ThroughputAt(int64_t batch) const
{
    const double lat = Eval(batch);
    return lat > 0.0 ? static_cast<double>(batch) / lat : 0.0;
}

}  // namespace t4i
