/**
 * @file
 * Batch -> latency lookup built from simulator runs.
 *
 * The serving simulator needs the device latency at arbitrary batch
 * sizes; profiling every batch is wasteful, so we simulate a ladder of
 * batch sizes (powers of two) and interpolate linearly in between —
 * device latency is piecewise-linear in batch to good approximation
 * because both the streamed rows and the DMA bytes scale linearly.
 */
#ifndef T4I_SERVING_LATENCY_TABLE_H
#define T4I_SERVING_LATENCY_TABLE_H

#include <cstdint>
#include <vector>

#include "src/common/status.h"

namespace t4i {

/** Piecewise-linear latency(batch) model. */
class LatencyTable {
  public:
    /** Adds a profiled (batch, latency) point; batches must be added in
     *  increasing order. */
    void AddPoint(int64_t batch, double latency_s);

    bool empty() const { return points_.empty(); }
    int64_t max_batch() const
    {
        return points_.empty() ? 0 : points_.back().batch;
    }

    /** Interpolated latency at @p batch (clamped to the profiled
     *  range). */
    double Eval(int64_t batch) const;

    /**
     * Largest profiled-range batch whose latency fits under
     * @p slo_s; returns 0 if even batch 1 misses.
     */
    int64_t MaxBatchUnderSlo(double slo_s) const;

    /** Throughput (samples/s) at a batch. */
    double ThroughputAt(int64_t batch) const;

  private:
    struct Point {
        int64_t batch;
        double latency_s;
    };
    std::vector<Point> points_;
};

}  // namespace t4i

#endif  // T4I_SERVING_LATENCY_TABLE_H
