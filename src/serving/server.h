/**
 * @file
 * Discrete-event serving simulator.
 *
 * Models an accelerator cell — one or more identical devices behind a
 * load balancer — serving one or more tenants (Lesson 7: production
 * inference normally needs multi-tenancy; Lesson 10: the market limits
 * latency, not batch size). Requests arrive Poisson per tenant; a
 * dynamic batcher coalesces whatever is queued (up to the tenant's max
 * batch) whenever a device frees up.
 *
 * Realism knobs:
 *  - host stage: each batch passes through a per-device host pipeline
 *    (input assembly, PCIe queueing) that overlaps the device's
 *    previous batch — a two-stage pipeline, so tiny models can become
 *    host-bound;
 *  - priorities: higher-priority tenants are always drained first
 *    (interactive vs batch traffic), round-robin within a priority;
 *  - tenant-switch penalty: re-staging weights when CMEM is not
 *    partitioned (per device).
 */
#ifndef T4I_SERVING_SERVER_H
#define T4I_SERVING_SERVER_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/obs/registry.h"
#include "src/obs/trace_builder.h"

namespace t4i {

/** One tenant's serving contract. */
struct TenantConfig {
    std::string name;
    /** Device latency as a function of batch size. */
    std::function<double(int64_t)> latency_s;
    int64_t max_batch = 64;
    double slo_s = 0.010;
    /** Mean request arrival rate (requests/s, Poisson). */
    double arrival_rate = 100.0;
    /**
     * Optional time-varying load: the instantaneous rate is
     * arrival_rate * rate_multiplier(t). Used for diurnal traffic
     * (fleets are provisioned for the peak but billed for the mean —
     * part of Lesson 3's TCO story). Must be bounded by
     * peak_rate_multiplier.
     */
    std::function<double(double)> rate_multiplier;
    double peak_rate_multiplier = 1.0;
    /** Paid when a device switches to this tenant from another. */
    double switch_penalty_s = 0.0;
    /**
     * Dynamic-batching patience: a partially-filled batch may wait up
     * to this long (measured from its oldest request's arrival) for
     * more requests before dispatching. Zero dispatches immediately.
     */
    double batch_wait_s = 0.0;
    /** Host-side per-batch work (overlaps the device pipeline). */
    double host_overhead_s = 0.0;
    /** Higher drains first; ties round-robin. */
    int priority = 0;
};

/** Per-tenant results. */
struct TenantStats {
    std::string name;
    int64_t completed = 0;
    double mean_latency_s = 0.0;
    double p50_latency_s = 0.0;
    double p95_latency_s = 0.0;
    double p99_latency_s = 0.0;
    int64_t slo_misses = 0;
    double slo_miss_fraction = 0.0;
    double throughput_rps = 0.0;
    double mean_batch = 0.0;
    int64_t max_queue_depth = 0;
};

/** Whole-run results. */
struct ServingResult {
    std::vector<TenantStats> tenants;
    double device_busy_fraction = 0.0;   ///< mean across devices
    double switch_overhead_fraction = 0.0;
    double host_busy_fraction = 0.0;
    double duration_s = 0.0;
};

/**
 * Optional observability hooks for a serving run. Either sink may be
 * null; with both null the run is exactly the untelemetered one.
 */
struct ServingTelemetry {
    /**
     * Per-tenant instruments, labeled `{tenant=NAME}`: latency and
     * batch-size histograms, completed/SLO-miss counters, queue-depth
     * high-water gauge, plus cell-level device/host busy gauges.
     */
    obs::MetricsRegistry* registry = nullptr;
    /**
     * Timeline export: batch 'X' events per device track, per-tenant
     * queue-depth counter tracks, and flow events following a request
     * from arrival -> batch execution -> completion.
     */
    obs::TraceBuilder* trace = nullptr;
    /** Process id the serving tracks render under. */
    int trace_pid = 2;
    /** Requests (per tenant) that get arrival->completion flows. */
    int64_t max_flows_per_tenant = 64;
};

/**
 * Runs the serving simulation for @p duration_s of simulated arrivals
 * (queues drain afterwards). Deterministic for a given @p seed.
 */
StatusOr<ServingResult> RunServing(const std::vector<TenantConfig>& tenants,
                                   double duration_s, uint64_t seed);

/** Same, with @p num_devices identical devices behind the batcher. */
StatusOr<ServingResult> RunServingCell(
    const std::vector<TenantConfig>& tenants, int num_devices,
    double duration_s, uint64_t seed);

/** Same, recording telemetry into @p telemetry's sinks as it runs. */
StatusOr<ServingResult> RunServingCell(
    const std::vector<TenantConfig>& tenants, int num_devices,
    double duration_s, uint64_t seed,
    const ServingTelemetry& telemetry);

}  // namespace t4i

#endif  // T4I_SERVING_SERVER_H
