/**
 * @file
 * Discrete-event serving simulator.
 *
 * Models an accelerator cell — one or more identical devices behind a
 * load balancer — serving one or more tenants (Lesson 7: production
 * inference normally needs multi-tenancy; Lesson 10: the market limits
 * latency, not batch size). Requests arrive Poisson per tenant; a
 * dynamic batcher coalesces whatever is queued (up to the tenant's max
 * batch) whenever a device frees up.
 *
 * Realism knobs:
 *  - host stage: each batch passes through a per-device host pipeline
 *    (input assembly, PCIe queueing) that overlaps the device's
 *    previous batch — a two-stage pipeline, so tiny models can become
 *    host-bound;
 *  - priorities: higher-priority tenants are always drained first
 *    (interactive vs batch traffic), round-robin within a priority;
 *  - tenant-switch penalty: re-staging weights when CMEM is not
 *    partitioned (per device).
 *
 * Reliability layer (production availability, not peak FLOPS): a
 * seeded FaultPlan injects device failures, stragglers, and transient
 * batch errors; per-request deadlines drop stale work; failed batches
 * retry with exponential backoff up to a bound; hedged dispatch
 * re-issues slow batches on a second device; and admission control
 * sheds load (per-tenant queue bounds, lowest-priority-first under a
 * cell-wide cap) so queues stay bounded when devices die. With a
 * default ReliabilityConfig the simulator is bit-identical to the
 * fault-free one.
 */
#ifndef T4I_SERVING_SERVER_H
#define T4I_SERVING_SERVER_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/obs/alerts.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/registry.h"
#include "src/obs/slo.h"
#include "src/obs/spans.h"
#include "src/obs/timeseries.h"
#include "src/obs/trace_builder.h"
#include "src/serving/faults.h"

namespace t4i {

/** One tenant's serving contract. */
struct TenantConfig {
    std::string name;
    /** Device latency as a function of batch size. */
    std::function<double(int64_t)> latency_s;
    int64_t max_batch = 64;
    double slo_s = 0.010;
    /** Mean request arrival rate (requests/s, Poisson). */
    double arrival_rate = 100.0;
    /**
     * Optional time-varying load: the instantaneous rate is
     * arrival_rate * rate_multiplier(t). Used for diurnal traffic
     * (fleets are provisioned for the peak but billed for the mean —
     * part of Lesson 3's TCO story). Must be bounded by
     * peak_rate_multiplier.
     */
    std::function<double(double)> rate_multiplier;
    double peak_rate_multiplier = 1.0;
    /** Paid when a device switches to this tenant from another. */
    double switch_penalty_s = 0.0;
    /**
     * Dynamic-batching patience: a partially-filled batch may wait up
     * to this long (measured from its oldest request's arrival) for
     * more requests before dispatching. Zero dispatches immediately.
     */
    double batch_wait_s = 0.0;
    /** Host-side per-batch work (overlaps the device pipeline). */
    double host_overhead_s = 0.0;
    /** Higher drains first; ties round-robin. */
    int priority = 0;
    /**
     * Per-request deadline, distinct from the SLO: a request still
     * queued this long after arrival is dropped (and counted), where
     * an SLO miss merely completes late. Zero means no deadline.
     */
    double deadline_s = 0.0;
    /** Admission control: arrivals beyond this queue depth are shed.
     *  Zero means unbounded. */
    int64_t max_queue = 0;
    /** Failed batches re-execute at most this many times before their
     *  requests are dropped. */
    int max_retries = 3;
    /** Backoff before a failed batch's requests become dispatchable
     *  again; doubles per attempt (exponential backoff). */
    double retry_backoff_s = 1e-3;
};

/**
 * Per-tenant results. Request accounting is conservative:
 * arrived == completed + dropped + shed always holds at drain.
 */
struct TenantStats {
    std::string name;
    int64_t arrived = 0;     ///< requests that reached the cell
    int64_t completed = 0;   ///< served (possibly past the SLO)
    int64_t dropped = 0;     ///< deadline expiry / retries exhausted
    int64_t shed = 0;        ///< rejected by admission control
    int64_t retried = 0;     ///< batch re-executions (faults)
    int64_t hedges = 0;      ///< hedged batch dispatches issued
    int64_t hedge_wins = 0;  ///< hedges that beat the primary copy
    double mean_latency_s = 0.0;
    double p50_latency_s = 0.0;
    double p95_latency_s = 0.0;
    double p99_latency_s = 0.0;
    int64_t slo_misses = 0;
    /** Of completed requests only; dropped/shed are counted above. */
    double slo_miss_fraction = 0.0;
    /** Completed requests per second (includes SLO-missing ones). */
    double throughput_rps = 0.0;
    /** Requests completed *within* the SLO per second — the honest
     *  number once drops and sheds exist. */
    double goodput_rps = 0.0;
    double mean_batch = 0.0;
    int64_t max_queue_depth = 0;
};

/** Whole-run results. */
struct ServingResult {
    std::vector<TenantStats> tenants;
    double device_busy_fraction = 0.0;   ///< mean across devices
    double switch_overhead_fraction = 0.0;
    double host_busy_fraction = 0.0;
    double duration_s = 0.0;
    /** Mean fraction of device-seconds up over the run (1.0 without
     *  injected faults). */
    double availability = 1.0;
};

/**
 * Cell-level reliability policy. The default-constructed config (no
 * faults, no hedging, unbounded cell queue) reproduces the fault-free
 * simulator bit for bit.
 */
struct ReliabilityConfig {
    FaultPlan faults;
    /**
     * Hedged dispatch: when a batch's projected device time exceeds
     * the hedge_quantile of this tenant's observed batch times (a
     * straggler), re-issue it on a second device after that
     * quantile-sized delay; the first copy to finish wins and the
     * loser's work is wasted (counted as busy). Needs >= 2 devices
     * and a short warmup of observed batches.
     */
    bool hedge = false;
    double hedge_quantile = 0.95;
    /**
     * Cell-wide queue cap: when total queued requests reach this
     * bound, an arrival evicts the newest queued request of the
     * lowest-priority backlogged tenant (or is itself shed when it
     * has the lowest priority). Zero means unbounded.
     */
    int64_t max_cell_queue = 0;
};

/**
 * One component's share of a batch's device time — e.g. {"mxu", 0.62}
 * derived from the per-op counter profile of the tenant's compiled
 * program (src/sim/perfcounters.h).
 */
struct AttributionShare {
    std::string component;
    double fraction = 0.0;
};

/**
 * Optional observability hooks for a serving run. Either sink may be
 * null; with both null the run is exactly the untelemetered one.
 */
struct ServingTelemetry {
    /**
     * Per-tenant instruments, labeled `{tenant=NAME}`: latency and
     * batch-size histograms, completed/SLO-miss counters, queue-depth
     * high-water gauge, plus cell-level device/host busy gauges.
     */
    obs::MetricsRegistry* registry = nullptr;
    /**
     * Timeline export: batch 'X' events per device track, per-tenant
     * queue-depth counter tracks, and flow events following a request
     * from arrival -> batch execution -> completion.
     */
    obs::TraceBuilder* trace = nullptr;
    /** Process id the serving tracks render under. */
    int trace_pid = 2;
    /** Requests (per tenant) that get arrival->completion flows. */
    int64_t max_flows_per_tenant = 64;
    /**
     * Per-batch attribution: when non-empty, every completed batch's
     * winning device time is split across these components and
     * observed into `serving.attribution.seconds{tenant=,component=}`
     * histograms — tenants get p95 *attribution* (where their tail
     * latency is spent), not just a p95 number.
     */
    std::vector<AttributionShare> batch_attribution;
    /**
     * SLO error budget: the run-end burn-rate gauge
     * `serving.slo_burn_rate{tenant=}` is slo_miss_fraction divided by
     * this budget (SRE convention: >1 means the budget is burning
     * faster than it accrues). With a registry attached the gauge is
     * also maintained *during* the run (updated per completed batch)
     * so burn-rate alert rules can fire mid-run.
     */
    double slo_error_budget = 0.01;
    /**
     * Request-scoped tracing: when set, the first
     * max_traced_requests_per_tenant admitted requests of each tenant
     * get a trace — a root "request" span (arrival -> completion, its
     * duration exactly the request latency) with child spans for queue
     * wait, batch formation, and every dispatch attempt; retries and
     * hedges become sibling children linked to the winning copy, and
     * the winner gains engine-group sub-spans split by
     * batch_attribution. Pure observation: results are bit-identical
     * with or without a collector.
     */
    obs::SpanCollector* spans = nullptr;
    int64_t max_traced_requests_per_tenant = 256;
    /**
     * Black-box ring buffer: span opens/closes (via spans), fault
     * transitions, queue-depth samples, and deadline drops are
     * recorded as structured events; mid-batch device failures and
     * deadline drops invoke the recorder's dump triggers. The serving
     * loop installs a per-device fault-state provider for the run.
     */
    obs::FlightRecorder* recorder = nullptr;
    /**
     * Declarative alert rules, evaluated against `registry` every
     * alert_eval_interval_s of sim time while the run progresses
     * (requires registry != nullptr) — this is what arms for-duration
     * hysteresis and mid-run black-box dumps on SLO burn.
     */
    obs::AlertEngine* alerts = nullptr;
    double alert_eval_interval_s = 0.05;
    /**
     * Windowed time-series collection (requires registry): the serving
     * loop Ticks the collector at the alert-eval cadence so counters,
     * gauges, and histograms become fixed-window series on the sim
     * clock. When the collector also routes alerts (its BindAlerts was
     * called), the cell stops evaluating `alerts` on its own cadence —
     * window closes drive evaluation, making `for X` hysteresis mean X
     * seconds of consecutive windows. The final run-end evaluation
     * still happens either way. The caller Finish()es the collector
     * after the run returns.
     */
    obs::TimeSeriesCollector* timeseries = nullptr;
    /**
     * Rolling SLO error budgets (requires registry): ticked at the
     * same cadence, *before* the collector, so the `slo.*` gauges land
     * in the window that describes them.
     */
    obs::SloTracker* slo = nullptr;
    /**
     * Appended to every label set this run writes into `registry`
     * (per-tenant instruments and run-level gauges alike). The cluster
     * layer uses this to keep N cells apart in one shared registry
     * (`{cell="0"}`, ...); empty leaves every label set exactly as
     * before.
     */
    obs::Labels extra_labels;
};

/**
 * Runs the serving simulation for @p duration_s of simulated arrivals
 * (queues drain afterwards). Deterministic for a given @p seed.
 */
StatusOr<ServingResult> RunServing(const std::vector<TenantConfig>& tenants,
                                   double duration_s, uint64_t seed);

/** Same, with @p num_devices identical devices behind the batcher. */
StatusOr<ServingResult> RunServingCell(
    const std::vector<TenantConfig>& tenants, int num_devices,
    double duration_s, uint64_t seed);

/** Same, recording telemetry into @p telemetry's sinks as it runs. */
StatusOr<ServingResult> RunServingCell(
    const std::vector<TenantConfig>& tenants, int num_devices,
    double duration_s, uint64_t seed,
    const ServingTelemetry& telemetry);

/**
 * Same, with fault injection and reliability policy. Fault instants
 * land on the trace timeline and the registry gains retry/shed/drop/
 * hedge counters plus a `serving.availability` gauge.
 */
StatusOr<ServingResult> RunServingCell(
    const std::vector<TenantConfig>& tenants, int num_devices,
    double duration_s, uint64_t seed,
    const ServingTelemetry& telemetry,
    const ReliabilityConfig& reliability);

}  // namespace t4i

#endif  // T4I_SERVING_SERVER_H
