#include "src/serving/cell.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "src/common/strings.h"

namespace t4i {
namespace {

constexpr double kUsPerSecond = 1e6;
constexpr double kInf = std::numeric_limits<double>::infinity();

Status
ValidateServingInputs(const std::vector<TenantConfig>& tenants,
                      int num_devices, double duration_s,
                      const ReliabilityConfig& reliability)
{
    if (tenants.empty()) {
        return Status::InvalidArgument("no tenants");
    }
    if (num_devices < 1) {
        return Status::InvalidArgument(StrFormat(
            "num_devices must be >= 1, got %d", num_devices));
    }
    // Zero is a legal (degenerate) arrival window: the run sees no
    // arrivals and reports all-zero statistics.
    if (duration_s < 0.0) {
        return Status::InvalidArgument("duration must be >= 0");
    }
    for (const auto& t : tenants) {
        if (!t.latency_s) {
            return Status::InvalidArgument(
                "tenant '" + t.name + "' has no latency model");
        }
        if (t.max_batch < 1) {
            return Status::InvalidArgument(
                "tenant '" + t.name + "': max_batch must be >= 1");
        }
        if (t.arrival_rate <= 0.0) {
            return Status::InvalidArgument(
                "tenant '" + t.name + "': arrival_rate must be positive");
        }
        if (t.slo_s < 0.0 || t.deadline_s < 0.0 || t.batch_wait_s < 0.0 ||
            t.host_overhead_s < 0.0 || t.switch_penalty_s < 0.0) {
            return Status::InvalidArgument(
                "tenant '" + t.name + "': durations must be >= 0");
        }
        if (t.max_queue < 0) {
            return Status::InvalidArgument(
                "tenant '" + t.name + "': max_queue must be >= 0");
        }
        if (t.max_retries < 0 || t.retry_backoff_s < 0.0) {
            return Status::InvalidArgument(
                "tenant '" + t.name + "': retry policy must be >= 0");
        }
    }
    if (reliability.hedge_quantile <= 0.0 ||
        reliability.hedge_quantile >= 1.0) {
        return Status::InvalidArgument(
            "hedge_quantile must be in (0, 1)");
    }
    if (reliability.max_cell_queue < 0) {
        return Status::InvalidArgument("max_cell_queue must be >= 0");
    }
    return Status::Ok();
}

}  // namespace

double
DrawNextArrival(Rng& rng, const TenantConfig& cfg, double t)
{
    if (!cfg.rate_multiplier) {
        return t + rng.NextExponential(cfg.arrival_rate);
    }
    const double peak =
        cfg.arrival_rate * std::max(cfg.peak_rate_multiplier, 1e-9);
    for (int guard = 0; guard < 100000; ++guard) {
        t += rng.NextExponential(peak);
        const double accept =
            cfg.arrival_rate * cfg.rate_multiplier(t) / peak;
        if (rng.NextBool(std::clamp(accept, 0.0, 1.0))) return t;
    }
    return t;  // pathological multiplier; degrade gracefully
}

StatusOr<std::unique_ptr<ServeCell>>
ServeCell::Create(Options options)
{
    std::unique_ptr<ServeCell> cell(new ServeCell());
    Status status = cell->Init(std::move(options));
    if (!status.ok()) return status;
    return std::move(cell);
}

ServeCell::~ServeCell()
{
    // The black-box device-state provider captures `this`; it must not
    // outlive the cell.
    if (recorder_ != nullptr) {
        recorder_->SetDeviceStateProvider(nullptr);
    }
}

obs::Labels
ServeCell::WithExtra(obs::Labels labels) const
{
    for (const auto& kv : telemetry_.extra_labels) {
        labels.push_back(kv);
    }
    return labels;
}

Status
ServeCell::Init(Options options)
{
    T4I_RETURN_IF_ERROR(ValidateServingInputs(
        options.tenants, options.num_devices, options.duration_s,
        options.reliability));

    tenants_ = std::move(options.tenants);
    num_devices_ = options.num_devices;
    duration_s_ = options.duration_s;
    telemetry_ = std::move(options.telemetry);
    reliability_ = std::move(options.reliability);
    external_ = options.external_arrivals;
    source_ = options.arrival_source;
    if (external_ && source_ != nullptr) {
        return Status::InvalidArgument(
            "external_arrivals and arrival_source are mutually "
            "exclusive");
    }
    span_name_ = std::move(options.request_span_name);

    // Expand the fault plan out past any plausible drain time; random
    // failures beyond the horizon simply stop occurring.
    const FaultPlan& plan = reliability_.faults;
    double horizon_s =
        duration_s_ * 4.0 + 10.0 * (plan.mtbf_s + plan.mttr_s) + 1.0;
    for (const auto& f : plan.scripted) {
        if (f.repair_at_s > 0.0) {
            horizon_s = std::max(horizon_s, f.repair_at_s + duration_s_);
        }
    }
    auto timeline_or = BuildFaultTimeline(plan, num_devices_, horizon_s);
    T4I_RETURN_IF_ERROR(timeline_or.status());
    timeline_ = std::move(timeline_or).ConsumeValue();
    faults_active_ = plan.enabled();
    // Transient batch errors draw from their own stream so injecting
    // faults never perturbs the arrival process.
    fault_rng_ = Substream(plan.seed, "faults.transient");

    rng_ = Substream(options.seed, "serving.arrivals");
    state_.assign(tenants_.size(), TenantState{});
    const bool internal_poisson = !external_ && source_ == nullptr;
    for (size_t i = 0; i < tenants_.size(); ++i) {
        state_[i].next_arrival_s =
            internal_poisson ? DrawNextArrival(rng_, tenants_[i], 0.0)
                             : kInf;
    }
    devices_.assign(static_cast<size_t>(num_devices_), DeviceState{});

    // Telemetry setup: per-tenant instruments and named trace tracks.
    // Device batches render on tids [0, num_devices); each tenant's
    // arrival/queue activity on tid num_devices + tenant index.
    trace_ = telemetry_.trace;
    pid_ = telemetry_.trace_pid;
    if (trace_ != nullptr) {
        trace_->SetProcessName(pid_, "serving cell");
        for (int d = 0; d < num_devices_; ++d) {
            trace_->SetThreadName(pid_, d, StrFormat("device %d", d));
        }
        for (size_t i = 0; i < tenants_.size(); ++i) {
            trace_->SetThreadName(pid_, QueueTid(i),
                                  "queue: " + tenants_[i].name);
        }
        if (faults_active_) {
            // Fault instants on the device tracks (capped per device
            // so high failure rates cannot bloat the trace).
            for (int d = 0; d < num_devices_; ++d) {
                int emitted = 0;
                for (const auto& iv : timeline_.down(d)) {
                    if (emitted >= 256) break;
                    trace_->AddInstant(pid_, d, "fault: down",
                                       iv.start_s * kUsPerSecond);
                    if (iv.end_s < kInf) {
                        trace_->AddInstant(pid_, d, "fault: up",
                                           iv.end_s * kUsPerSecond);
                    }
                    ++emitted;
                }
                for (const auto& s : timeline_.slowdowns(d)) {
                    trace_->AddInstant(pid_, d, "fault: slow",
                                       s.start_s * kUsPerSecond);
                    trace_->AddInstant(pid_, d, "fault: normal",
                                       s.end_s * kUsPerSecond);
                }
            }
        }
    }
    if (telemetry_.registry != nullptr) {
        for (size_t i = 0; i < tenants_.size(); ++i) {
            const obs::Labels labels =
                WithExtra({{"tenant", tenants_[i].name}});
            TenantState& ts = state_[i];
            obs::MetricsRegistry& reg = *telemetry_.registry;
            ts.latency_hist =
                reg.GetHistogram("serving.latency_seconds", labels);
            ts.batch_hist =
                reg.GetHistogram("serving.batch_size", labels);
            ts.completed_counter =
                reg.GetCounter("serving.completed", labels);
            ts.slo_miss_counter =
                reg.GetCounter("serving.slo_miss", labels);
            // Reliability counters exist (at zero) even in fault-free
            // runs so exports and the CI schema stay stable.
            ts.retry_counter = reg.GetCounter("serving.retries", labels);
            ts.shed_counter = reg.GetCounter("serving.shed", labels);
            ts.drop_counter =
                reg.GetCounter("serving.deadline_drops", labels);
            ts.hedge_win_counter =
                reg.GetCounter("serving.hedge_wins", labels);
            if (source_ != nullptr) {
                ts.load_arrival_counter =
                    reg.GetCounter("load.arrivals", labels);
                ts.client_retry_counter =
                    reg.GetCounter("load.client_retries", labels);
            }
            if (telemetry_.slo_error_budget > 0.0) {
                ts.burn_gauge =
                    reg.GetGauge("serving.slo_burn_rate", labels);
            }
            for (const AttributionShare& share :
                 telemetry_.batch_attribution) {
                ts.attribution_hists.push_back(reg.GetHistogram(
                    "serving.attribution.seconds",
                    WithExtra({{"tenant", tenants_[i].name},
                               {"component", share.component}})));
            }
        }
    }
    // Request-scoped observability (all optional; null sinks leave
    // the run bit-identical): span collector, black-box recorder, and
    // the alert engine (which needs the registry to read from).
    spans_ = telemetry_.spans;
    recorder_ = telemetry_.recorder;
    alerts_ =
        (telemetry_.alerts != nullptr && telemetry_.registry != nullptr)
            ? telemetry_.alerts
            : nullptr;
    timeseries_ = (telemetry_.timeseries != nullptr &&
                   telemetry_.registry != nullptr)
                      ? telemetry_.timeseries
                      : nullptr;
    slo_ = (telemetry_.slo != nullptr && telemetry_.registry != nullptr)
               ? telemetry_.slo
               : nullptr;
    if (recorder_ != nullptr) {
        if (telemetry_.registry != nullptr) {
            recorder_->BindRegistry(telemetry_.registry);
        }
        if (spans_ != nullptr) {
            recorder_->BindSpans(spans_);
            spans_->BindRecorder(recorder_);
        }
        // Per-device fault state for black-box dumps; cleared in the
        // destructor because the provider captures this cell.
        recorder_->SetDeviceStateProvider([this](double t) {
            std::string out = "[";
            for (int d = 0; d < num_devices_; ++d) {
                if (d > 0) out += ",";
                const bool down =
                    faults_active_ && timeline_.IsDown(d, t);
                const double speed =
                    faults_active_ ? timeline_.SpeedFactor(d, t) : 1.0;
                out += StrFormat(
                    "{\"device\":%d,\"down\":%s,"
                    "\"speed_factor\":%.6g}",
                    d, down ? "true" : "false", speed);
            }
            return out + "]";
        });
        if (faults_active_) {
            // Scheduled fault transitions land in the ring up front
            // (capped per device) so a dump shows what was coming.
            for (int d = 0; d < num_devices_; ++d) {
                int emitted = 0;
                for (const auto& iv : timeline_.down(d)) {
                    if (emitted >= 64) break;
                    recorder_->Record(
                        obs::FlightEventKind::kFault, iv.start_s,
                        StrFormat("device %d down (scheduled)", d));
                    if (iv.end_s < kInf) {
                        recorder_->Record(
                            obs::FlightEventKind::kFault, iv.end_s,
                            StrFormat("device %d up (scheduled)", d));
                    }
                    ++emitted;
                }
            }
        }
    }
    return Status::Ok();
}

bool
ServeCell::MoreArrivals(size_t i) const
{
    if (external_) return !arrivals_closed_;
    if (source_ != nullptr) return !source_->Exhausted();
    return state_[i].next_arrival_s < duration_s_;
}

int64_t
ServeCell::TotalQueued() const
{
    int64_t total = 0;
    for (const auto& ts : state_) {
        total += static_cast<int64_t>(ts.queue.size());
    }
    return total;
}

int64_t
ServeCell::QueueDepth() const
{
    return TotalQueued();
}

int64_t
ServeCell::QueueDepth(size_t tenant) const
{
    T4I_CHECK(tenant < state_.size(), "tenant index out of range");
    return static_cast<int64_t>(state_[tenant].queue.size());
}

bool
ServeCell::Healthy(double t_s) const
{
    if (!faults_active_) return true;
    for (int d = 0; d < num_devices_; ++d) {
        if (!timeline_.IsDown(d, t_s)) return true;
    }
    return false;
}

bool
ServeCell::TenantResident(size_t tenant) const
{
    for (const auto& d : devices_) {
        if (d.last_tenant == static_cast<int>(tenant)) return true;
    }
    return false;
}

bool
ServeCell::Drained() const
{
    return TotalQueued() == 0;
}

void
ServeCell::SetLatencyScale(double scale)
{
    T4I_CHECK(scale > 0.0, "latency scale must be positive");
    latency_scale_ = scale;
}

void
ServeCell::EmitQueueDepth(size_t i, double t)
{
    TenantState& ts = state_[i];
    const auto depth = static_cast<int64_t>(ts.queue.size());
    ts.max_queue_depth = std::max(ts.max_queue_depth, depth);
    if (trace_ != nullptr && depth != ts.last_emitted_depth) {
        trace_->AddCounter(pid_,
                           "queue depth: " + tenants_[i].name,
                           t * kUsPerSecond,
                           static_cast<double>(depth));
        ts.last_emitted_depth = depth;
    }
    if (recorder_ != nullptr && depth != ts.last_recorder_depth) {
        recorder_->Record(obs::FlightEventKind::kQueueDepth, t,
                          "queue: " + tenants_[i].name,
                          static_cast<double>(depth));
        ts.last_recorder_depth = depth;
    }
}

void
ServeCell::EndRequest(size_t tenant, const Request& req, double end_s,
                      RequestOutcome outcome, bool slo_miss)
{
    // Source-driven cells close the loop themselves: the terminal
    // event is the release signal for closed-loop clients and the
    // trigger for client retries. A completed request counts as a
    // success even past its SLO — the client got an answer.
    if (source_ != nullptr && req.load_id != 0) {
        source_->OnRequestEnd(req.load_id, end_s,
                              outcome == RequestOutcome::kCompleted);
    }
    if (!request_end_hook_) return;
    RequestEnd end;
    end.tenant = tenant;
    end.arrival_s = req.arrival_s;
    end.end_s = end_s;
    end.outcome = outcome;
    end.slo_miss = slo_miss;
    end.tag = req.tag;
    end.load_id = req.load_id;
    request_end_hook_(end);
}

bool
ServeCell::AdmitOrShed(size_t i, Request req)
{
    const TenantConfig& cfg = tenants_[i];
    TenantState& ts = state_[i];
    ++ts.arrived;
    // Admission control: per-tenant bound first, then the cell-wide
    // cap (evict lowest-priority backlog first).
    bool accepted = true;
    if (cfg.max_queue > 0 &&
        static_cast<int64_t>(ts.queue.size()) >= cfg.max_queue) {
        accepted = false;
    } else if (reliability_.max_cell_queue > 0 &&
               TotalQueued() >= reliability_.max_cell_queue) {
        // Find the lowest-priority tenant with a backlog (largest
        // queue breaks ties).
        size_t victim = i;
        bool have_victim = false;
        for (size_t j = 0; j < tenants_.size(); ++j) {
            if (state_[j].queue.empty()) continue;
            if (!have_victim ||
                tenants_[j].priority < tenants_[victim].priority ||
                (tenants_[j].priority == tenants_[victim].priority &&
                 state_[j].queue.size() > state_[victim].queue.size())) {
                victim = j;
                have_victim = true;
            }
        }
        if (have_victim && tenants_[victim].priority < cfg.priority) {
            const Request& evicted = state_[victim].queue.back();
            if (spans_ != nullptr && evicted.root_span != 0) {
                spans_->SetAttribute(evicted.root_span,
                                     "outcome", "shed");
                spans_->EndSpan(evicted.queue_span, now_);
                spans_->EndSpan(evicted.root_span, now_);
            }
            if (recorder_ != nullptr) {
                recorder_->Record(
                    obs::FlightEventKind::kDrop, now_,
                    "evicted: " + tenants_[victim].name);
            }
            EndRequest(victim, evicted, now_, RequestOutcome::kEvicted,
                       false);
            state_[victim].queue.pop_back();
            ++state_[victim].shed;
            if (state_[victim].shed_counter != nullptr) {
                state_[victim].shed_counter->Increment();
            }
            EmitQueueDepth(victim, now_);
        } else {
            accepted = false;
        }
    }
    if (accepted) {
        if (trace_ != nullptr &&
            ts.flows_started < telemetry_.max_flows_per_tenant) {
            req.flow_id = static_cast<int64_t>(next_flow_id_++);
            ++ts.flows_started;
            trace_->AddInstant(pid_, QueueTid(i), "arrive",
                               req.arrival_s * kUsPerSecond);
            trace_->AddFlowStart(pid_, QueueTid(i), "request",
                                 static_cast<uint64_t>(req.flow_id),
                                 req.arrival_s * kUsPerSecond);
        }
        if (spans_ != nullptr) {
            if (req.trace_id != 0) {
                // Externally-routed request with trace context: the
                // cell span joins the caller's trace under its span
                // (budget is the router's concern, not the cell's).
                req.root_span =
                    spans_->StartSpan(req.trace_id, req.parent_span,
                                      span_name_, req.arrival_s);
                spans_->SetAttribute(req.root_span, "tenant", cfg.name);
                req.queue_span = spans_->StartSpan(
                    req.trace_id, req.root_span, "queue",
                    req.arrival_s);
            } else if (ts.traces_started <
                       telemetry_.max_traced_requests_per_tenant) {
                ++ts.traces_started;
                req.trace_id = spans_->NewTrace();
                req.root_span = spans_->StartSpan(
                    req.trace_id, 0, span_name_, req.arrival_s);
                spans_->SetAttribute(req.root_span, "tenant", cfg.name);
                req.queue_span = spans_->StartSpan(
                    req.trace_id, req.root_span, "queue",
                    req.arrival_s);
            }
        }
        ts.queue.push_back(req);
    } else {
        ++ts.shed;
        if (ts.shed_counter != nullptr) {
            ts.shed_counter->Increment();
        }
        if (trace_ != nullptr) {
            trace_->AddInstant(pid_, QueueTid(i), "shed",
                               req.arrival_s * kUsPerSecond);
        }
        if (recorder_ != nullptr) {
            recorder_->Record(obs::FlightEventKind::kDrop,
                              req.arrival_s, "shed: " + cfg.name);
        }
    }
    return accepted;
}

void
ServeCell::DeliverArrivals()
{
    // Source mode: pull everything due by now_ from the load program.
    // The source never emits at or past duration_s_, so every taken
    // arrival is injected (and counted) — the books stay honest.
    if (source_ != nullptr) {
        load::LoadArrival peeked;
        while (source_->Peek(&peeked) && peeked.t_s <= now_) {
            const load::LoadArrival got = source_->Take();
            ++source_arrivals_;
            if (got.client_retry) ++source_client_retries_;
            TenantState& ts = state_[got.tenant];
            if (ts.load_arrival_counter != nullptr) {
                ts.load_arrival_counter->Increment();
                if (got.client_retry) {
                    ts.client_retry_counter->Increment();
                }
            }
            Request req;
            req.arrival_s = got.t_s;
            req.size = got.size;
            req.deadline_s = got.deadline_s;
            req.load_id = got.id;
            if (req.deadline_s > 0.0) has_request_deadlines_ = true;
            if (!AdmitOrShed(got.tenant, req)) {
                // Door-shed: the source hears the refusal immediately
                // (a retrying client will come back).
                source_->OnRequestEnd(got.id, now_, false);
            }
        }
    }
    for (size_t i = 0; i < tenants_.size(); ++i) {
        const TenantConfig& cfg = tenants_[i];
        TenantState& ts = state_[i];
        if (!external_ && source_ == nullptr) {
            while (ts.next_arrival_s <= now_ &&
                   ts.next_arrival_s < duration_s_) {
                Request req;
                req.arrival_s = ts.next_arrival_s;
                AdmitOrShed(i, req);
                ts.next_arrival_s =
                    DrawNextArrival(rng_, cfg, ts.next_arrival_s);
            }
        }
        // Deadline sweep: queued requests older than the deadline are
        // dropped (distinct from SLO misses, which complete).
        auto drop_deadline = [&](const Request& doomed) {
            if (spans_ != nullptr && doomed.root_span != 0) {
                spans_->SetAttribute(doomed.root_span, "outcome",
                                     "deadline_drop");
                spans_->EndSpan(doomed.queue_span, now_);
                spans_->EndSpan(doomed.root_span, now_);
            }
            if (recorder_ != nullptr) {
                recorder_->OnDeadlineDrop(
                    now_, "deadline drop: " + cfg.name);
            }
            EndRequest(i, doomed, now_,
                       RequestOutcome::kDeadlineDrop, false);
            ++ts.dropped;
            if (ts.drop_counter != nullptr) {
                ts.drop_counter->Increment();
            }
            if (trace_ != nullptr) {
                trace_->AddInstant(pid_, QueueTid(i),
                                   "deadline drop",
                                   now_ * kUsPerSecond);
            }
        };
        if (!has_request_deadlines_) {
            // Uniform per-tenant deadlines: arrivals are FIFO, so the
            // front is always the first to expire (front-only sweep).
            if (cfg.deadline_s > 0.0) {
                while (!ts.queue.empty() &&
                       ts.queue.front().arrival_s + cfg.deadline_s <=
                           now_) {
                    drop_deadline(ts.queue.front());
                    ts.queue.pop_front();
                }
            }
        } else {
            // Per-request deadlines (trace replay): a short-deadline
            // request can expire behind a long-deadline one, so the
            // sweep scans the whole queue.
            for (auto it = ts.queue.begin(); it != ts.queue.end();) {
                const double deadline = it->deadline_s > 0.0
                                            ? it->deadline_s
                                            : cfg.deadline_s;
                if (deadline > 0.0 &&
                    it->arrival_s + deadline <= now_) {
                    drop_deadline(*it);
                    it = ts.queue.erase(it);
                } else {
                    ++it;
                }
            }
        }
        EmitQueueDepth(i, now_);
    }
}

ServeCell::Injected
ServeCell::InjectArrival(size_t tenant, double arrival_s,
                         uint64_t trace_id, obs::SpanId parent_span,
                         uint64_t tag)
{
    ExternalArrival arrival;
    arrival.tenant = tenant;
    arrival.arrival_s = arrival_s;
    arrival.trace_id = trace_id;
    arrival.parent_span = parent_span;
    arrival.tag = tag;
    return InjectArrival(arrival);
}

ServeCell::Injected
ServeCell::InjectArrival(const ExternalArrival& arrival)
{
    T4I_CHECK(external_,
              "InjectArrival requires external_arrivals mode");
    T4I_CHECK(arrival.tenant < tenants_.size(),
              "tenant index out of range");
    T4I_CHECK(!arrivals_closed_, "arrivals already closed");
    Injected out;
    // Lazy clock: injected arrivals deliver exactly like internal ones
    // (at the dispatch loop's current instant, never earlier).
    now_ = std::max(now_, arrival.arrival_s);
    Request req;
    req.arrival_s = arrival.arrival_s;
    req.trace_id = arrival.trace_id;
    req.parent_span = arrival.parent_span;
    req.tag = arrival.tag;
    req.size = arrival.size;
    req.deadline_s = arrival.deadline_s;
    req.load_id = arrival.load_id;
    if (req.deadline_s > 0.0) has_request_deadlines_ = true;
    out.admitted = AdmitOrShed(arrival.tenant, req);
    if (out.admitted) {
        out.span = state_[arrival.tenant].queue.back().root_span;
    }
    EmitQueueDepth(arrival.tenant, now_);
    return out;
}

void
ServeCell::CloseArrivals()
{
    arrivals_closed_ = true;
}

void
ServeCell::AdvanceTo(double limit_s)
{
    while (!done_) {
        // Deliver all arrivals up to `now_` and sweep deadlines.
        DeliverArrivals();

        // Periodic observability tick in sim time: histograms and
        // counters update live, so SLO budgets accrue, windows close,
        // and for-duration rules can arm, fire, and (via the recorder)
        // trigger a black-box dump mid-run. SLO budgets tick before
        // the window collector so the slo.* gauges land in the window
        // that describes them; when the collector routes alerts, each
        // window close is the evaluation point and the direct
        // evaluation below is skipped.
        if ((alerts_ != nullptr || slo_ != nullptr ||
             timeseries_ != nullptr) &&
            now_ >= next_alert_eval_) {
            if (slo_ != nullptr) slo_->Tick(now_);
            if (timeseries_ != nullptr) timeseries_->Tick(now_);
            if (alerts_ != nullptr &&
                (timeseries_ == nullptr ||
                 !timeseries_->routes_alerts())) {
                alerts_->Evaluate(*telemetry_.registry, now_);
            }
            next_alert_eval_ =
                now_ + std::max(telemetry_.alert_eval_interval_s, 1e-6);
        }

        // A tenant is dispatchable when its batch is full, its oldest
        // request has waited out the batching patience, or no more
        // arrivals are coming. Retry backoff gates the queue head.
        auto dispatchable = [&](size_t i) {
            if (state_[i].queue.empty()) return false;
            if (state_[i].queue.front().not_before_s > now_) {
                return false;
            }
            if (tenants_[i].batch_wait_s <= 0.0) return true;
            if (static_cast<int64_t>(state_[i].queue.size()) >=
                tenants_[i].max_batch) {
                return true;
            }
            if (!MoreArrivals(i)) return true;
            return now_ - state_[i].queue.front().arrival_s >=
                   tenants_[i].batch_wait_s;
        };

        // Pick the highest-priority dispatchable tenant; round-robin
        // within the winning priority level.
        int best_priority = 0;
        bool found = false;
        for (size_t i = 0; i < tenants_.size(); ++i) {
            if (!dispatchable(i)) continue;
            if (!found || tenants_[i].priority > best_priority) {
                best_priority = tenants_[i].priority;
                found = true;
            }
        }
        int chosen = -1;
        if (found) {
            for (size_t k = 0; k < tenants_.size(); ++k) {
                const size_t idx = (rr_cursor_ + k) % tenants_.size();
                if (dispatchable(idx) &&
                    tenants_[idx].priority == best_priority) {
                    chosen = static_cast<int>(idx);
                    break;
                }
            }
        }

        if (chosen < 0) {
            // Advance to the next event: an arrival, a batching
            // deadline expiring, a retry backoff elapsing, or a
            // request deadline expiring.
            double next = 1e300;
            bool have_event = false;
            if (source_ != nullptr) {
                load::LoadArrival peeked;
                if (source_->Peek(&peeked)) {
                    next = std::min(next, peeked.t_s);
                    have_event = true;
                }
            }
            for (size_t i = 0; i < tenants_.size(); ++i) {
                if (!external_ && source_ == nullptr &&
                    state_[i].next_arrival_s < duration_s_) {
                    next = std::min(next, state_[i].next_arrival_s);
                    have_event = true;
                }
                if (!state_[i].queue.empty()) {
                    const Request& front = state_[i].queue.front();
                    // A retry backoff gates dispatch, so the patience
                    // event cannot fire before it (clamping keeps the
                    // loop advancing instead of re-visiting a stale
                    // patience instant forever).
                    next = std::min(
                        next,
                        std::max(front.arrival_s +
                                     tenants_[i].batch_wait_s,
                                 front.not_before_s));
                    if (!has_request_deadlines_) {
                        if (tenants_[i].deadline_s > 0.0) {
                            next = std::min(
                                next, front.arrival_s +
                                          tenants_[i].deadline_s);
                        }
                    } else {
                        for (const Request& r : state_[i].queue) {
                            const double deadline =
                                r.deadline_s > 0.0
                                    ? r.deadline_s
                                    : tenants_[i].deadline_s;
                            if (deadline > 0.0) {
                                next = std::min(
                                    next, r.arrival_s + deadline);
                            }
                        }
                    }
                    have_event = true;
                }
            }
            if (!have_event) {
                // External cells with the arrival stream still open
                // are idle, not done — more injections may come.
                if (!external_ || arrivals_closed_) done_ = true;
                return;
            }
            if (next > limit_s) return;
            now_ = std::max(now_ + 1e-12, next);
            continue;
        }
        // Defer dispatches at or beyond the limit so a caller stepping
        // many cells on a shared clock can inject arrivals timestamped
        // `limit_s` before work at that instant executes — the same
        // arrivals-before-dispatch order the internal loop guarantees.
        if (now_ >= limit_s) return;
        rr_cursor_ = static_cast<size_t>(chosen) + 1;
        DispatchChosen(chosen);
    }
}

bool
ServeCell::DispatchChosen(int chosen)
{
    TenantState& ts = state_[static_cast<size_t>(chosen)];
    const TenantConfig& cfg = tenants_[static_cast<size_t>(chosen)];
    const FaultPlan& plan = reliability_.faults;

    // Dead cell: every device is permanently down from here on — drop
    // the backlog (and, next iterations, future arrivals) so the loop
    // terminates instead of queueing forever.
    if (faults_active_) {
        double earliest_up = kInf;
        for (int d = 0; d < num_devices_; ++d) {
            earliest_up = std::min(
                earliest_up,
                timeline_.NextUp(
                    d, std::max(now_, devices_[static_cast<size_t>(d)]
                                          .device_free_s)));
        }
        if (earliest_up == kInf) {
            if (recorder_ != nullptr) {
                recorder_->OnFault(now_, "cell dead: every device "
                                         "down permanently");
            }
            for (size_t i = 0; i < tenants_.size(); ++i) {
                TenantState& dead = state_[i];
                while (!dead.queue.empty()) {
                    const Request& doomed = dead.queue.front();
                    if (spans_ != nullptr && doomed.root_span != 0) {
                        spans_->SetAttribute(doomed.root_span,
                                             "outcome",
                                             "dropped_dead_cell");
                        spans_->EndSpan(doomed.queue_span, now_);
                        spans_->EndSpan(doomed.root_span, now_);
                    }
                    EndRequest(i, doomed, now_,
                               RequestOutcome::kDeadCell, false);
                    dead.queue.pop_front();
                    ++dead.dropped;
                    if (dead.drop_counter != nullptr) {
                        dead.drop_counter->Increment();
                    }
                }
                EmitQueueDepth(i, now_);
            }
            return false;
        }
    }

    // Dispatch to the earliest-usable device (earliest-free when no
    // faults are configured — bit-identical to the fault-free
    // simulator).
    int dev_index = 0;
    {
        double best_key = kInf;
        for (int d = 0; d < num_devices_; ++d) {
            double key = devices_[static_cast<size_t>(d)].device_free_s;
            if (faults_active_) {
                key = timeline_.NextUp(d, std::max(key, now_));
            }
            if (key < best_key) {
                best_key = key;
                dev_index = d;
            }
        }
    }
    DeviceState* device = &devices_[static_cast<size_t>(dev_index)];

    const auto batch = static_cast<int64_t>(std::min<size_t>(
        ts.queue.size(), static_cast<size_t>(cfg.max_batch)));
    // Pull the batch's requests out now; they either complete or are
    // re-enqueued / dropped on failure.
    std::vector<Request> in_flight;
    in_flight.reserve(static_cast<size_t>(batch));
    for (int64_t j = 0; j < batch; ++j) {
        in_flight.push_back(ts.queue.front());
        ts.queue.pop_front();
    }

    // Two-stage pipeline: the host prepares this batch (possibly while
    // the device still runs the previous one), then the device
    // executes.
    const double host_start = std::max(now_, device->host_free_s);
    const double host_done = host_start + cfg.host_overhead_s;
    device->host_free_s = host_done;
    device->host_busy_s += cfg.host_overhead_s;

    double device_start = std::max(host_done, device->device_free_s);
    if (faults_active_) {
        device_start = timeline_.NextUp(dev_index, device_start);
    }
    if (device->last_tenant != chosen && cfg.switch_penalty_s > 0.0) {
        switch_overhead_ += cfg.switch_penalty_s;
        device_start += cfg.switch_penalty_s;
    }
    device->last_tenant = chosen;

    // The latency scale is the canary-rollout model-version knob; at
    // the default 1.0 the nominal time is untouched (bit-identical).
    double nominal_exec = cfg.latency_s(batch);
    if (latency_scale_ != 1.0) nominal_exec *= latency_scale_;
    // Heavy-tailed request sizes: the batch pads to its largest
    // request, so execution scales with the max size in flight (at
    // the default 1.0 the arithmetic is untouched — bit-identical).
    double max_size = 1.0;
    for (const Request& req : in_flight) {
        max_size = std::max(max_size, req.size);
    }
    if (max_size != 1.0) nominal_exec *= max_size;
    double exec = nominal_exec;
    if (faults_active_) {
        exec /= timeline_.SpeedFactor(dev_index, device_start);
    }
    double finish = device_start + exec;
    bool primary_aborted = false;
    if (faults_active_) {
        const double next_fail =
            timeline_.NextFailure(dev_index, device_start);
        if (next_fail < finish) {
            // Device died mid-batch: the work is lost at the failure
            // instant.
            primary_aborted = true;
            finish = next_fail;
            if (recorder_ != nullptr) {
                recorder_->OnFault(
                    finish,
                    StrFormat("device %d failed mid-batch "
                              "(tenant %s, batch %lld)",
                              dev_index, cfg.name.c_str(),
                              static_cast<long long>(batch)));
            }
        }
    }
    device->busy_s += finish - std::max(now_, device->device_free_s);
    device->device_free_s = finish;

    // Hedged dispatch: if this copy is projected to run longer than
    // the hedge quantile of observed batch times (straggler) or its
    // device died mid-batch, re-issue on a second device after the
    // quantile-sized delay. The losing copy's work is wasted but
    // counted as busy — the real cost of hedging.
    bool hedged = false;
    bool hedge_aborted = false;
    int hedge_dev = -1;
    double hedge_start = kInf;
    double hedge_finish = kInf;
    if (reliability_.hedge && num_devices_ > 1 &&
        ts.device_times.count() >= 16) {
        // Straggler = slow *relative to this batch's nominal time* (an
        // absolute-time quantile would flag every full-size batch and
        // hedge the cell into overload). The hedge launches once the
        // primary has overstayed the quantile slowdown for its batch.
        const double threshold =
            nominal_exec * ts.device_times.Percentile(
                               100.0 * reliability_.hedge_quantile);
        if (primary_aborted || exec > threshold) {
            const double hedge_issue = device_start + threshold;
            double best_key = kInf;
            for (int d = 0; d < num_devices_; ++d) {
                if (d == dev_index) continue;
                const double key = timeline_.NextUp(
                    d, std::max(devices_[static_cast<size_t>(d)]
                                    .device_free_s,
                                hedge_issue));
                if (key < best_key) {
                    best_key = key;
                    hedge_dev = d;
                }
            }
            if (hedge_dev >= 0 && best_key < kInf) {
                hedged = true;
                ++ts.hedges;
                DeviceState& hd =
                    devices_[static_cast<size_t>(hedge_dev)];
                hedge_start = best_key;
                const double hedge_exec =
                    nominal_exec /
                    timeline_.SpeedFactor(hedge_dev, hedge_start);
                hedge_finish = hedge_start + hedge_exec;
                const double hedge_fail =
                    timeline_.NextFailure(hedge_dev, hedge_start);
                if (hedge_fail < hedge_finish) {
                    hedge_aborted = true;
                    hedge_finish = hedge_fail;
                    if (recorder_ != nullptr) {
                        recorder_->OnFault(
                            hedge_finish,
                            StrFormat("device %d failed "
                                      "mid-batch (hedge copy, "
                                      "tenant %s)",
                                      hedge_dev, cfg.name.c_str()));
                    }
                }
                hd.busy_s += hedge_finish - hedge_start;
                hd.device_free_s = hedge_finish;
                hd.last_tenant = chosen;
            }
        }
    }

    // Outcome: each copy that ran to completion may still fail
    // transiently; the earliest surviving copy wins the batch.
    auto copy_survives = [&](bool aborted) {
        if (aborted) return false;
        if (plan.transient_failure_prob > 0.0) {
            return !fault_rng_.NextBool(plan.transient_failure_prob);
        }
        return true;
    };
    const bool primary_ok = copy_survives(primary_aborted);
    const bool hedge_ok = hedged && copy_survives(hedge_aborted);
    double completion = kInf;
    bool success = false;
    bool hedge_won = false;
    int win_dev = dev_index;
    double win_start = device_start;
    if (primary_ok) {
        completion = finish;
        success = true;
    }
    if (hedge_ok && hedge_finish < completion) {
        completion = hedge_finish;
        success = true;
        hedge_won = true;
        win_dev = hedge_dev;
        win_start = hedge_start;
    }
    if (hedge_won) {
        ++ts.hedge_wins;
        if (ts.hedge_win_counter != nullptr) {
            ts.hedge_win_counter->Increment();
        }
    }

    if (trace_ != nullptr) {
        trace_->AddComplete(
            pid_, dev_index, cfg.name, "batch",
            device_start * kUsPerSecond,
            (finish - device_start) * kUsPerSecond,
            StrFormat("{\"batch\":%lld,\"outcome\":\"%s\"}",
                      static_cast<long long>(batch),
                      primary_ok ? "ok" : "failed"));
        if (hedged) {
            trace_->AddComplete(
                pid_, hedge_dev, cfg.name + " (hedge)", "batch",
                hedge_start * kUsPerSecond,
                (hedge_finish - hedge_start) * kUsPerSecond,
                StrFormat("{\"batch\":%lld,\"win\":%d}",
                          static_cast<long long>(batch),
                          hedge_won ? 1 : 0));
        }
    }

    // Span recording: the queue wait ends at batch formation, a
    // "batch" child covers host staging + device wait, and every
    // dispatch copy becomes an "execute" child. The winning copy
    // gains engine-group sub-spans (split per batch_attribution); the
    // losing copy links to the winner. On success the root closes at
    // the completion instant, so root duration is exactly the latency
    // the simulator reports; with no retries or hedges the three
    // children tile the root exactly.
    if (spans_ != nullptr) {
        double frac_total = 0.0;
        for (const auto& share : telemetry_.batch_attribution) {
            frac_total += share.fraction;
        }
        for (Request& req : in_flight) {
            if (req.root_span == 0) continue;
            spans_->EndSpan(req.queue_span, now_);
            req.queue_span = 0;
            const obs::SpanId form = spans_->StartSpan(
                req.trace_id, req.root_span, "batch", now_);
            spans_->SetAttribute(
                form, "batch",
                StrFormat("%lld", static_cast<long long>(batch)));
            spans_->EndSpan(form, device_start);
            const obs::SpanId primary = spans_->StartSpan(
                req.trace_id, req.root_span, "execute", device_start);
            spans_->SetAttribute(primary, "device",
                                 StrFormat("%d", dev_index));
            spans_->SetAttribute(primary, "attempt",
                                 StrFormat("%d", req.attempts));
            spans_->SetAttribute(primary, "outcome",
                                 primary_aborted ? "aborted"
                                 : primary_ok    ? "ok"
                                                 : "transient_error");
            spans_->EndSpan(primary, finish);
            obs::SpanId hedge_span = 0;
            if (hedged) {
                hedge_span = spans_->StartSpan(
                    req.trace_id, req.root_span, "execute",
                    hedge_start);
                spans_->SetAttribute(hedge_span, "device",
                                     StrFormat("%d", hedge_dev));
                spans_->SetAttribute(hedge_span, "hedge", "1");
                spans_->SetAttribute(hedge_span, "outcome",
                                     hedge_aborted ? "aborted"
                                     : hedge_ok    ? "ok"
                                                   : "transient_error");
                spans_->EndSpan(hedge_span, hedge_finish);
            }
            if (!success) continue;
            const obs::SpanId winner = hedge_won ? hedge_span : primary;
            if (hedged) {
                spans_->Link(hedge_won ? primary : hedge_span, winner);
                spans_->SetAttribute(winner, "won", "1");
            }
            // Engine-group sub-spans partition the winning execution;
            // when the shares sum to 1 the last segment snaps to the
            // exact completion instant.
            const double dur = completion - win_start;
            double cursor = win_start;
            double cum = 0.0;
            for (size_t a = 0; a < telemetry_.batch_attribution.size();
                 ++a) {
                const AttributionShare& share =
                    telemetry_.batch_attribution[a];
                cum += share.fraction;
                double seg_end = win_start + dur * cum;
                if (a + 1 == telemetry_.batch_attribution.size() &&
                    std::abs(frac_total - 1.0) < 1e-9) {
                    seg_end = completion;
                }
                const obs::SpanId seg = spans_->StartSpan(
                    req.trace_id, winner,
                    "execute/" + share.component, cursor);
                spans_->EndSpan(seg, seg_end);
                cursor = seg_end;
            }
            const double latency = completion - req.arrival_s;
            spans_->SetAttribute(req.root_span, "outcome",
                                 "completed");
            if (latency > cfg.slo_s) {
                spans_->SetAttribute(req.root_span, "slo_miss", "1");
            }
            spans_->EndSpan(req.root_span, completion);
        }
    }

    if (success) {
        if (reliability_.hedge && nominal_exec > 0.0) {
            ts.device_times.Add((completion - win_start) /
                                nominal_exec);
        }
        // Split the winning copy's device time across the attribution
        // components so tenants can read a p95 of "time spent in MXU"
        // rather than just a p95 latency.
        for (size_t a = 0; a < ts.attribution_hists.size(); ++a) {
            ts.attribution_hists[a]->Observe(
                (completion - win_start) *
                telemetry_.batch_attribution[a].fraction);
        }
        for (const Request& req : in_flight) {
            const double latency = completion - req.arrival_s;
            ts.latencies.Add(latency);
            ++ts.completed;
            if (latency > cfg.slo_s) ++ts.slo_misses;
            if (ts.latency_hist != nullptr) {
                ts.latency_hist->Observe(latency);
                if (spans_ != nullptr && req.trace_id != 0) {
                    // Annotation only: the distribution above is
                    // untouched, so untraced runs stay bit-identical.
                    ts.latency_hist->AttachExemplar(
                        latency, req.trace_id, completion);
                }
                ts.completed_counter->Increment();
                if (latency > cfg.slo_s) {
                    ts.slo_miss_counter->Increment();
                }
            }
            if (trace_ != nullptr && req.flow_id >= 0) {
                // arrival (queue track) -> batch start (device track)
                // -> completion, all one arrow.
                trace_->AddFlowStep(
                    pid_, win_dev, "request",
                    static_cast<uint64_t>(req.flow_id),
                    win_start * kUsPerSecond);
                trace_->AddFlowEnd(
                    pid_, win_dev, "request",
                    static_cast<uint64_t>(req.flow_id),
                    completion * kUsPerSecond);
            }
            EndRequest(static_cast<size_t>(chosen), req, completion,
                       RequestOutcome::kCompleted,
                       latency > cfg.slo_s);
        }
        if (ts.burn_gauge != nullptr && ts.completed > 0) {
            ts.burn_gauge->Set(static_cast<double>(ts.slo_misses) /
                               static_cast<double>(ts.completed) /
                               telemetry_.slo_error_budget);
        }
    } else {
        // Batch failed on every copy: bounded retry with exponential
        // backoff, preserving arrival order at the queue head;
        // requests out of retries are dropped.
        ++ts.retried;
        if (ts.retry_counter != nullptr) {
            ts.retry_counter->Increment();
        }
        const double fail_known =
            hedged ? std::max(finish, hedge_finish) : finish;
        if (trace_ != nullptr) {
            trace_->AddInstant(pid_, dev_index, "batch failed",
                               fail_known * kUsPerSecond);
        }
        for (auto it = in_flight.rbegin(); it != in_flight.rend();
             ++it) {
            Request req = *it;
            if (req.attempts >= cfg.max_retries) {
                ++ts.dropped;
                if (ts.drop_counter != nullptr) {
                    ts.drop_counter->Increment();
                }
                if (spans_ != nullptr && req.root_span != 0) {
                    spans_->SetAttribute(req.root_span, "outcome",
                                         "retries_exhausted");
                    spans_->EndSpan(req.root_span, fail_known);
                }
                if (recorder_ != nullptr && req.root_span != 0) {
                    recorder_->Record(
                        obs::FlightEventKind::kDrop, fail_known,
                        "retries exhausted: " + cfg.name, 0.0);
                }
                EndRequest(static_cast<size_t>(chosen), req,
                           fail_known,
                           RequestOutcome::kRetriesExhausted, false);
                continue;
            }
            const int shift = std::min(req.attempts, 20);
            req.not_before_s =
                fail_known +
                cfg.retry_backoff_s *
                    static_cast<double>(int64_t{1} << shift);
            ++req.attempts;
            if (spans_ != nullptr && req.root_span != 0) {
                // The request re-enters the queue: annotate the root
                // and open a fresh queue-wait child covering the
                // backoff plus the renewed wait.
                spans_->AddEvent(
                    req.root_span,
                    StrFormat("retry %d scheduled", req.attempts),
                    fail_known);
                req.queue_span = spans_->StartSpan(
                    req.trace_id, req.root_span, "queue", fail_known);
                spans_->SetAttribute(req.queue_span, "retry",
                                     StrFormat("%d", req.attempts));
            }
            ts.queue.push_front(req);
        }
    }
    ts.batches.Add(static_cast<double>(batch));
    if (ts.batch_hist != nullptr) {
        ts.batch_hist->Observe(static_cast<double>(batch));
    }
    EmitQueueDepth(static_cast<size_t>(chosen), now_);

    // Advance to the next batch-formation point: the host stage leads
    // the device by the host overhead so the two-stage pipeline stays
    // full (with zero host overhead this reduces to "wait until a
    // device frees").
    double max_host = 0.0;
    for (const auto& t : tenants_) {
        max_host = std::max(max_host, t.host_overhead_s);
    }
    double candidate = 1e300;
    for (size_t d = 0; d < devices_.size(); ++d) {
        double usable = std::max(devices_[d].host_free_s,
                                 devices_[d].device_free_s - max_host);
        if (faults_active_) {
            // A down device's stale free-time must not defeat the
            // backpressure throttle (it would dispatch degenerate
            // batches the instant they arrive); wait for the next
            // instant the device can actually take work.
            usable = timeline_.NextUp(static_cast<int>(d), usable);
        }
        candidate = std::min(candidate, usable);
    }
    if (candidate < 1e300) now_ = std::max(now_, candidate);
    return true;
}

ServingResult
ServeCell::Finish()
{
    T4I_CHECK(!finished_, "ServeCell::Finish called twice");
    finished_ = true;

    ServingResult result;
    double last_finish = duration_s_;
    double busy_sum = 0.0;
    double host_sum = 0.0;
    for (const auto& d : devices_) {
        last_finish = std::max(last_finish, d.device_free_s);
        busy_sum += d.busy_s;
        host_sum += d.host_busy_s;
    }
    result.duration_s = last_finish;
    // A zero-length arrival window has no device-seconds to normalise
    // by; the honest utilisation of a run that never ran is zero, not
    // NaN.
    const double device_seconds = result.duration_s * num_devices_;
    result.device_busy_fraction =
        device_seconds > 0.0 ? busy_sum / device_seconds : 0.0;
    result.host_busy_fraction =
        device_seconds > 0.0 ? host_sum / device_seconds : 0.0;
    result.switch_overhead_fraction =
        device_seconds > 0.0 ? switch_overhead_ / device_seconds : 0.0;
    result.availability =
        (faults_active_ && result.duration_s > 0.0)
            ? timeline_.Availability(result.duration_s)
            : 1.0;
    for (size_t i = 0; i < tenants_.size(); ++i) {
        TenantStats s;
        s.name = tenants_[i].name;
        s.arrived = state_[i].arrived;
        s.completed = state_[i].completed;
        s.dropped = state_[i].dropped;
        s.shed = state_[i].shed;
        s.retried = state_[i].retried;
        s.hedges = state_[i].hedges;
        s.hedge_wins = state_[i].hedge_wins;
        s.mean_latency_s = state_[i].latencies.Mean();
        s.p50_latency_s = state_[i].latencies.Percentile(50.0);
        s.p95_latency_s = state_[i].latencies.Percentile(95.0);
        s.p99_latency_s = state_[i].latencies.Percentile(99.0);
        s.slo_misses = state_[i].slo_misses;
        s.slo_miss_fraction =
            state_[i].completed > 0
                ? static_cast<double>(state_[i].slo_misses) /
                      static_cast<double>(state_[i].completed)
                : 0.0;
        s.throughput_rps =
            result.duration_s > 0.0
                ? static_cast<double>(state_[i].completed) /
                      result.duration_s
                : 0.0;
        s.goodput_rps =
            result.duration_s > 0.0
                ? static_cast<double>(state_[i].completed -
                                      state_[i].slo_misses) /
                      result.duration_s
                : 0.0;
        s.mean_batch = state_[i].batches.mean();
        s.max_queue_depth = state_[i].max_queue_depth;
        result.tenants.push_back(std::move(s));
    }

    if (telemetry_.registry != nullptr) {
        obs::MetricsRegistry& reg = *telemetry_.registry;
        const obs::Labels cell_labels = WithExtra({});
        reg.GetGauge("serving.device_busy_fraction", cell_labels)
            ->Set(result.device_busy_fraction);
        reg.GetGauge("serving.host_busy_fraction", cell_labels)
            ->Set(result.host_busy_fraction);
        reg.GetGauge("serving.switch_overhead_fraction", cell_labels)
            ->Set(result.switch_overhead_fraction);
        reg.GetGauge("serving.duration_seconds", cell_labels)
            ->Set(result.duration_s);
        reg.GetGauge("serving.availability", cell_labels)
            ->Set(result.availability);
        for (const auto& tenant : result.tenants) {
            const obs::Labels labels =
                WithExtra({{"tenant", tenant.name}});
            reg.GetGauge("serving.slo_miss_fraction", labels)
                ->Set(tenant.slo_miss_fraction);
            if (telemetry_.slo_error_budget > 0.0) {
                // Burn rate > 1 means the tenant is spending its error
                // budget faster than it accrues (SRE convention).
                reg.GetGauge("serving.slo_burn_rate", labels)
                    ->Set(tenant.slo_miss_fraction /
                          telemetry_.slo_error_budget);
            }
            reg.GetGauge("serving.throughput_rps", labels)
                ->Set(tenant.throughput_rps);
            reg.GetGauge("serving.goodput_rps", labels)
                ->Set(tenant.goodput_rps);
            reg.GetGauge("serving.max_queue_depth", labels)
                ->Set(static_cast<double>(tenant.max_queue_depth));
        }
    }
    // One final alert pass over the end-of-run gauges so rules on
    // run-level metrics (availability, final burn rate) get a verdict
    // even when the run ends between evaluation intervals.
    if (alerts_ != nullptr) {
        alerts_->Evaluate(*telemetry_.registry, result.duration_s);
    }
    return result;
}

}  // namespace t4i
