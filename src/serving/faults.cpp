#include "src/serving/faults.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/rng.h"
#include "src/common/strings.h"

namespace t4i {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** Sorts by start and merges overlapping/adjacent down intervals. */
std::vector<DownInterval>
MergeIntervals(std::vector<DownInterval> intervals)
{
    std::sort(intervals.begin(), intervals.end(),
              [](const DownInterval& a, const DownInterval& b) {
                  return a.start_s < b.start_s;
              });
    std::vector<DownInterval> merged;
    for (const auto& iv : intervals) {
        if (!merged.empty() && iv.start_s <= merged.back().end_s) {
            merged.back().end_s = std::max(merged.back().end_s, iv.end_s);
        } else {
            merged.push_back(iv);
        }
    }
    return merged;
}

}  // namespace

bool
FaultTimeline::IsDown(int device, double t) const
{
    for (const auto& iv : down_[static_cast<size_t>(device)]) {
        if (t < iv.start_s) return false;
        if (t < iv.end_s) return true;
    }
    return false;
}

double
FaultTimeline::NextUp(int device, double t) const
{
    for (const auto& iv : down_[static_cast<size_t>(device)]) {
        if (t < iv.start_s) return t;
        if (t < iv.end_s) return iv.end_s;  // +inf when never repaired
    }
    return t;
}

double
FaultTimeline::NextFailure(int device, double t) const
{
    for (const auto& iv : down_[static_cast<size_t>(device)]) {
        if (t < iv.start_s) return iv.start_s;
        if (t < iv.end_s) return t;  // already down
    }
    return kInf;
}

double
FaultTimeline::SpeedFactor(int device, double t) const
{
    for (const auto& s : slow_[static_cast<size_t>(device)]) {
        if (t >= s.start_s && t < s.end_s) return s.speed_factor;
    }
    return 1.0;
}

double
FaultTimeline::UpFraction(int device, double until_s) const
{
    if (until_s <= 0.0) return 1.0;
    double down_time = 0.0;
    for (const auto& iv : down_[static_cast<size_t>(device)]) {
        if (iv.start_s >= until_s) break;
        down_time += std::min(iv.end_s, until_s) - iv.start_s;
    }
    return 1.0 - down_time / until_s;
}

double
FaultTimeline::Availability(double until_s) const
{
    if (down_.empty()) return 1.0;
    double sum = 0.0;
    for (int d = 0; d < num_devices(); ++d) {
        sum += UpFraction(d, until_s);
    }
    return sum / static_cast<double>(down_.size());
}

StatusOr<FaultTimeline>
BuildFaultTimeline(const FaultPlan& plan, int num_devices,
                   double horizon_s)
{
    if (num_devices < 1) {
        return Status::InvalidArgument("fault plan needs >= 1 device");
    }
    if (horizon_s <= 0.0) {
        return Status::InvalidArgument("fault horizon must be positive");
    }
    if (plan.mtbf_s < 0.0 || plan.mttr_s < 0.0) {
        return Status::InvalidArgument("MTBF/MTTR must be >= 0");
    }
    if (plan.mtbf_s > 0.0 && plan.mttr_s <= 0.0) {
        return Status::InvalidArgument(
            "MTBF failure process needs a positive MTTR");
    }
    if (plan.transient_failure_prob < 0.0 ||
        plan.transient_failure_prob > 1.0) {
        return Status::InvalidArgument(
            "transient failure probability must be in [0, 1]");
    }
    for (const auto& f : plan.scripted) {
        if (f.device < 0 || f.device >= num_devices) {
            return Status::InvalidArgument(StrFormat(
                "scripted fault device %d outside [0, %d)", f.device,
                num_devices));
        }
        if (f.fail_at_s < 0.0) {
            return Status::InvalidArgument(
                "scripted fail time must be >= 0");
        }
        if (f.repair_at_s >= 0.0 && f.repair_at_s <= f.fail_at_s) {
            return Status::InvalidArgument(
                "scripted repair must come after the failure");
        }
    }
    for (const auto& s : plan.slowdowns) {
        if (s.device < 0 || s.device >= num_devices) {
            return Status::InvalidArgument(StrFormat(
                "slowdown device %d outside [0, %d)", s.device,
                num_devices));
        }
        if (s.start_s < 0.0 || s.end_s <= s.start_s) {
            return Status::InvalidArgument("bad slowdown interval");
        }
        if (s.speed_factor <= 0.0 || s.speed_factor > 1.0) {
            return Status::InvalidArgument(
                "slowdown speed factor must be in (0, 1]");
        }
    }

    FaultTimeline timeline;
    timeline.down_.resize(static_cast<size_t>(num_devices));
    timeline.slow_.resize(static_cast<size_t>(num_devices));

    std::vector<std::vector<DownInterval>> raw(
        static_cast<size_t>(num_devices));
    for (const auto& f : plan.scripted) {
        raw[static_cast<size_t>(f.device)].push_back(
            {f.fail_at_s, f.repair_at_s < 0.0 ? kInf : f.repair_at_s});
    }
    if (plan.mtbf_s > 0.0) {
        // One independent renewal process per device, each on its own
        // substream so adding a device never perturbs the others.
        for (int d = 0; d < num_devices; ++d) {
            Rng rng = Substream(plan.seed, "faults.timeline",
                                static_cast<uint64_t>(d));
            double t = rng.NextExponential(1.0 / plan.mtbf_s);
            while (t < horizon_s) {
                const double repair =
                    t + rng.NextExponential(1.0 / plan.mttr_s);
                raw[static_cast<size_t>(d)].push_back({t, repair});
                t = repair + rng.NextExponential(1.0 / plan.mtbf_s);
            }
        }
    }
    for (int d = 0; d < num_devices; ++d) {
        timeline.down_[static_cast<size_t>(d)] =
            MergeIntervals(std::move(raw[static_cast<size_t>(d)]));
    }
    for (const auto& s : plan.slowdowns) {
        timeline.slow_[static_cast<size_t>(s.device)].push_back(s);
    }
    for (auto& per_device : timeline.slow_) {
        std::sort(per_device.begin(), per_device.end(),
                  [](const SlowdownEvent& a, const SlowdownEvent& b) {
                      return a.start_s < b.start_s;
                  });
    }
    return timeline;
}

double
SteadyStateAvailability(const FaultPlan& plan)
{
    if (plan.mtbf_s <= 0.0) return 1.0;
    return plan.mtbf_s / (plan.mtbf_s + plan.mttr_s);
}

}  // namespace t4i
