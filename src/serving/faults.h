/**
 * @file
 * Deterministic fault injection for the serving simulator.
 *
 * TPUv4i is a deployed product: the fleet keeps serving while devices
 * fail, get repaired, and run slow (the TPU v4 paper routes traffic
 * around failed hardware; the v2..Ironwood retrospective makes
 * resilience a first-class design axis). A FaultPlan describes what
 * goes wrong in a cell — scripted fail/repair events, random
 * MTBF/MTTR failure processes, transient batch errors, and straggler
 * slowdowns — and BuildFaultTimeline expands it into a per-device
 * schedule of down/slow intervals that the serving loop (and the
 * fleet planner's availability math) consults. Everything is seeded:
 * the same plan always replays the same failures.
 */
#ifndef T4I_SERVING_FAULTS_H
#define T4I_SERVING_FAULTS_H

#include <cstdint>
#include <vector>

#include "src/common/status.h"

namespace t4i {

/** One scripted device failure (deterministic fail/repair times). */
struct ScriptedFault {
    int device = 0;
    double fail_at_s = 0.0;
    /** Repair instant; negative means the device never comes back. */
    double repair_at_s = -1.0;
};

/** A device running below full speed for a while (straggler). */
struct SlowdownEvent {
    int device = 0;
    double start_s = 0.0;
    double end_s = 0.0;
    /** Fraction of full speed in (0, 1]; batch exec time divides by it. */
    double speed_factor = 0.5;
};

/**
 * Everything that can go wrong in one serving run. Default-constructed
 * plans inject nothing (the simulator behaves exactly as without a
 * fault layer).
 */
struct FaultPlan {
    /** Mean time between failures per device (s); 0 disables the
     *  random failure process. Up/down times are exponential draws. */
    double mtbf_s = 0.0;
    /** Mean time to repair (s); required > 0 when mtbf_s > 0. */
    double mttr_s = 0.0;
    /** Probability a dispatched batch fails and must be re-executed. */
    double transient_failure_prob = 0.0;
    std::vector<ScriptedFault> scripted;
    std::vector<SlowdownEvent> slowdowns;
    /** Seeds the failure process and transient draws; independent of
     *  the serving simulator's arrival seed. */
    uint64_t seed = 0x6661756c74ULL;  // "fault"

    /** True when any fault source is configured. */
    bool enabled() const
    {
        return mtbf_s > 0.0 || transient_failure_prob > 0.0 ||
               !scripted.empty() || !slowdowns.empty();
    }
};

/** Closed-open interval during which a device cannot run batches. */
struct DownInterval {
    double start_s = 0.0;
    /** Infinity when the device is never repaired. */
    double end_s = 0.0;
};

/**
 * Expanded per-device fault schedule over [0, horizon_s): sorted,
 * disjoint down intervals (scripted events merged with MTBF/MTTR
 * draws) plus sorted slowdown windows.
 */
class FaultTimeline {
  public:
    /** True when @p device is down at time @p t. */
    bool IsDown(int device, double t) const;

    /**
     * Earliest time >= @p t the device is up; +infinity when it is
     * down forever from @p t on.
     */
    double NextUp(int device, double t) const;

    /**
     * Start of the first down interval at or after @p t (the device is
     * up at @p t); +infinity when no further failure is scheduled.
     */
    double NextFailure(int device, double t) const;

    /** Speed factor in effect at @p t (1.0 outside slowdowns). */
    double SpeedFactor(int device, double t) const;

    /** Fraction of [0, until_s) the device is up. */
    double UpFraction(int device, double until_s) const;

    /** Mean UpFraction across devices — the cell availability gauge. */
    double Availability(double until_s) const;

    int num_devices() const
    {
        return static_cast<int>(down_.size());
    }
    const std::vector<DownInterval>& down(int device) const
    {
        return down_[static_cast<size_t>(device)];
    }
    const std::vector<SlowdownEvent>& slowdowns(int device) const
    {
        return slow_[static_cast<size_t>(device)];
    }

  private:
    friend StatusOr<FaultTimeline> BuildFaultTimeline(const FaultPlan&,
                                                      int, double);
    std::vector<std::vector<DownInterval>> down_;
    std::vector<std::vector<SlowdownEvent>> slow_;
};

/**
 * Validates @p plan and expands it for a @p num_devices cell. Random
 * failures are drawn out to @p horizon_s (pick a horizon comfortably
 * past the expected drain time); scripted events apply regardless of
 * horizon. Deterministic in plan.seed.
 */
StatusOr<FaultTimeline> BuildFaultTimeline(const FaultPlan& plan,
                                           int num_devices,
                                           double horizon_s);

/**
 * Long-run fraction of time a device is up under the plan's MTBF/MTTR
 * process: mtbf / (mtbf + mttr), or 1.0 when the random process is
 * disabled. Scripted events and slowdowns do not contribute (they are
 * finite incidents, not a steady-state process).
 */
double SteadyStateAvailability(const FaultPlan& plan);

}  // namespace t4i

#endif  // T4I_SERVING_FAULTS_H
