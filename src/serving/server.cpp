#include "src/serving/server.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/strings.h"

namespace t4i {
namespace {

constexpr double kUsPerSecond = 1e6;
constexpr double kInf = std::numeric_limits<double>::infinity();

struct Request {
    double arrival_s;
    /** Telemetry flow id (arrival -> batch -> completion); -1 = none. */
    int64_t flow_id = -1;
    /** Retry backoff gate: not dispatchable before this time. */
    double not_before_s = 0.0;
    /** Failed executions so far (bounded by max_retries). */
    int attempts = 0;
    /** Span context (0 = untraced request). */
    uint64_t trace_id = 0;
    obs::SpanId root_span = 0;
    /** The currently-open queue-wait child span. */
    obs::SpanId queue_span = 0;
};

struct TenantState {
    std::deque<Request> queue;
    double next_arrival_s = 0.0;
    PercentileTracker latencies;
    /** Observed device times of winning batches; the hedge baseline. */
    PercentileTracker device_times;
    RunningStat batches;
    int64_t arrived = 0;
    int64_t completed = 0;
    int64_t dropped = 0;
    int64_t shed = 0;
    int64_t retried = 0;
    int64_t hedges = 0;
    int64_t hedge_wins = 0;
    int64_t slo_misses = 0;
    int64_t max_queue_depth = 0;

    // Telemetry plumbing (null when no sink is configured).
    obs::HistogramMetric* latency_hist = nullptr;
    obs::HistogramMetric* batch_hist = nullptr;
    obs::Counter* completed_counter = nullptr;
    obs::Counter* slo_miss_counter = nullptr;
    obs::Counter* retry_counter = nullptr;
    obs::Counter* shed_counter = nullptr;
    obs::Counter* drop_counter = nullptr;
    obs::Counter* hedge_win_counter = nullptr;
    /** Live SLO burn-rate gauge (updated per completed batch). */
    obs::Gauge* burn_gauge = nullptr;
    /** Aligned with ServingTelemetry::batch_attribution. */
    std::vector<obs::HistogramMetric*> attribution_hists;
    int64_t flows_started = 0;
    int64_t last_emitted_depth = -1;
    int64_t traces_started = 0;
    int64_t last_recorder_depth = -1;
};

struct DeviceState {
    double device_free_s = 0.0;
    double host_free_s = 0.0;
    double busy_s = 0.0;
    double host_busy_s = 0.0;
    int last_tenant = -1;
};

Status
ValidateServingInputs(const std::vector<TenantConfig>& tenants,
                      int num_devices, double duration_s,
                      const ReliabilityConfig& reliability)
{
    if (tenants.empty()) {
        return Status::InvalidArgument("no tenants");
    }
    if (num_devices < 1) {
        return Status::InvalidArgument(StrFormat(
            "num_devices must be >= 1, got %d", num_devices));
    }
    if (duration_s <= 0.0) {
        return Status::InvalidArgument("duration must be positive");
    }
    for (const auto& t : tenants) {
        if (!t.latency_s) {
            return Status::InvalidArgument(
                "tenant '" + t.name + "' has no latency model");
        }
        if (t.max_batch < 1) {
            return Status::InvalidArgument(
                "tenant '" + t.name + "': max_batch must be >= 1");
        }
        if (t.arrival_rate <= 0.0) {
            return Status::InvalidArgument(
                "tenant '" + t.name + "': arrival_rate must be positive");
        }
        if (t.slo_s < 0.0 || t.deadline_s < 0.0 || t.batch_wait_s < 0.0 ||
            t.host_overhead_s < 0.0 || t.switch_penalty_s < 0.0) {
            return Status::InvalidArgument(
                "tenant '" + t.name + "': durations must be >= 0");
        }
        if (t.max_queue < 0) {
            return Status::InvalidArgument(
                "tenant '" + t.name + "': max_queue must be >= 0");
        }
        if (t.max_retries < 0 || t.retry_backoff_s < 0.0) {
            return Status::InvalidArgument(
                "tenant '" + t.name + "': retry policy must be >= 0");
        }
    }
    if (reliability.hedge_quantile <= 0.0 ||
        reliability.hedge_quantile >= 1.0) {
        return Status::InvalidArgument(
            "hedge_quantile must be in (0, 1)");
    }
    if (reliability.max_cell_queue < 0) {
        return Status::InvalidArgument("max_cell_queue must be >= 0");
    }
    return Status::Ok();
}

}  // namespace

StatusOr<ServingResult>
RunServingCell(const std::vector<TenantConfig>& tenants, int num_devices,
               double duration_s, uint64_t seed,
               const ServingTelemetry& telemetry,
               const ReliabilityConfig& reliability)
{
    T4I_RETURN_IF_ERROR(ValidateServingInputs(tenants, num_devices,
                                              duration_s, reliability));

    // Expand the fault plan out past any plausible drain time; random
    // failures beyond the horizon simply stop occurring.
    const FaultPlan& plan = reliability.faults;
    double horizon_s =
        duration_s * 4.0 + 10.0 * (plan.mtbf_s + plan.mttr_s) + 1.0;
    for (const auto& f : plan.scripted) {
        if (f.repair_at_s > 0.0) {
            horizon_s = std::max(horizon_s, f.repair_at_s + duration_s);
        }
    }
    auto timeline_or = BuildFaultTimeline(plan, num_devices, horizon_s);
    T4I_RETURN_IF_ERROR(timeline_or.status());
    const FaultTimeline& timeline = timeline_or.value();
    const bool faults_active = plan.enabled();
    // Transient batch errors draw from their own stream so injecting
    // faults never perturbs the arrival process.
    Rng fault_rng(plan.seed ^ 0x7472616e73ULL);

    Rng rng(seed);
    // Draws the next arrival after `t` — homogeneous Poisson, or
    // thinned non-homogeneous Poisson when a rate_multiplier is set.
    auto next_arrival = [&rng](const TenantConfig& cfg, double t) {
        if (!cfg.rate_multiplier) {
            return t + rng.NextExponential(cfg.arrival_rate);
        }
        const double peak =
            cfg.arrival_rate * std::max(cfg.peak_rate_multiplier, 1e-9);
        for (int guard = 0; guard < 100000; ++guard) {
            t += rng.NextExponential(peak);
            const double accept =
                cfg.arrival_rate * cfg.rate_multiplier(t) / peak;
            if (rng.NextBool(std::clamp(accept, 0.0, 1.0))) return t;
        }
        return t;  // pathological multiplier; degrade gracefully
    };

    std::vector<TenantState> state(tenants.size());
    for (size_t i = 0; i < tenants.size(); ++i) {
        state[i].next_arrival_s = next_arrival(tenants[i], 0.0);
    }
    std::vector<DeviceState> devices(static_cast<size_t>(num_devices));

    // Telemetry setup: per-tenant instruments and named trace tracks.
    // Device batches render on tids [0, num_devices); each tenant's
    // arrival/queue activity on tid num_devices + tenant index.
    obs::TraceBuilder* trace = telemetry.trace;
    const int pid = telemetry.trace_pid;
    auto queue_tid = [&](size_t i) {
        return num_devices + static_cast<int>(i);
    };
    if (trace != nullptr) {
        trace->SetProcessName(pid, "serving cell");
        for (int d = 0; d < num_devices; ++d) {
            trace->SetThreadName(pid, d, StrFormat("device %d", d));
        }
        for (size_t i = 0; i < tenants.size(); ++i) {
            trace->SetThreadName(pid, queue_tid(i),
                                 "queue: " + tenants[i].name);
        }
        if (faults_active) {
            // Fault instants on the device tracks (capped per device
            // so high failure rates cannot bloat the trace).
            for (int d = 0; d < num_devices; ++d) {
                int emitted = 0;
                for (const auto& iv : timeline.down(d)) {
                    if (emitted >= 256) break;
                    trace->AddInstant(pid, d, "fault: down",
                                      iv.start_s * kUsPerSecond);
                    if (iv.end_s < kInf) {
                        trace->AddInstant(pid, d, "fault: up",
                                          iv.end_s * kUsPerSecond);
                    }
                    ++emitted;
                }
                for (const auto& s : timeline.slowdowns(d)) {
                    trace->AddInstant(pid, d, "fault: slow",
                                      s.start_s * kUsPerSecond);
                    trace->AddInstant(pid, d, "fault: normal",
                                      s.end_s * kUsPerSecond);
                }
            }
        }
    }
    if (telemetry.registry != nullptr) {
        for (size_t i = 0; i < tenants.size(); ++i) {
            const obs::Labels labels = {{"tenant", tenants[i].name}};
            TenantState& ts = state[i];
            obs::MetricsRegistry& reg = *telemetry.registry;
            ts.latency_hist =
                reg.GetHistogram("serving.latency_seconds", labels);
            ts.batch_hist =
                reg.GetHistogram("serving.batch_size", labels);
            ts.completed_counter =
                reg.GetCounter("serving.completed", labels);
            ts.slo_miss_counter =
                reg.GetCounter("serving.slo_miss", labels);
            // Reliability counters exist (at zero) even in fault-free
            // runs so exports and the CI schema stay stable.
            ts.retry_counter = reg.GetCounter("serving.retries", labels);
            ts.shed_counter = reg.GetCounter("serving.shed", labels);
            ts.drop_counter =
                reg.GetCounter("serving.deadline_drops", labels);
            ts.hedge_win_counter =
                reg.GetCounter("serving.hedge_wins", labels);
            if (telemetry.slo_error_budget > 0.0) {
                ts.burn_gauge =
                    reg.GetGauge("serving.slo_burn_rate", labels);
            }
            for (const AttributionShare& share :
                 telemetry.batch_attribution) {
                ts.attribution_hists.push_back(reg.GetHistogram(
                    "serving.attribution.seconds",
                    {{"tenant", tenants[i].name},
                     {"component", share.component}}));
            }
        }
    }
    // Request-scoped observability (all optional; null sinks leave
    // the run bit-identical): span collector, black-box recorder, and
    // the alert engine (which needs the registry to read from).
    obs::SpanCollector* spans = telemetry.spans;
    obs::FlightRecorder* recorder = telemetry.recorder;
    obs::AlertEngine* alerts =
        (telemetry.alerts != nullptr && telemetry.registry != nullptr)
            ? telemetry.alerts
            : nullptr;
    double next_alert_eval = 0.0;
    if (recorder != nullptr) {
        if (telemetry.registry != nullptr) {
            recorder->BindRegistry(telemetry.registry);
        }
        if (spans != nullptr) {
            recorder->BindSpans(spans);
            spans->BindRecorder(recorder);
        }
        // Per-device fault state for black-box dumps; cleared before
        // return because the provider captures loop-local state.
        recorder->SetDeviceStateProvider([&timeline, num_devices,
                                          faults_active](double t) {
            std::string out = "[";
            for (int d = 0; d < num_devices; ++d) {
                if (d > 0) out += ",";
                const bool down =
                    faults_active && timeline.IsDown(d, t);
                const double speed =
                    faults_active ? timeline.SpeedFactor(d, t) : 1.0;
                out += StrFormat(
                    "{\"device\":%d,\"down\":%s,"
                    "\"speed_factor\":%.6g}",
                    d, down ? "true" : "false", speed);
            }
            return out + "]";
        });
        if (faults_active) {
            // Scheduled fault transitions land in the ring up front
            // (capped per device) so a dump shows what was coming.
            for (int d = 0; d < num_devices; ++d) {
                int emitted = 0;
                for (const auto& iv : timeline.down(d)) {
                    if (emitted >= 64) break;
                    recorder->Record(
                        obs::FlightEventKind::kFault, iv.start_s,
                        StrFormat("device %d down (scheduled)", d));
                    if (iv.end_s < kInf) {
                        recorder->Record(
                            obs::FlightEventKind::kFault, iv.end_s,
                            StrFormat("device %d up (scheduled)", d));
                    }
                    ++emitted;
                }
            }
        }
    }
    struct ProviderReset {
        obs::FlightRecorder* recorder;
        ~ProviderReset()
        {
            if (recorder != nullptr) {
                recorder->SetDeviceStateProvider(nullptr);
            }
        }
    } provider_reset{recorder};

    auto emit_queue_depth = [&](size_t i, double t) {
        TenantState& ts = state[i];
        const auto depth = static_cast<int64_t>(ts.queue.size());
        ts.max_queue_depth = std::max(ts.max_queue_depth, depth);
        if (trace != nullptr && depth != ts.last_emitted_depth) {
            trace->AddCounter(pid,
                              "queue depth: " + tenants[i].name,
                              t * kUsPerSecond,
                              static_cast<double>(depth));
            ts.last_emitted_depth = depth;
        }
        if (recorder != nullptr && depth != ts.last_recorder_depth) {
            recorder->Record(obs::FlightEventKind::kQueueDepth, t,
                             "queue: " + tenants[i].name,
                             static_cast<double>(depth));
            ts.last_recorder_depth = depth;
        }
    };
    auto total_queued = [&]() {
        int64_t total = 0;
        for (const auto& ts : state) {
            total += static_cast<int64_t>(ts.queue.size());
        }
        return total;
    };

    double now = 0.0;
    double switch_overhead = 0.0;
    uint64_t next_flow_id = 1;
    size_t rr_cursor = 0;  // round-robin fairness within a priority

    while (true) {
        // Deliver all arrivals up to `now`.
        bool any_pending_arrivals = false;
        for (size_t i = 0; i < tenants.size(); ++i) {
            const TenantConfig& cfg = tenants[i];
            TenantState& ts = state[i];
            while (ts.next_arrival_s <= now &&
                   ts.next_arrival_s < duration_s) {
                Request req{ts.next_arrival_s, -1};
                ++ts.arrived;
                // Admission control: per-tenant bound first, then the
                // cell-wide cap (evict lowest-priority backlog first).
                bool accepted = true;
                if (cfg.max_queue > 0 &&
                    static_cast<int64_t>(ts.queue.size()) >=
                        cfg.max_queue) {
                    accepted = false;
                } else if (reliability.max_cell_queue > 0 &&
                           total_queued() >=
                               reliability.max_cell_queue) {
                    // Find the lowest-priority tenant with a backlog
                    // (largest queue breaks ties).
                    size_t victim = i;
                    bool have_victim = false;
                    for (size_t j = 0; j < tenants.size(); ++j) {
                        if (state[j].queue.empty()) continue;
                        if (!have_victim ||
                            tenants[j].priority <
                                tenants[victim].priority ||
                            (tenants[j].priority ==
                                 tenants[victim].priority &&
                             state[j].queue.size() >
                                 state[victim].queue.size())) {
                            victim = j;
                            have_victim = true;
                        }
                    }
                    if (have_victim &&
                        tenants[victim].priority < cfg.priority) {
                        const Request& evicted =
                            state[victim].queue.back();
                        if (spans != nullptr &&
                            evicted.root_span != 0) {
                            spans->SetAttribute(evicted.root_span,
                                                "outcome", "shed");
                            spans->EndSpan(evicted.queue_span, now);
                            spans->EndSpan(evicted.root_span, now);
                        }
                        if (recorder != nullptr) {
                            recorder->Record(
                                obs::FlightEventKind::kDrop, now,
                                "evicted: " + tenants[victim].name);
                        }
                        state[victim].queue.pop_back();
                        ++state[victim].shed;
                        if (state[victim].shed_counter != nullptr) {
                            state[victim].shed_counter->Increment();
                        }
                        emit_queue_depth(victim, now);
                    } else {
                        accepted = false;
                    }
                }
                if (accepted) {
                    if (trace != nullptr &&
                        ts.flows_started <
                            telemetry.max_flows_per_tenant) {
                        req.flow_id =
                            static_cast<int64_t>(next_flow_id++);
                        ++ts.flows_started;
                        trace->AddInstant(pid, queue_tid(i), "arrive",
                                          req.arrival_s * kUsPerSecond);
                        trace->AddFlowStart(
                            pid, queue_tid(i), "request",
                            static_cast<uint64_t>(req.flow_id),
                            req.arrival_s * kUsPerSecond);
                    }
                    if (spans != nullptr &&
                        ts.traces_started <
                            telemetry.max_traced_requests_per_tenant) {
                        ++ts.traces_started;
                        req.trace_id = spans->NewTrace();
                        req.root_span = spans->StartSpan(
                            req.trace_id, 0, "request",
                            req.arrival_s);
                        spans->SetAttribute(req.root_span, "tenant",
                                            cfg.name);
                        req.queue_span = spans->StartSpan(
                            req.trace_id, req.root_span, "queue",
                            req.arrival_s);
                    }
                    ts.queue.push_back(req);
                } else {
                    ++ts.shed;
                    if (ts.shed_counter != nullptr) {
                        ts.shed_counter->Increment();
                    }
                    if (trace != nullptr) {
                        trace->AddInstant(pid, queue_tid(i), "shed",
                                          req.arrival_s * kUsPerSecond);
                    }
                    if (recorder != nullptr) {
                        recorder->Record(
                            obs::FlightEventKind::kDrop,
                            req.arrival_s, "shed: " + cfg.name);
                    }
                }
                ts.next_arrival_s =
                    next_arrival(cfg, ts.next_arrival_s);
            }
            // Deadline sweep: queued requests older than the deadline
            // are dropped (distinct from SLO misses, which complete).
            if (cfg.deadline_s > 0.0) {
                while (!ts.queue.empty() &&
                       ts.queue.front().arrival_s + cfg.deadline_s <=
                           now) {
                    const Request& doomed = ts.queue.front();
                    if (spans != nullptr && doomed.root_span != 0) {
                        spans->SetAttribute(doomed.root_span,
                                            "outcome",
                                            "deadline_drop");
                        spans->EndSpan(doomed.queue_span, now);
                        spans->EndSpan(doomed.root_span, now);
                    }
                    if (recorder != nullptr) {
                        recorder->OnDeadlineDrop(
                            now, "deadline drop: " + cfg.name);
                    }
                    ts.queue.pop_front();
                    ++ts.dropped;
                    if (ts.drop_counter != nullptr) {
                        ts.drop_counter->Increment();
                    }
                    if (trace != nullptr) {
                        trace->AddInstant(pid, queue_tid(i),
                                          "deadline drop",
                                          now * kUsPerSecond);
                    }
                }
            }
            emit_queue_depth(i, now);
            if (ts.next_arrival_s < duration_s) {
                any_pending_arrivals = true;
            }
        }

        // Periodic alert evaluation in sim time: histograms and
        // counters update live, so for-duration rules can arm, fire,
        // and (via the recorder) trigger a black-box dump mid-run.
        if (alerts != nullptr && now >= next_alert_eval) {
            alerts->Evaluate(*telemetry.registry, now);
            next_alert_eval =
                now + std::max(telemetry.alert_eval_interval_s, 1e-6);
        }

        // A tenant is dispatchable when its batch is full, its oldest
        // request has waited out the batching patience, or no more
        // arrivals are coming. Retry backoff gates the queue head.
        auto dispatchable = [&](size_t i) {
            if (state[i].queue.empty()) return false;
            if (state[i].queue.front().not_before_s > now) return false;
            if (tenants[i].batch_wait_s <= 0.0) return true;
            if (static_cast<int64_t>(state[i].queue.size()) >=
                tenants[i].max_batch) {
                return true;
            }
            if (state[i].next_arrival_s >= duration_s) return true;
            return now - state[i].queue.front().arrival_s >=
                   tenants[i].batch_wait_s;
        };

        // Pick the highest-priority dispatchable tenant; round-robin
        // within the winning priority level.
        int best_priority = 0;
        bool found = false;
        for (size_t i = 0; i < tenants.size(); ++i) {
            if (!dispatchable(i)) continue;
            if (!found || tenants[i].priority > best_priority) {
                best_priority = tenants[i].priority;
                found = true;
            }
        }
        int chosen = -1;
        if (found) {
            for (size_t k = 0; k < tenants.size(); ++k) {
                const size_t idx = (rr_cursor + k) % tenants.size();
                if (dispatchable(idx) &&
                    tenants[idx].priority == best_priority) {
                    chosen = static_cast<int>(idx);
                    break;
                }
            }
        }

        if (chosen < 0) {
            // Advance to the next event: an arrival, a batching
            // deadline expiring, a retry backoff elapsing, or a
            // request deadline expiring.
            double next = 1e300;
            bool have_event = false;
            for (size_t i = 0; i < tenants.size(); ++i) {
                if (state[i].next_arrival_s < duration_s) {
                    next = std::min(next, state[i].next_arrival_s);
                    have_event = true;
                }
                if (!state[i].queue.empty()) {
                    const Request& front = state[i].queue.front();
                    // A retry backoff gates dispatch, so the patience
                    // event cannot fire before it (clamping keeps the
                    // loop advancing instead of re-visiting a stale
                    // patience instant forever).
                    next = std::min(
                        next,
                        std::max(front.arrival_s +
                                     tenants[i].batch_wait_s,
                                 front.not_before_s));
                    if (tenants[i].deadline_s > 0.0) {
                        next = std::min(next,
                                        front.arrival_s +
                                            tenants[i].deadline_s);
                    }
                    have_event = true;
                }
            }
            if (!have_event && !any_pending_arrivals) break;
            if (!have_event) break;
            now = std::max(now + 1e-12, next);
            continue;
        }
        rr_cursor = static_cast<size_t>(chosen) + 1;

        TenantState& ts = state[static_cast<size_t>(chosen)];
        const TenantConfig& cfg = tenants[static_cast<size_t>(chosen)];

        // Dead cell: every device is permanently down from here on —
        // drop the backlog (and, next iterations, future arrivals) so
        // the loop terminates instead of queueing forever.
        if (faults_active) {
            double earliest_up = kInf;
            for (int d = 0; d < num_devices; ++d) {
                earliest_up = std::min(
                    earliest_up,
                    timeline.NextUp(
                        d, std::max(now, devices[static_cast<size_t>(d)]
                                             .device_free_s)));
            }
            if (earliest_up == kInf) {
                if (recorder != nullptr) {
                    recorder->OnFault(now, "cell dead: every device "
                                           "down permanently");
                }
                for (size_t i = 0; i < tenants.size(); ++i) {
                    TenantState& dead = state[i];
                    while (!dead.queue.empty()) {
                        const Request& doomed = dead.queue.front();
                        if (spans != nullptr &&
                            doomed.root_span != 0) {
                            spans->SetAttribute(doomed.root_span,
                                                "outcome",
                                                "dropped_dead_cell");
                            spans->EndSpan(doomed.queue_span, now);
                            spans->EndSpan(doomed.root_span, now);
                        }
                        dead.queue.pop_front();
                        ++dead.dropped;
                        if (dead.drop_counter != nullptr) {
                            dead.drop_counter->Increment();
                        }
                    }
                    emit_queue_depth(i, now);
                }
                continue;
            }
        }

        // Dispatch to the earliest-usable device (earliest-free when
        // no faults are configured — bit-identical to the fault-free
        // simulator).
        int dev_index = 0;
        {
            double best_key = kInf;
            for (int d = 0; d < num_devices; ++d) {
                double key =
                    devices[static_cast<size_t>(d)].device_free_s;
                if (faults_active) {
                    key = timeline.NextUp(d, std::max(key, now));
                }
                if (key < best_key) {
                    best_key = key;
                    dev_index = d;
                }
            }
        }
        DeviceState* device = &devices[static_cast<size_t>(dev_index)];

        const auto batch = static_cast<int64_t>(std::min<size_t>(
            ts.queue.size(), static_cast<size_t>(cfg.max_batch)));
        // Pull the batch's requests out now; they either complete or
        // are re-enqueued / dropped on failure.
        std::vector<Request> in_flight;
        in_flight.reserve(static_cast<size_t>(batch));
        for (int64_t j = 0; j < batch; ++j) {
            in_flight.push_back(ts.queue.front());
            ts.queue.pop_front();
        }

        // Two-stage pipeline: the host prepares this batch (possibly
        // while the device still runs the previous one), then the
        // device executes.
        const double host_start = std::max(now, device->host_free_s);
        const double host_done = host_start + cfg.host_overhead_s;
        device->host_free_s = host_done;
        device->host_busy_s += cfg.host_overhead_s;

        double device_start =
            std::max(host_done, device->device_free_s);
        if (faults_active) {
            device_start = timeline.NextUp(dev_index, device_start);
        }
        if (device->last_tenant != chosen &&
            cfg.switch_penalty_s > 0.0) {
            switch_overhead += cfg.switch_penalty_s;
            device_start += cfg.switch_penalty_s;
        }
        device->last_tenant = chosen;

        const double nominal_exec = cfg.latency_s(batch);
        double exec = nominal_exec;
        if (faults_active) {
            exec /= timeline.SpeedFactor(dev_index, device_start);
        }
        double finish = device_start + exec;
        bool primary_aborted = false;
        if (faults_active) {
            const double next_fail =
                timeline.NextFailure(dev_index, device_start);
            if (next_fail < finish) {
                // Device died mid-batch: the work is lost at the
                // failure instant.
                primary_aborted = true;
                finish = next_fail;
                if (recorder != nullptr) {
                    recorder->OnFault(
                        finish,
                        StrFormat("device %d failed mid-batch "
                                  "(tenant %s, batch %lld)",
                                  dev_index, cfg.name.c_str(),
                                  static_cast<long long>(batch)));
                }
            }
        }
        device->busy_s += finish - std::max(now, device->device_free_s);
        device->device_free_s = finish;

        // Hedged dispatch: if this copy is projected to run longer
        // than the hedge quantile of observed batch times (straggler)
        // or its device died mid-batch, re-issue on a second device
        // after the quantile-sized delay. The losing copy's work is
        // wasted but counted as busy — the real cost of hedging.
        bool hedged = false;
        bool hedge_aborted = false;
        int hedge_dev = -1;
        double hedge_start = kInf;
        double hedge_finish = kInf;
        if (reliability.hedge && num_devices > 1 &&
            ts.device_times.count() >= 16) {
            // Straggler = slow *relative to this batch's nominal time*
            // (an absolute-time quantile would flag every full-size
            // batch and hedge the cell into overload). The hedge
            // launches once the primary has overstayed the quantile
            // slowdown for its batch.
            const double threshold =
                nominal_exec * ts.device_times.Percentile(
                                   100.0 * reliability.hedge_quantile);
            if (primary_aborted || exec > threshold) {
                const double hedge_issue = device_start + threshold;
                double best_key = kInf;
                for (int d = 0; d < num_devices; ++d) {
                    if (d == dev_index) continue;
                    const double key = timeline.NextUp(
                        d, std::max(devices[static_cast<size_t>(d)]
                                        .device_free_s,
                                    hedge_issue));
                    if (key < best_key) {
                        best_key = key;
                        hedge_dev = d;
                    }
                }
                if (hedge_dev >= 0 && best_key < kInf) {
                    hedged = true;
                    ++ts.hedges;
                    DeviceState& hd =
                        devices[static_cast<size_t>(hedge_dev)];
                    hedge_start = best_key;
                    const double hedge_exec =
                        nominal_exec /
                        timeline.SpeedFactor(hedge_dev, hedge_start);
                    hedge_finish = hedge_start + hedge_exec;
                    const double hedge_fail =
                        timeline.NextFailure(hedge_dev, hedge_start);
                    if (hedge_fail < hedge_finish) {
                        hedge_aborted = true;
                        hedge_finish = hedge_fail;
                        if (recorder != nullptr) {
                            recorder->OnFault(
                                hedge_finish,
                                StrFormat("device %d failed "
                                          "mid-batch (hedge copy, "
                                          "tenant %s)",
                                          hedge_dev,
                                          cfg.name.c_str()));
                        }
                    }
                    hd.busy_s += hedge_finish - hedge_start;
                    hd.device_free_s = hedge_finish;
                    hd.last_tenant = chosen;
                }
            }
        }

        // Outcome: each copy that ran to completion may still fail
        // transiently; the earliest surviving copy wins the batch.
        auto copy_survives = [&](bool aborted) {
            if (aborted) return false;
            if (plan.transient_failure_prob > 0.0) {
                return !fault_rng.NextBool(plan.transient_failure_prob);
            }
            return true;
        };
        const bool primary_ok = copy_survives(primary_aborted);
        const bool hedge_ok = hedged && copy_survives(hedge_aborted);
        double completion = kInf;
        bool success = false;
        bool hedge_won = false;
        int win_dev = dev_index;
        double win_start = device_start;
        if (primary_ok) {
            completion = finish;
            success = true;
        }
        if (hedge_ok && hedge_finish < completion) {
            completion = hedge_finish;
            success = true;
            hedge_won = true;
            win_dev = hedge_dev;
            win_start = hedge_start;
        }
        if (hedge_won) {
            ++ts.hedge_wins;
            if (ts.hedge_win_counter != nullptr) {
                ts.hedge_win_counter->Increment();
            }
        }

        if (trace != nullptr) {
            trace->AddComplete(
                pid, dev_index, cfg.name, "batch",
                device_start * kUsPerSecond,
                (finish - device_start) * kUsPerSecond,
                StrFormat("{\"batch\":%lld,\"outcome\":\"%s\"}",
                          static_cast<long long>(batch),
                          primary_ok ? "ok" : "failed"));
            if (hedged) {
                trace->AddComplete(
                    pid, hedge_dev, cfg.name + " (hedge)", "batch",
                    hedge_start * kUsPerSecond,
                    (hedge_finish - hedge_start) * kUsPerSecond,
                    StrFormat("{\"batch\":%lld,\"win\":%d}",
                              static_cast<long long>(batch),
                              hedge_won ? 1 : 0));
            }
        }

        // Span recording: the queue wait ends at batch formation, a
        // "batch" child covers host staging + device wait, and every
        // dispatch copy becomes an "execute" child. The winning copy
        // gains engine-group sub-spans (split per batch_attribution);
        // the losing copy links to the winner. On success the root
        // closes at the completion instant, so root duration is
        // exactly the latency the simulator reports; with no retries
        // or hedges the three children tile the root exactly.
        if (spans != nullptr) {
            double frac_total = 0.0;
            for (const auto& share : telemetry.batch_attribution) {
                frac_total += share.fraction;
            }
            for (Request& req : in_flight) {
                if (req.root_span == 0) continue;
                spans->EndSpan(req.queue_span, now);
                req.queue_span = 0;
                const obs::SpanId form = spans->StartSpan(
                    req.trace_id, req.root_span, "batch", now);
                spans->SetAttribute(
                    form, "batch",
                    StrFormat("%lld", static_cast<long long>(batch)));
                spans->EndSpan(form, device_start);
                const obs::SpanId primary = spans->StartSpan(
                    req.trace_id, req.root_span, "execute",
                    device_start);
                spans->SetAttribute(primary, "device",
                                    StrFormat("%d", dev_index));
                spans->SetAttribute(primary, "attempt",
                                    StrFormat("%d", req.attempts));
                spans->SetAttribute(primary, "outcome",
                                    primary_aborted ? "aborted"
                                    : primary_ok    ? "ok"
                                              : "transient_error");
                spans->EndSpan(primary, finish);
                obs::SpanId hedge_span = 0;
                if (hedged) {
                    hedge_span = spans->StartSpan(
                        req.trace_id, req.root_span, "execute",
                        hedge_start);
                    spans->SetAttribute(hedge_span, "device",
                                        StrFormat("%d", hedge_dev));
                    spans->SetAttribute(hedge_span, "hedge", "1");
                    spans->SetAttribute(hedge_span, "outcome",
                                        hedge_aborted ? "aborted"
                                        : hedge_ok    ? "ok"
                                                 : "transient_error");
                    spans->EndSpan(hedge_span, hedge_finish);
                }
                if (!success) continue;
                const obs::SpanId winner =
                    hedge_won ? hedge_span : primary;
                if (hedged) {
                    spans->Link(hedge_won ? primary : hedge_span,
                                winner);
                    spans->SetAttribute(winner, "won", "1");
                }
                // Engine-group sub-spans partition the winning
                // execution; when the shares sum to 1 the last
                // segment snaps to the exact completion instant.
                const double dur = completion - win_start;
                double cursor = win_start;
                double cum = 0.0;
                for (size_t a = 0;
                     a < telemetry.batch_attribution.size(); ++a) {
                    const AttributionShare& share =
                        telemetry.batch_attribution[a];
                    cum += share.fraction;
                    double seg_end = win_start + dur * cum;
                    if (a + 1 == telemetry.batch_attribution.size() &&
                        std::abs(frac_total - 1.0) < 1e-9) {
                        seg_end = completion;
                    }
                    const obs::SpanId seg = spans->StartSpan(
                        req.trace_id, winner,
                        "execute/" + share.component, cursor);
                    spans->EndSpan(seg, seg_end);
                    cursor = seg_end;
                }
                const double latency = completion - req.arrival_s;
                spans->SetAttribute(req.root_span, "outcome",
                                    "completed");
                if (latency > cfg.slo_s) {
                    spans->SetAttribute(req.root_span, "slo_miss",
                                        "1");
                }
                spans->EndSpan(req.root_span, completion);
            }
        }

        if (success) {
            if (reliability.hedge && nominal_exec > 0.0) {
                ts.device_times.Add((completion - win_start) /
                                    nominal_exec);
            }
            // Split the winning copy's device time across the
            // attribution components so tenants can read a p95 of
            // "time spent in MXU" rather than just a p95 latency.
            for (size_t a = 0; a < ts.attribution_hists.size(); ++a) {
                ts.attribution_hists[a]->Observe(
                    (completion - win_start) *
                    telemetry.batch_attribution[a].fraction);
            }
            for (const Request& req : in_flight) {
                const double latency = completion - req.arrival_s;
                ts.latencies.Add(latency);
                ++ts.completed;
                if (latency > cfg.slo_s) ++ts.slo_misses;
                if (ts.latency_hist != nullptr) {
                    ts.latency_hist->Observe(latency);
                    ts.completed_counter->Increment();
                    if (latency > cfg.slo_s) {
                        ts.slo_miss_counter->Increment();
                    }
                }
                if (trace != nullptr && req.flow_id >= 0) {
                    // arrival (queue track) -> batch start (device
                    // track) -> completion, all one arrow.
                    trace->AddFlowStep(
                        pid, win_dev, "request",
                        static_cast<uint64_t>(req.flow_id),
                        win_start * kUsPerSecond);
                    trace->AddFlowEnd(
                        pid, win_dev, "request",
                        static_cast<uint64_t>(req.flow_id),
                        completion * kUsPerSecond);
                }
            }
            if (ts.burn_gauge != nullptr && ts.completed > 0) {
                ts.burn_gauge->Set(
                    static_cast<double>(ts.slo_misses) /
                    static_cast<double>(ts.completed) /
                    telemetry.slo_error_budget);
            }
        } else {
            // Batch failed on every copy: bounded retry with
            // exponential backoff, preserving arrival order at the
            // queue head; requests out of retries are dropped.
            ++ts.retried;
            if (ts.retry_counter != nullptr) {
                ts.retry_counter->Increment();
            }
            const double fail_known =
                hedged ? std::max(finish, hedge_finish) : finish;
            if (trace != nullptr) {
                trace->AddInstant(pid, dev_index, "batch failed",
                                  fail_known * kUsPerSecond);
            }
            for (auto it = in_flight.rbegin(); it != in_flight.rend();
                 ++it) {
                Request req = *it;
                if (req.attempts >= cfg.max_retries) {
                    ++ts.dropped;
                    if (ts.drop_counter != nullptr) {
                        ts.drop_counter->Increment();
                    }
                    if (spans != nullptr && req.root_span != 0) {
                        spans->SetAttribute(req.root_span, "outcome",
                                            "retries_exhausted");
                        spans->EndSpan(req.root_span, fail_known);
                    }
                    if (recorder != nullptr && req.root_span != 0) {
                        recorder->Record(
                            obs::FlightEventKind::kDrop, fail_known,
                            "retries exhausted: " + cfg.name, 0.0);
                    }
                    continue;
                }
                const int shift = std::min(req.attempts, 20);
                req.not_before_s =
                    fail_known +
                    cfg.retry_backoff_s *
                        static_cast<double>(int64_t{1} << shift);
                ++req.attempts;
                if (spans != nullptr && req.root_span != 0) {
                    // The request re-enters the queue: annotate the
                    // root and open a fresh queue-wait child covering
                    // the backoff plus the renewed wait.
                    spans->AddEvent(
                        req.root_span,
                        StrFormat("retry %d scheduled", req.attempts),
                        fail_known);
                    req.queue_span = spans->StartSpan(
                        req.trace_id, req.root_span, "queue",
                        fail_known);
                    spans->SetAttribute(
                        req.queue_span, "retry",
                        StrFormat("%d", req.attempts));
                }
                ts.queue.push_front(req);
            }
        }
        ts.batches.Add(static_cast<double>(batch));
        if (ts.batch_hist != nullptr) {
            ts.batch_hist->Observe(static_cast<double>(batch));
        }
        emit_queue_depth(static_cast<size_t>(chosen), now);

        // Advance to the next batch-formation point: the host stage
        // leads the device by the host overhead so the two-stage
        // pipeline stays full (with zero host overhead this reduces to
        // "wait until a device frees").
        double max_host = 0.0;
        for (const auto& t : tenants) {
            max_host = std::max(max_host, t.host_overhead_s);
        }
        double candidate = 1e300;
        for (size_t d = 0; d < devices.size(); ++d) {
            double usable = std::max(devices[d].host_free_s,
                                     devices[d].device_free_s - max_host);
            if (faults_active) {
                // A down device's stale free-time must not defeat the
                // backpressure throttle (it would dispatch degenerate
                // batches the instant they arrive); wait for the next
                // instant the device can actually take work.
                usable =
                    timeline.NextUp(static_cast<int>(d), usable);
            }
            candidate = std::min(candidate, usable);
        }
        if (candidate < 1e300) now = std::max(now, candidate);
    }

    ServingResult result;
    double last_finish = duration_s;
    double busy_sum = 0.0;
    double host_sum = 0.0;
    for (const auto& d : devices) {
        last_finish = std::max(last_finish, d.device_free_s);
        busy_sum += d.busy_s;
        host_sum += d.host_busy_s;
    }
    result.duration_s = last_finish;
    result.device_busy_fraction =
        busy_sum / (result.duration_s * num_devices);
    result.host_busy_fraction =
        host_sum / (result.duration_s * num_devices);
    result.switch_overhead_fraction =
        switch_overhead / (result.duration_s * num_devices);
    result.availability =
        faults_active ? timeline.Availability(result.duration_s) : 1.0;
    for (size_t i = 0; i < tenants.size(); ++i) {
        TenantStats s;
        s.name = tenants[i].name;
        s.arrived = state[i].arrived;
        s.completed = state[i].completed;
        s.dropped = state[i].dropped;
        s.shed = state[i].shed;
        s.retried = state[i].retried;
        s.hedges = state[i].hedges;
        s.hedge_wins = state[i].hedge_wins;
        s.mean_latency_s = state[i].latencies.Mean();
        s.p50_latency_s = state[i].latencies.Percentile(50.0);
        s.p95_latency_s = state[i].latencies.Percentile(95.0);
        s.p99_latency_s = state[i].latencies.Percentile(99.0);
        s.slo_misses = state[i].slo_misses;
        s.slo_miss_fraction =
            state[i].completed > 0
                ? static_cast<double>(state[i].slo_misses) /
                      static_cast<double>(state[i].completed)
                : 0.0;
        s.throughput_rps =
            static_cast<double>(state[i].completed) / result.duration_s;
        s.goodput_rps =
            static_cast<double>(state[i].completed -
                                state[i].slo_misses) /
            result.duration_s;
        s.mean_batch = state[i].batches.mean();
        s.max_queue_depth = state[i].max_queue_depth;
        result.tenants.push_back(std::move(s));
    }

    if (telemetry.registry != nullptr) {
        obs::MetricsRegistry& reg = *telemetry.registry;
        reg.GetGauge("serving.device_busy_fraction")
            ->Set(result.device_busy_fraction);
        reg.GetGauge("serving.host_busy_fraction")
            ->Set(result.host_busy_fraction);
        reg.GetGauge("serving.switch_overhead_fraction")
            ->Set(result.switch_overhead_fraction);
        reg.GetGauge("serving.duration_seconds")
            ->Set(result.duration_s);
        reg.GetGauge("serving.availability")->Set(result.availability);
        for (const auto& tenant : result.tenants) {
            const obs::Labels labels = {{"tenant", tenant.name}};
            reg.GetGauge("serving.slo_miss_fraction", labels)
                ->Set(tenant.slo_miss_fraction);
            if (telemetry.slo_error_budget > 0.0) {
                // Burn rate > 1 means the tenant is spending its error
                // budget faster than it accrues (SRE convention).
                reg.GetGauge("serving.slo_burn_rate", labels)
                    ->Set(tenant.slo_miss_fraction /
                          telemetry.slo_error_budget);
            }
            reg.GetGauge("serving.throughput_rps", labels)
                ->Set(tenant.throughput_rps);
            reg.GetGauge("serving.goodput_rps", labels)
                ->Set(tenant.goodput_rps);
            reg.GetGauge("serving.max_queue_depth", labels)
                ->Set(static_cast<double>(tenant.max_queue_depth));
        }
    }
    // One final alert pass over the end-of-run gauges so rules on
    // run-level metrics (availability, final burn rate) get a verdict
    // even when the run ends between evaluation intervals.
    if (alerts != nullptr) {
        alerts->Evaluate(*telemetry.registry, result.duration_s);
    }
    return result;
}

StatusOr<ServingResult>
RunServingCell(const std::vector<TenantConfig>& tenants, int num_devices,
               double duration_s, uint64_t seed,
               const ServingTelemetry& telemetry)
{
    return RunServingCell(tenants, num_devices, duration_s, seed,
                          telemetry, ReliabilityConfig{});
}

StatusOr<ServingResult>
RunServingCell(const std::vector<TenantConfig>& tenants, int num_devices,
               double duration_s, uint64_t seed)
{
    return RunServingCell(tenants, num_devices, duration_s, seed,
                          ServingTelemetry{});
}

StatusOr<ServingResult>
RunServing(const std::vector<TenantConfig>& tenants, double duration_s,
           uint64_t seed)
{
    return RunServingCell(tenants, 1, duration_s, seed);
}

}  // namespace t4i
