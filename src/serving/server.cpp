#include "src/serving/server.h"

#include <algorithm>
#include <deque>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/strings.h"

namespace t4i {
namespace {

constexpr double kUsPerSecond = 1e6;

struct Request {
    double arrival_s;
    /** Telemetry flow id (arrival -> batch -> completion); -1 = none. */
    int64_t flow_id = -1;
};

struct TenantState {
    std::deque<Request> queue;
    double next_arrival_s = 0.0;
    PercentileTracker latencies;
    RunningStat batches;
    int64_t completed = 0;
    int64_t slo_misses = 0;
    int64_t max_queue_depth = 0;

    // Telemetry plumbing (null when no sink is configured).
    obs::HistogramMetric* latency_hist = nullptr;
    obs::HistogramMetric* batch_hist = nullptr;
    obs::Counter* completed_counter = nullptr;
    obs::Counter* slo_miss_counter = nullptr;
    int64_t flows_started = 0;
    int64_t last_emitted_depth = -1;
};

struct DeviceState {
    double device_free_s = 0.0;
    double host_free_s = 0.0;
    double busy_s = 0.0;
    double host_busy_s = 0.0;
    int last_tenant = -1;
};

}  // namespace

StatusOr<ServingResult>
RunServingCell(const std::vector<TenantConfig>& tenants, int num_devices,
               double duration_s, uint64_t seed,
               const ServingTelemetry& telemetry)
{
    if (tenants.empty()) {
        return Status::InvalidArgument("no tenants");
    }
    if (duration_s <= 0.0) {
        return Status::InvalidArgument("duration must be positive");
    }
    if (num_devices < 1) {
        return Status::InvalidArgument("need at least one device");
    }
    for (const auto& t : tenants) {
        if (!t.latency_s || t.max_batch < 1 || t.arrival_rate <= 0.0) {
            return Status::InvalidArgument("bad tenant config: " + t.name);
        }
    }

    Rng rng(seed);
    // Draws the next arrival after `t` — homogeneous Poisson, or
    // thinned non-homogeneous Poisson when a rate_multiplier is set.
    auto next_arrival = [&rng](const TenantConfig& cfg, double t) {
        if (!cfg.rate_multiplier) {
            return t + rng.NextExponential(cfg.arrival_rate);
        }
        const double peak =
            cfg.arrival_rate * std::max(cfg.peak_rate_multiplier, 1e-9);
        for (int guard = 0; guard < 100000; ++guard) {
            t += rng.NextExponential(peak);
            const double accept =
                cfg.arrival_rate * cfg.rate_multiplier(t) / peak;
            if (rng.NextBool(std::clamp(accept, 0.0, 1.0))) return t;
        }
        return t;  // pathological multiplier; degrade gracefully
    };

    std::vector<TenantState> state(tenants.size());
    for (size_t i = 0; i < tenants.size(); ++i) {
        state[i].next_arrival_s = next_arrival(tenants[i], 0.0);
    }
    std::vector<DeviceState> devices(static_cast<size_t>(num_devices));

    // Telemetry setup: per-tenant instruments and named trace tracks.
    // Device batches render on tids [0, num_devices); each tenant's
    // arrival/queue activity on tid num_devices + tenant index.
    obs::TraceBuilder* trace = telemetry.trace;
    const int pid = telemetry.trace_pid;
    auto queue_tid = [&](size_t i) {
        return num_devices + static_cast<int>(i);
    };
    if (trace != nullptr) {
        trace->SetProcessName(pid, "serving cell");
        for (int d = 0; d < num_devices; ++d) {
            trace->SetThreadName(pid, d, StrFormat("device %d", d));
        }
        for (size_t i = 0; i < tenants.size(); ++i) {
            trace->SetThreadName(pid, queue_tid(i),
                                 "queue: " + tenants[i].name);
        }
    }
    if (telemetry.registry != nullptr) {
        for (size_t i = 0; i < tenants.size(); ++i) {
            const obs::Labels labels = {{"tenant", tenants[i].name}};
            state[i].latency_hist = telemetry.registry->GetHistogram(
                "serving.latency_seconds", labels);
            state[i].batch_hist = telemetry.registry->GetHistogram(
                "serving.batch_size", labels);
            state[i].completed_counter = telemetry.registry->GetCounter(
                "serving.completed", labels);
            state[i].slo_miss_counter = telemetry.registry->GetCounter(
                "serving.slo_miss", labels);
        }
    }
    auto emit_queue_depth = [&](size_t i, double t) {
        TenantState& ts = state[i];
        const auto depth = static_cast<int64_t>(ts.queue.size());
        ts.max_queue_depth = std::max(ts.max_queue_depth, depth);
        if (trace != nullptr && depth != ts.last_emitted_depth) {
            trace->AddCounter(pid,
                              "queue depth: " + tenants[i].name,
                              t * kUsPerSecond,
                              static_cast<double>(depth));
            ts.last_emitted_depth = depth;
        }
    };

    double now = 0.0;
    double switch_overhead = 0.0;
    uint64_t next_flow_id = 1;
    size_t rr_cursor = 0;  // round-robin fairness within a priority

    while (true) {
        // Deliver all arrivals up to `now`.
        bool any_pending_arrivals = false;
        for (size_t i = 0; i < tenants.size(); ++i) {
            while (state[i].next_arrival_s <= now &&
                   state[i].next_arrival_s < duration_s) {
                Request req{state[i].next_arrival_s, -1};
                if (trace != nullptr &&
                    state[i].flows_started <
                        telemetry.max_flows_per_tenant) {
                    req.flow_id =
                        static_cast<int64_t>(next_flow_id++);
                    ++state[i].flows_started;
                    trace->AddInstant(pid, queue_tid(i), "arrive",
                                      req.arrival_s * kUsPerSecond);
                    trace->AddFlowStart(
                        pid, queue_tid(i), "request",
                        static_cast<uint64_t>(req.flow_id),
                        req.arrival_s * kUsPerSecond);
                }
                state[i].queue.push_back(req);
                state[i].next_arrival_s = next_arrival(
                    tenants[i], state[i].next_arrival_s);
            }
            emit_queue_depth(i, now);
            if (state[i].next_arrival_s < duration_s) {
                any_pending_arrivals = true;
            }
        }

        // A tenant is dispatchable when its batch is full, its oldest
        // request has waited out the batching patience, or no more
        // arrivals are coming.
        auto dispatchable = [&](size_t i) {
            if (state[i].queue.empty()) return false;
            if (tenants[i].batch_wait_s <= 0.0) return true;
            if (static_cast<int64_t>(state[i].queue.size()) >=
                tenants[i].max_batch) {
                return true;
            }
            if (state[i].next_arrival_s >= duration_s) return true;
            return now - state[i].queue.front().arrival_s >=
                   tenants[i].batch_wait_s;
        };

        // Pick the highest-priority dispatchable tenant; round-robin
        // within the winning priority level.
        int best_priority = 0;
        bool found = false;
        for (size_t i = 0; i < tenants.size(); ++i) {
            if (!dispatchable(i)) continue;
            if (!found || tenants[i].priority > best_priority) {
                best_priority = tenants[i].priority;
                found = true;
            }
        }
        int chosen = -1;
        if (found) {
            for (size_t k = 0; k < tenants.size(); ++k) {
                const size_t idx = (rr_cursor + k) % tenants.size();
                if (dispatchable(idx) &&
                    tenants[idx].priority == best_priority) {
                    chosen = static_cast<int>(idx);
                    break;
                }
            }
        }

        if (chosen < 0) {
            // Advance to the next event: an arrival or a batching
            // deadline expiring.
            double next = 1e300;
            bool have_event = false;
            for (size_t i = 0; i < tenants.size(); ++i) {
                if (state[i].next_arrival_s < duration_s) {
                    next = std::min(next, state[i].next_arrival_s);
                    have_event = true;
                }
                if (!state[i].queue.empty()) {
                    next = std::min(
                        next, state[i].queue.front().arrival_s +
                                  tenants[i].batch_wait_s);
                    have_event = true;
                }
            }
            if (!have_event && !any_pending_arrivals) break;
            if (!have_event) break;
            now = std::max(now + 1e-12, next);
            continue;
        }
        rr_cursor = static_cast<size_t>(chosen) + 1;

        TenantState& ts = state[static_cast<size_t>(chosen)];
        const TenantConfig& cfg = tenants[static_cast<size_t>(chosen)];

        // Dispatch to the earliest-free device.
        DeviceState* device = &devices[0];
        for (auto& d : devices) {
            if (d.device_free_s < device->device_free_s) device = &d;
        }

        const auto batch = static_cast<int64_t>(std::min<size_t>(
            ts.queue.size(), static_cast<size_t>(cfg.max_batch)));

        // Two-stage pipeline: the host prepares this batch (possibly
        // while the device still runs the previous one), then the
        // device executes.
        const double host_start = std::max(now, device->host_free_s);
        const double host_done = host_start + cfg.host_overhead_s;
        device->host_free_s = host_done;
        device->host_busy_s += cfg.host_overhead_s;

        double device_start =
            std::max(host_done, device->device_free_s);
        if (device->last_tenant != chosen &&
            cfg.switch_penalty_s > 0.0) {
            switch_overhead += cfg.switch_penalty_s;
            device_start += cfg.switch_penalty_s;
        }
        device->last_tenant = chosen;

        const double exec = cfg.latency_s(batch);
        const double finish = device_start + exec;
        device->busy_s += finish - std::max(now, device->device_free_s);
        device->device_free_s = finish;

        const int device_tid =
            static_cast<int>(device - devices.data());
        if (trace != nullptr) {
            trace->AddComplete(
                pid, device_tid, cfg.name, "batch",
                device_start * kUsPerSecond, exec * kUsPerSecond,
                StrFormat("{\"batch\":%lld}",
                          static_cast<long long>(batch)));
        }

        for (int64_t j = 0; j < batch; ++j) {
            const Request req = ts.queue.front();
            ts.queue.pop_front();
            const double latency = finish - req.arrival_s;
            ts.latencies.Add(latency);
            ++ts.completed;
            if (latency > cfg.slo_s) ++ts.slo_misses;
            if (ts.latency_hist != nullptr) {
                ts.latency_hist->Observe(latency);
                ts.completed_counter->Increment();
                if (latency > cfg.slo_s) {
                    ts.slo_miss_counter->Increment();
                }
            }
            if (trace != nullptr && req.flow_id >= 0) {
                // arrival (queue track) -> batch start (device track)
                // -> completion, all one arrow in the viewer.
                trace->AddFlowStep(
                    pid, device_tid, "request",
                    static_cast<uint64_t>(req.flow_id),
                    device_start * kUsPerSecond);
                trace->AddFlowEnd(pid, device_tid, "request",
                                  static_cast<uint64_t>(req.flow_id),
                                  finish * kUsPerSecond);
            }
        }
        ts.batches.Add(static_cast<double>(batch));
        if (ts.batch_hist != nullptr) {
            ts.batch_hist->Observe(static_cast<double>(batch));
        }
        emit_queue_depth(static_cast<size_t>(chosen), now);

        // Advance to the next batch-formation point: the host stage
        // leads the device by the host overhead so the two-stage
        // pipeline stays full (with zero host overhead this reduces to
        // "wait until a device frees").
        double max_host = 0.0;
        for (const auto& t : tenants) {
            max_host = std::max(max_host, t.host_overhead_s);
        }
        double candidate = 1e300;
        for (const auto& d : devices) {
            candidate = std::min(
                candidate,
                std::max(d.host_free_s, d.device_free_s - max_host));
        }
        now = std::max(now, candidate);
    }

    ServingResult result;
    double last_finish = duration_s;
    double busy_sum = 0.0;
    double host_sum = 0.0;
    for (const auto& d : devices) {
        last_finish = std::max(last_finish, d.device_free_s);
        busy_sum += d.busy_s;
        host_sum += d.host_busy_s;
    }
    result.duration_s = last_finish;
    result.device_busy_fraction =
        busy_sum / (result.duration_s * num_devices);
    result.host_busy_fraction =
        host_sum / (result.duration_s * num_devices);
    result.switch_overhead_fraction =
        switch_overhead / (result.duration_s * num_devices);
    for (size_t i = 0; i < tenants.size(); ++i) {
        TenantStats s;
        s.name = tenants[i].name;
        s.completed = state[i].completed;
        s.mean_latency_s = state[i].latencies.Mean();
        s.p50_latency_s = state[i].latencies.Percentile(50.0);
        s.p95_latency_s = state[i].latencies.Percentile(95.0);
        s.p99_latency_s = state[i].latencies.Percentile(99.0);
        s.slo_misses = state[i].slo_misses;
        s.slo_miss_fraction =
            state[i].completed > 0
                ? static_cast<double>(state[i].slo_misses) /
                      static_cast<double>(state[i].completed)
                : 0.0;
        s.throughput_rps =
            static_cast<double>(state[i].completed) / result.duration_s;
        s.mean_batch = state[i].batches.mean();
        s.max_queue_depth = state[i].max_queue_depth;
        result.tenants.push_back(std::move(s));
    }

    if (telemetry.registry != nullptr) {
        obs::MetricsRegistry& reg = *telemetry.registry;
        reg.GetGauge("serving.device_busy_fraction")
            ->Set(result.device_busy_fraction);
        reg.GetGauge("serving.host_busy_fraction")
            ->Set(result.host_busy_fraction);
        reg.GetGauge("serving.switch_overhead_fraction")
            ->Set(result.switch_overhead_fraction);
        reg.GetGauge("serving.duration_seconds")
            ->Set(result.duration_s);
        for (const auto& tenant : result.tenants) {
            const obs::Labels labels = {{"tenant", tenant.name}};
            reg.GetGauge("serving.slo_miss_fraction", labels)
                ->Set(tenant.slo_miss_fraction);
            reg.GetGauge("serving.throughput_rps", labels)
                ->Set(tenant.throughput_rps);
            reg.GetGauge("serving.max_queue_depth", labels)
                ->Set(static_cast<double>(tenant.max_queue_depth));
        }
    }
    return result;
}

StatusOr<ServingResult>
RunServingCell(const std::vector<TenantConfig>& tenants, int num_devices,
               double duration_s, uint64_t seed)
{
    return RunServingCell(tenants, num_devices, duration_s, seed,
                          ServingTelemetry{});
}

StatusOr<ServingResult>
RunServing(const std::vector<TenantConfig>& tenants, double duration_s,
           uint64_t seed)
{
    return RunServingCell(tenants, 1, duration_s, seed);
}

}  // namespace t4i
