#include "src/serving/server.h"

#include <limits>
#include <memory>
#include <utility>

#include "src/serving/cell.h"

namespace t4i {

// The discrete-event loop itself lives in src/serving/cell.cpp as the
// steppable ServeCell (the unit the cluster layer schedules); running
// one cell to completion is just create -> advance past every event ->
// collect. With internal arrivals this is the exact pre-ServeCell
// simulator, bit for bit (regression-guarded in tests/test_serving.cpp).
StatusOr<ServingResult>
RunServingCell(const std::vector<TenantConfig>& tenants, int num_devices,
               double duration_s, uint64_t seed,
               const ServingTelemetry& telemetry,
               const ReliabilityConfig& reliability)
{
    ServeCell::Options options;
    options.tenants = tenants;
    options.num_devices = num_devices;
    options.duration_s = duration_s;
    options.seed = seed;
    options.telemetry = telemetry;
    options.reliability = reliability;
    auto cell_or = ServeCell::Create(std::move(options));
    T4I_RETURN_IF_ERROR(cell_or.status());
    std::unique_ptr<ServeCell> cell = std::move(cell_or).ConsumeValue();
    cell->AdvanceTo(std::numeric_limits<double>::infinity());
    return cell->Finish();
}

StatusOr<ServingResult>
RunServingCell(const std::vector<TenantConfig>& tenants, int num_devices,
               double duration_s, uint64_t seed,
               const ServingTelemetry& telemetry)
{
    return RunServingCell(tenants, num_devices, duration_s, seed,
                          telemetry, ReliabilityConfig{});
}

StatusOr<ServingResult>
RunServingCell(const std::vector<TenantConfig>& tenants, int num_devices,
               double duration_s, uint64_t seed)
{
    return RunServingCell(tenants, num_devices, duration_s, seed,
                          ServingTelemetry{});
}

StatusOr<ServingResult>
RunServing(const std::vector<TenantConfig>& tenants, double duration_s,
           uint64_t seed)
{
    return RunServingCell(tenants, 1, duration_s, seed);
}

}  // namespace t4i
