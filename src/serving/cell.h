/**
 * @file
 * Steppable serving cell — the unit the cluster layer schedules.
 *
 * RunServingCell (src/serving/server.h) runs one cell's discrete-event
 * loop to completion. The cluster layer (src/cluster/) needs finer
 * control: N cells must advance in lockstep on one shared sim clock
 * while a front-end router injects arrivals between their events. A
 * ServeCell holds the loop's entire state as an object and exposes it
 * incrementally:
 *
 *  - AdvanceTo(limit) processes every internal event with an action
 *    time <= limit and then returns, leaving the cell ready to resume;
 *  - InjectArrival() delivers one externally-routed request (external-
 *    arrival mode disables the cell's own Poisson streams);
 *  - introspection (QueueDepth, Healthy, TenantResident, Drained)
 *    gives routing policies the health/load signals they key on;
 *  - SetLatencyScale() is the model-version knob canary rollouts turn;
 *  - a request-end hook reports every admitted request's terminal fate
 *    so the layer above can keep cluster-wide latency percentiles and
 *    close its router spans.
 *
 * RunServingCell is now a thin wrapper: Create + AdvanceTo(inf) +
 * Finish. With internal arrivals the refactor is pure code motion, so
 * the wrapper reproduces the pre-refactor simulator bit for bit (the
 * regression guard in tests/test_serving.cpp and the 1-cell cluster
 * guard in tests/test_cluster.cpp both enforce this).
 */
#ifndef T4I_SERVING_CELL_H
#define T4I_SERVING_CELL_H

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/load/arrivals.h"
#include "src/serving/server.h"

namespace t4i {

/** Terminal fate of one admitted request. */
enum class RequestOutcome {
    kCompleted,         ///< served (possibly past the SLO)
    kDeadlineDrop,      ///< expired in the queue
    kEvicted,           ///< evicted by the cell-wide queue cap
    kRetriesExhausted,  ///< every re-execution failed
    kDeadCell,          ///< dropped when the whole cell died
};

/** One admitted request's terminal event (cluster accounting). */
struct RequestEnd {
    size_t tenant = 0;
    double arrival_s = 0.0;
    double end_s = 0.0;
    RequestOutcome outcome = RequestOutcome::kCompleted;
    /** Only meaningful for kCompleted. */
    bool slo_miss = false;
    /** Opaque tag passed at injection (0 = none). The cluster router
     *  stores its root span id here to close it on completion. */
    uint64_t tag = 0;
    /** Arrival-source feedback handle (0 = not source-driven). */
    uint64_t load_id = 0;
};

/**
 * Draws the next Poisson arrival after @p t for @p cfg using @p rng —
 * homogeneous, or thinned non-homogeneous when a rate_multiplier is
 * set. Shared by the cell (internal arrivals) and the cluster router
 * (cluster-wide streams) so the two processes cannot drift apart.
 */
double DrawNextArrival(Rng& rng, const TenantConfig& cfg, double t);

/** One serving cell as a steppable object. */
class ServeCell {
  public:
    struct Options {
        std::vector<TenantConfig> tenants;
        int num_devices = 1;
        /** End of the arrival window (queues drain afterwards). */
        double duration_s = 1.0;
        uint64_t seed = 42;
        ServingTelemetry telemetry;
        ReliabilityConfig reliability;
        /**
         * Cluster mode: arrivals come from InjectArrival instead of
         * the tenants' own Poisson processes, and "no more arrivals"
         * is signalled by CloseArrivals rather than duration_s.
         */
        bool external_arrivals = false;
        /**
         * Load-program mode: arrivals come from this source (trace
         * replay / adversarial generators, src/load/arrivals.h)
         * instead of the tenants' own Poisson processes. The cell
         * drains it on its own clock and feeds back every request's
         * terminal event, so closed-loop sources work single-cell.
         * Mutually exclusive with external_arrivals; not owned.
         */
        load::ArrivalSource* arrival_source = nullptr;
        /** Root-span name for per-request traces; the cluster passes
         *  "cell" and parents these under its router "request" spans. */
        std::string request_span_name = "request";
    };

    static StatusOr<std::unique_ptr<ServeCell>> Create(Options options);
    ~ServeCell();
    ServeCell(const ServeCell&) = delete;
    ServeCell& operator=(const ServeCell&) = delete;

    /**
     * Processes every internal event with action time <= @p limit_s:
     * arrival delivery, deadline sweeps, batch dispatches, and idle
     * clock advances. Events beyond the limit stay pending, so a
     * scheduler can interleave many cells on one shared clock. Pass
     * +infinity to run to completion.
     */
    void AdvanceTo(double limit_s);

    /** Injection result: door verdict plus the request's root span. */
    struct Injected {
        bool admitted = false;
        /** The cell-side request span (0 when untraced). */
        obs::SpanId span = 0;
    };

    /**
     * Delivers one externally-routed request (external-arrival mode
     * only) through the same admission control as internal arrivals;
     * a false verdict means the door shed it (counted in this cell's
     * arrived/shed books). @p trace_id / @p parent_span, when nonzero,
     * parent the request's cell span under the caller's span; @p tag
     * rides along into the request-end hook.
     */
    Injected InjectArrival(size_t tenant, double arrival_s,
                           uint64_t trace_id = 0,
                           obs::SpanId parent_span = 0,
                           uint64_t tag = 0);

    /** Full request descriptor for load-program injections: relative
     *  size (execution scales with the largest size in a batch), a
     *  per-request deadline override, and the arrival-source feedback
     *  handle echoed in the request-end hook. */
    struct ExternalArrival {
        size_t tenant = 0;
        double arrival_s = 0.0;
        double size = 1.0;
        double deadline_s = 0.0;  ///< 0 inherits the tenant deadline
        uint64_t load_id = 0;
        uint64_t trace_id = 0;
        obs::SpanId parent_span = 0;
        uint64_t tag = 0;
    };

    /** InjectArrival with the full descriptor. */
    Injected InjectArrival(const ExternalArrival& arrival);

    /** External-arrival mode: no further injections will come; queued
     *  work may now dispatch without batching patience. */
    void CloseArrivals();

    /** True when no internal event can ever fire again. */
    bool Done() const { return done_; }

    /**
     * Final statistics; call once, after AdvanceTo(+inf) has drained
     * the cell (and CloseArrivals in external mode). Also writes the
     * run-level registry gauges and runs the final alert evaluation.
     */
    ServingResult Finish();

    // --- routing/introspection signals -------------------------------
    /** Total queued requests across tenants. */
    int64_t QueueDepth() const;
    /** Queued requests for one tenant. */
    int64_t QueueDepth(size_t tenant) const;
    /** True when at least one device is up at @p t_s (health signal
     *  the router polls; always true without injected faults). */
    bool Healthy(double t_s) const;
    /** True when some device ran @p tenant last — its weights are
     *  staged, so routing here avoids the switch penalty. */
    bool TenantResident(size_t tenant) const;
    /** True when every tenant queue is empty (rollout drain point). */
    bool Drained() const;
    /** Current local sim time. */
    double now_s() const { return now_; }
    int num_devices() const { return num_devices_; }
    double duration_s() const { return duration_s_; }

    /**
     * Model-version knob: scales every tenant's device latency from
     * now on (1.0 = baseline). Canary rollouts drain a cell, swap the
     * scale, and compare per-version latency. Takes effect at the
     * next dispatch; already-running batches are unaffected.
     */
    void SetLatencyScale(double scale);
    double latency_scale() const { return latency_scale_; }

    /** Source mode: requests pulled from the arrival source so far
     *  (== the cell's arrived book) and how many of them were client
     *  re-enqueues. */
    int64_t source_arrivals() const { return source_arrivals_; }
    int64_t source_client_retries() const
    {
        return source_client_retries_;
    }

    /** Called once per admitted request at its terminal event. Pure
     *  observation: the simulation is bit-identical with or without. */
    void set_request_end_hook(std::function<void(const RequestEnd&)> h)
    {
        request_end_hook_ = std::move(h);
    }

  private:
    struct Request {
        double arrival_s = 0.0;
        /** Telemetry flow id (arrival -> batch -> completion). */
        int64_t flow_id = -1;
        /** Retry backoff gate: not dispatchable before this time. */
        double not_before_s = 0.0;
        /** Failed executions so far (bounded by max_retries). */
        int attempts = 0;
        /** Span context (0 = untraced request). */
        uint64_t trace_id = 0;
        obs::SpanId root_span = 0;
        /** The currently-open queue-wait child span. */
        obs::SpanId queue_span = 0;
        /** External parent span for the root (cluster router). */
        obs::SpanId parent_span = 0;
        /** Opaque router tag surfaced in the request-end hook. */
        uint64_t tag = 0;
        /** Relative request size (batch execution scales with the
         *  largest size it contains). */
        double size = 1.0;
        /** Per-request deadline override; 0 inherits the tenant's. */
        double deadline_s = 0.0;
        /** Arrival-source feedback handle (0 = none). */
        uint64_t load_id = 0;
    };

    struct TenantState {
        std::deque<Request> queue;
        double next_arrival_s = 0.0;
        PercentileTracker latencies;
        /** Observed device times of winning batches (hedge baseline). */
        PercentileTracker device_times;
        RunningStat batches;
        int64_t arrived = 0;
        int64_t completed = 0;
        int64_t dropped = 0;
        int64_t shed = 0;
        int64_t retried = 0;
        int64_t hedges = 0;
        int64_t hedge_wins = 0;
        int64_t slo_misses = 0;
        int64_t max_queue_depth = 0;

        // Telemetry plumbing (null when no sink is configured).
        obs::HistogramMetric* latency_hist = nullptr;
        obs::HistogramMetric* batch_hist = nullptr;
        obs::Counter* completed_counter = nullptr;
        obs::Counter* slo_miss_counter = nullptr;
        obs::Counter* retry_counter = nullptr;
        obs::Counter* shed_counter = nullptr;
        obs::Counter* drop_counter = nullptr;
        obs::Counter* hedge_win_counter = nullptr;
        /** Source mode: arrivals pulled from the load program. */
        obs::Counter* load_arrival_counter = nullptr;
        /** Source mode: arrivals flagged as client re-enqueues. */
        obs::Counter* client_retry_counter = nullptr;
        /** Live SLO burn-rate gauge (updated per completed batch). */
        obs::Gauge* burn_gauge = nullptr;
        /** Aligned with ServingTelemetry::batch_attribution. */
        std::vector<obs::HistogramMetric*> attribution_hists;
        int64_t flows_started = 0;
        int64_t last_emitted_depth = -1;
        int64_t traces_started = 0;
        int64_t last_recorder_depth = -1;
    };

    struct DeviceState {
        double device_free_s = 0.0;
        double host_free_s = 0.0;
        double busy_s = 0.0;
        double host_busy_s = 0.0;
        int last_tenant = -1;
    };

    ServeCell() = default;
    Status Init(Options options);

    /** True when tenant @p i may still receive arrivals. */
    bool MoreArrivals(size_t i) const;
    /** Trace track for tenant @p i's queue activity. */
    int QueueTid(size_t i) const
    {
        return num_devices_ + static_cast<int>(i);
    }
    /** @p labels plus the telemetry's extra_labels (cell identity). */
    obs::Labels WithExtra(obs::Labels labels) const;
    /** Admission control shared by internal and injected arrivals;
     *  returns true when @p req joined the queue. */
    bool AdmitOrShed(size_t i, Request req);
    void EmitQueueDepth(size_t i, double t);
    int64_t TotalQueued() const;
    void EndRequest(size_t tenant, const Request& req, double end_s,
                    RequestOutcome outcome, bool slo_miss);
    /** Delivers due arrivals and runs the deadline sweep up to now_. */
    void DeliverArrivals();
    /** Executes one batch for tenant @p chosen at now_; returns false
     *  when the cell turned out to be permanently dead instead. */
    bool DispatchChosen(int chosen);

    // --- immutable run configuration ---------------------------------
    std::vector<TenantConfig> tenants_;
    int num_devices_ = 1;
    double duration_s_ = 0.0;
    ServingTelemetry telemetry_;
    ReliabilityConfig reliability_;
    bool external_ = false;
    load::ArrivalSource* source_ = nullptr;
    std::string span_name_ = "request";
    FaultTimeline timeline_;
    bool faults_active_ = false;

    // --- mutable simulation state ------------------------------------
    Rng rng_{0};
    Rng fault_rng_{0};
    std::vector<TenantState> state_;
    std::vector<DeviceState> devices_;
    double now_ = 0.0;
    double switch_overhead_ = 0.0;
    uint64_t next_flow_id_ = 1;
    size_t rr_cursor_ = 0;  ///< round-robin fairness within a priority
    double next_alert_eval_ = 0.0;
    double latency_scale_ = 1.0;
    bool arrivals_closed_ = false;
    bool done_ = false;
    bool finished_ = false;
    /** Set when any admitted request carries its own deadline; the
     *  sweep then scans whole queues instead of fronts only. */
    bool has_request_deadlines_ = false;
    /** Requests pulled from the arrival source (source mode). */
    int64_t source_arrivals_ = 0;
    /** Source arrivals flagged as client retries. */
    int64_t source_client_retries_ = 0;

    std::function<void(const RequestEnd&)> request_end_hook_;

    // Telemetry shorthands bound at Init.
    obs::TraceBuilder* trace_ = nullptr;
    int pid_ = 2;
    obs::SpanCollector* spans_ = nullptr;
    obs::FlightRecorder* recorder_ = nullptr;
    obs::AlertEngine* alerts_ = nullptr;
    obs::TimeSeriesCollector* timeseries_ = nullptr;
    obs::SloTracker* slo_ = nullptr;
};

}  // namespace t4i

#endif  // T4I_SERVING_CELL_H
