/**
 * @file
 * Stacked-LSTM sequence models (the paper's RNN0/RNN1 stand-ins).
 *
 * Production RNNs (translation, speech) run long dependent chains of
 * small matmuls: moderate weight footprint, low per-step parallelism,
 * latency dominated by sequence length. They sit between the MLPs and
 * CNNs on the roofline and were the reason TPUv1's 92 TOPS often went
 * unused — a motivating data point for the paper's Lessons 9 and 10.
 */
#include "src/models/zoo.h"

namespace t4i {

Graph
BuildLstmStack(const std::string& name, int64_t vocab, int64_t embed_dim,
               int layers, int64_t hidden, int64_t seq_len)
{
    Graph g(name);
    int ids = g.AddInput("tokens", {seq_len});

    LayerParams embed;
    embed.vocab = vocab;
    embed.embed_dim = embed_dim;
    embed.lookups_per_sample = seq_len;
    int x = g.AddLayer(LayerKind::kEmbedding, "embed", {ids}, embed);

    for (int i = 0; i < layers; ++i) {
        LayerParams lstm;
        lstm.seq_len = seq_len;
        lstm.hidden_dim = hidden;
        x = g.AddLayer(LayerKind::kLstm, "lstm" + std::to_string(i), {x},
                       lstm);
    }

    // Per-step output projection onto a sampled-softmax head
    // (decoder-style: one logit set per step). Dense applies to the last
    // dim of [seq, hidden], so rows = batch * seq.
    LayerParams proj;
    proj.in_features = hidden;
    proj.out_features = vocab / 8;  // sampled softmax head
    g.AddLayer(LayerKind::kDense, "proj", {x}, proj);

    T4I_CHECK(g.Finalize().ok(), "LSTM graph failed to finalize");
    return g;
}

}  // namespace t4i
