/**
 * @file
 * Recommendation/ranking-style MLPs (the paper's MLP0/MLP1).
 *
 * Production MLPs at Google are dominated by large embedding tables feeding
 * a modest dense tower: enormous weight footprint, very low operational
 * intensity, tight latency SLOs. That memory-bound shape (a few FLOPs per
 * weight byte) is exactly what makes HBM bandwidth the limiter for them in
 * the paper's rooflines.
 */
#include "src/models/zoo.h"

namespace t4i {

Graph
BuildMlp(const std::string& name, int64_t embed_vocab, int64_t embed_dim,
         int64_t lookups, int64_t tower_in,
         const std::vector<int64_t>& tower_widths)
{
    T4I_CHECK(lookups * embed_dim == tower_in,
              "MLP tower input must equal lookups * embed_dim");

    Graph g(name);
    int ids = g.AddInput("ids", {lookups});

    LayerParams embed;
    embed.vocab = embed_vocab;
    embed.embed_dim = embed_dim;
    embed.lookups_per_sample = lookups;
    int prev = g.AddLayer(LayerKind::kEmbedding, "embed", {ids}, embed);

    prev = g.AddLayer(LayerKind::kFlatten, "concat", {prev}, LayerParams{});

    int64_t in_features = tower_in;
    for (size_t i = 0; i < tower_widths.size(); ++i) {
        LayerParams dense;
        dense.in_features = in_features;
        dense.out_features = tower_widths[i];
        dense.activation = (i + 1 == tower_widths.size())
                               ? Activation::kNone
                               : Activation::kRelu;
        prev = g.AddLayer(LayerKind::kDense, "fc" + std::to_string(i),
                          {prev}, dense);
        in_features = tower_widths[i];
    }
    T4I_CHECK(g.Finalize().ok(), "MLP graph failed to finalize");
    return g;
}

}  // namespace t4i
