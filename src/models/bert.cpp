/**
 * @file
 * BERT-style transformer encoders (the paper's BERT0/BERT1 and the
 * MLPerf BERT-large workload).
 *
 * BERT arrived between TPUv3 and TPUv4i and reshaped the fleet mix
 * (Lesson 9); it is also the workload whose 1.5x/year growth pressure
 * (Lesson 8) drove TPUv4i's 4-chip ICI domains.
 */
#include "src/models/zoo.h"

namespace t4i {

Graph
BuildBert(const std::string& name, int layers, int64_t d_model,
          int64_t num_heads, int64_t d_ff, int64_t seq_len, int64_t vocab)
{
    Graph g(name);
    int ids = g.AddInput("tokens", {seq_len});

    LayerParams embed;
    embed.vocab = vocab;
    embed.embed_dim = d_model;
    embed.lookups_per_sample = seq_len;
    int x = g.AddLayer(LayerKind::kEmbedding, "embed", {ids}, embed);

    for (int i = 0; i < layers; ++i) {
        const std::string tag = "enc" + std::to_string(i);

        LayerParams attn;
        attn.seq_len = seq_len;
        attn.d_model = d_model;
        attn.num_heads = num_heads;
        int a = g.AddLayer(LayerKind::kAttention, tag + ".attn", {x}, attn);

        LayerParams add;
        add.arity = 2;
        int r1 = g.AddLayer(LayerKind::kElementwise, tag + ".res1", {a, x},
                            add);
        int n1 = g.AddLayer(LayerKind::kLayerNorm, tag + ".ln1", {r1},
                            LayerParams{});

        LayerParams ffn;
        ffn.d_model = d_model;
        ffn.d_ff = d_ff;
        ffn.activation = Activation::kGelu;
        int f = g.AddLayer(LayerKind::kFeedForward, tag + ".ffn", {n1},
                           ffn);

        int r2 = g.AddLayer(LayerKind::kElementwise, tag + ".res2",
                            {f, n1}, add);
        x = g.AddLayer(LayerKind::kLayerNorm, tag + ".ln2", {r2},
                       LayerParams{});
    }

    // Task head (classification over the pooled representation).
    LayerParams head;
    head.in_features = d_model;
    head.out_features = d_model;
    head.activation = Activation::kTanh;
    int pooled = g.AddLayer(LayerKind::kDense, "pooler", {x}, head);
    LayerParams cls;
    cls.in_features = d_model;
    cls.out_features = 2;
    g.AddLayer(LayerKind::kDense, "cls", {pooled}, cls);

    T4I_CHECK(g.Finalize().ok(), "BERT graph failed to finalize");
    return g;
}

Graph
BuildBertLarge()
{
    return BuildBert("BERT-large", 24, 1024, 16, 4096, 384, 30522);
}

}  // namespace t4i
