/**
 * @file
 * The workload zoo.
 *
 * The TPUv4i paper evaluates on eight production inference applications —
 * two each of MLP, CNN, RNN and BERT — characterized by their layer mix,
 * weight footprint, operational intensity and latency SLO (the real
 * models are confidential; these are parameterized synthetic stand-ins
 * matching the published shapes; see DESIGN.md "Substitutions").
 *
 * The zoo also provides:
 *  - MLPerf-style ResNet-50 and BERT for experiment E10,
 *  - a year-parameterized "grown" suite for Lesson 8 (DNNs grow
 *    ~1.5x/year, E4/E14),
 *  - the historical 2016-era app mix for Lesson 9 (E15).
 */
#ifndef T4I_MODELS_ZOO_H
#define T4I_MODELS_ZOO_H

#include <string>
#include <vector>

#include "src/graph/graph.h"

namespace t4i {

/** Workload domains, following the paper's taxonomy. */
enum class AppDomain { kMlp, kCnn, kRnn, kBert };

const char* AppDomainName(AppDomain domain);

/** A production inference application: model + serving contract. */
struct App {
    std::string name;
    AppDomain domain = AppDomain::kMlp;
    Graph graph{"unnamed"};
    /** 99th-percentile latency SLO the app must meet (Lesson 10). */
    double slo_ms = 10.0;
    /** Batch size the production deployment converged on. */
    int64_t typical_batch = 8;
    /** Fraction of the serving fleet's cycles (for mix experiments). */
    double fleet_share = 0.0;
};

/** Builds one of the eight production apps by name (MLP0, ..., BERT1). */
StatusOr<App> BuildApp(const std::string& name);

/** All eight production apps in paper order. */
std::vector<App> ProductionApps();

/** Names of the eight production apps in paper order. */
std::vector<std::string> ProductionAppNames();

// --- Individual model builders (finalized graphs) -----------------------

/** Recommendation-style MLP: wide embedding + dense tower. */
Graph BuildMlp(const std::string& name, int64_t embed_vocab,
               int64_t embed_dim, int64_t lookups, int64_t tower_in,
               const std::vector<int64_t>& tower_widths);

/** ResNet-style CNN with `stages` of residual blocks on 224x224 input. */
Graph BuildResNetish(const std::string& name, int blocks_per_stage,
                     int64_t base_channels);

/** Small inception-flavored CNN used for CNN1. */
Graph BuildSmallCnn(const std::string& name);

/** Stacked-LSTM sequence model with an input embedding. */
Graph BuildLstmStack(const std::string& name, int64_t vocab,
                     int64_t embed_dim, int layers, int64_t hidden,
                     int64_t seq_len);

/** BERT-style transformer encoder. */
Graph BuildBert(const std::string& name, int layers, int64_t d_model,
                int64_t num_heads, int64_t d_ff, int64_t seq_len,
                int64_t vocab);

/** MLPerf-style ResNet-50 (the v0.7 image classification workload). */
Graph BuildResNet50();

/** MLPerf-style BERT-large, sequence length 384. */
Graph BuildBertLarge();

// --- Extension workloads (post-paper growth directions) -----------------

/**
 * Autoregressive transformer decoder LM: generates @p gen_tokens one at
 * a time against a @p prompt_len-token KV cache. The LLM-serving shape
 * that arrived right after TPUv4i shipped.
 */
Graph BuildDecoderLm(const std::string& name, int layers,
                     int64_t d_model, int64_t num_heads, int64_t d_ff,
                     int64_t prompt_len, int64_t gen_tokens,
                     int64_t vocab);

/**
 * The prefill phase of LLM serving as its own graph: @p prompt_len
 * tokens flow through every decoder block in one batched pass
 * (compute-bound; the KV cache is written, not streamed). The
 * scheduler in src/llm/ compiles this per prompt-length bucket.
 */
Graph BuildDecoderPrefill(const std::string& name, int layers,
                          int64_t d_model, int64_t num_heads,
                          int64_t d_ff, int64_t prompt_len,
                          int64_t vocab);

/**
 * One decode iteration: a single token against a @p context_len-token
 * KV cache, through every block plus the LM head (memory-bound; the
 * cache streams back each step, split CMEM/HBM by the compile-time
 * kv_cmem_fraction).
 */
Graph BuildDecodeStep(const std::string& name, int layers,
                      int64_t d_model, int64_t num_heads, int64_t d_ff,
                      int64_t context_len, int64_t vocab);

/** DLRM-style recommender: multiple embedding tables + interaction +
 *  top MLP (MLPerf recommendation). */
Graph BuildDlrm(const std::string& name, int num_tables,
                int64_t rows_per_table, int64_t embed_dim,
                int64_t lookups_per_table, int64_t dense_features);

/** SSD-style single-shot detector with multi-scale heads (MLPerf
 *  object detection). */
Graph BuildSsdDetector(const std::string& name);

/**
 * MobileNet-style edge CNN: depthwise-separable blocks. Exists to show
 * the systolic array's weakness on depthwise convolutions (ablation
 * A9) — the kind of workload-evolution pressure Lesson 9 warns about.
 */
Graph BuildMobileNetish(const std::string& name);

// --- Lesson 8 / Lesson 9 suites -----------------------------------------

/**
 * The zoo "as of `year`": model capacities scaled by 1.5x per year from
 * the 2017 baseline (Lesson 8). year in [2016, 2022].
 */
std::vector<App> AppsOfYear(int year);

/**
 * Fleet mix snapshots (Lesson 9): share of inference cycles per domain.
 * Reconstructed trajectory: 2016 is MLP/LSTM-heavy (TPUv1 paper's 61%
 * MLP / 29% LSTM / 5% CNN), 2020 adds BERT at the expense of MLP/LSTM.
 */
struct FleetMix {
    int year;
    double mlp_share;
    double cnn_share;
    double rnn_share;
    double bert_share;
};

std::vector<FleetMix> FleetMixHistory();

}  // namespace t4i

#endif  // T4I_MODELS_ZOO_H
