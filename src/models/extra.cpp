/**
 * @file
 * Post-paper / extension workloads:
 *
 *  - BuildDecoderLm: an autoregressive transformer decoder (the LLM
 *    serving shape that arrived right after TPUv4i shipped — Lesson 9's
 *    "workloads keep evolving" carried one step further);
 *  - BuildDlrm: a DLRM-style recommender with multiple embedding tables
 *    and a feature-interaction stage (MLPerf's recommendation model);
 *  - BuildSsdDetector: an SSD-style single-shot detector with multi-
 *    scale heads (MLPerf's object-detection model).
 */
#include "src/models/zoo.h"

namespace t4i {

Graph
BuildDecoderLm(const std::string& name, int layers, int64_t d_model,
               int64_t num_heads, int64_t d_ff, int64_t prompt_len,
               int64_t gen_tokens, int64_t vocab)
{
    Graph g(name);
    int ids = g.AddInput("tokens", {gen_tokens});

    LayerParams embed;
    embed.vocab = vocab;
    embed.embed_dim = d_model;
    embed.lookups_per_sample = gen_tokens;
    int x = g.AddLayer(LayerKind::kEmbedding, "embed", {ids}, embed);

    for (int i = 0; i < layers; ++i) {
        LayerParams block;
        block.seq_len = gen_tokens;
        block.kv_len = prompt_len;
        block.d_model = d_model;
        block.num_heads = num_heads;
        block.d_ff = d_ff;
        x = g.AddLayer(LayerKind::kDecoderBlock,
                       "dec" + std::to_string(i), {x}, block);
    }

    // Per-token LM head onto a sampled vocabulary shard.
    LayerParams head;
    head.in_features = d_model;
    head.out_features = vocab / 8;
    g.AddLayer(LayerKind::kDense, "lm_head", {x}, head);

    T4I_CHECK(g.Finalize().ok(), "decoder graph failed to finalize");
    return g;
}

Graph
BuildDecoderPrefill(const std::string& name, int layers,
                    int64_t d_model, int64_t num_heads, int64_t d_ff,
                    int64_t prompt_len, int64_t vocab)
{
    Graph g(name);
    int ids = g.AddInput("prompt", {prompt_len});

    LayerParams embed;
    embed.vocab = vocab;
    embed.embed_dim = d_model;
    embed.lookups_per_sample = prompt_len;
    int x = g.AddLayer(LayerKind::kEmbedding, "embed", {ids}, embed);

    for (int i = 0; i < layers; ++i) {
        LayerParams block;
        block.seq_len = prompt_len;
        block.kv_len = 0;
        block.d_model = d_model;
        block.num_heads = num_heads;
        block.d_ff = d_ff;
        block.prefill = true;
        x = g.AddLayer(LayerKind::kDecoderBlock,
                       "pre" + std::to_string(i), {x}, block);
    }

    T4I_CHECK(g.Finalize().ok(), "prefill graph failed to finalize");
    return g;
}

Graph
BuildDecodeStep(const std::string& name, int layers, int64_t d_model,
                int64_t num_heads, int64_t d_ff, int64_t context_len,
                int64_t vocab)
{
    Graph g(name);
    int ids = g.AddInput("token", {1});

    LayerParams embed;
    embed.vocab = vocab;
    embed.embed_dim = d_model;
    embed.lookups_per_sample = 1;
    int x = g.AddLayer(LayerKind::kEmbedding, "embed", {ids}, embed);

    for (int i = 0; i < layers; ++i) {
        LayerParams block;
        block.seq_len = 1;
        block.kv_len = context_len;
        block.d_model = d_model;
        block.num_heads = num_heads;
        block.d_ff = d_ff;
        x = g.AddLayer(LayerKind::kDecoderBlock,
                       "dec" + std::to_string(i), {x}, block);
    }

    // Per-token LM head onto a sampled vocabulary shard.
    LayerParams head;
    head.in_features = d_model;
    head.out_features = vocab / 8;
    g.AddLayer(LayerKind::kDense, "lm_head", {x}, head);

    T4I_CHECK(g.Finalize().ok(), "decode-step graph failed to finalize");
    return g;
}

Graph
BuildDlrm(const std::string& name, int num_tables, int64_t rows_per_table,
          int64_t embed_dim, int64_t lookups_per_table,
          int64_t dense_features)
{
    Graph g(name);

    // Sparse side: several embedding tables gathered independently.
    std::vector<int> gathered;
    for (int t = 0; t < num_tables; ++t) {
        int ids = g.AddInput("ids" + std::to_string(t),
                             {lookups_per_table});
        LayerParams embed;
        embed.vocab = rows_per_table;
        embed.embed_dim = embed_dim;
        embed.lookups_per_sample = lookups_per_table;
        gathered.push_back(g.AddLayer(LayerKind::kEmbedding,
                                      "table" + std::to_string(t),
                                      {ids}, embed));
    }

    // Dense side: bottom MLP on the continuous features.
    int dense_in = g.AddInput("dense", {dense_features});
    LayerParams b0;
    b0.in_features = dense_features;
    b0.out_features = 512;
    b0.activation = Activation::kRelu;
    int bottom = g.AddLayer(LayerKind::kDense, "bot0", {dense_in}, b0);
    LayerParams b1;
    b1.in_features = 512;
    b1.out_features = embed_dim;
    b1.activation = Activation::kRelu;
    bottom = g.AddLayer(LayerKind::kDense, "bot1", {bottom}, b1);

    // Feature interaction: concatenate everything (pairwise dot
    // products are modeled by the concat + first top layer).
    std::vector<int> concat_inputs = gathered;
    concat_inputs.push_back(bottom);
    int interact = g.AddLayer(LayerKind::kConcat, "interact",
                              concat_inputs, LayerParams{});

    const int64_t interact_width =
        num_tables * lookups_per_table * embed_dim + embed_dim;
    LayerParams t0;
    t0.in_features = interact_width;
    t0.out_features = 1024;
    t0.activation = Activation::kRelu;
    int top = g.AddLayer(LayerKind::kDense, "top0", {interact}, t0);
    LayerParams t1;
    t1.in_features = 1024;
    t1.out_features = 256;
    t1.activation = Activation::kRelu;
    top = g.AddLayer(LayerKind::kDense, "top1", {top}, t1);
    LayerParams t2;
    t2.in_features = 256;
    t2.out_features = 1;
    g.AddLayer(LayerKind::kDense, "ctr", {top}, t2);

    T4I_CHECK(g.Finalize().ok(), "DLRM graph failed to finalize");
    return g;
}

Graph
BuildSsdDetector(const std::string& name)
{
    // ResNet-34-ish backbone trunk + extra downsampling features +
    // class/box conv heads at three scales, concatenated for the host.
    Graph g(name);
    int x = g.AddInput("image", {300, 300, 3});

    auto conv = [&g](const std::string& n, int input, int64_t k,
                     int64_t stride, int64_t pad, int64_t out) {
        LayerParams p;
        p.kernel_h = k;
        p.kernel_w = k;
        p.stride = stride;
        p.pad = pad;
        p.out_channels = out;
        p.activation = Activation::kRelu;
        return g.AddLayer(LayerKind::kConv2d, n, {input}, p);
    };

    x = conv("stem", x, 7, 2, 3, 64);
    LayerParams pool;
    pool.kernel_h = 3;
    pool.kernel_w = 3;
    pool.stride = 2;
    x = g.AddLayer(LayerKind::kMaxPool, "pool0", {x}, pool);

    // Backbone stages (plain 3x3 pairs, ResNet-34 flavor).
    const int64_t stage_channels[] = {64, 128, 256};
    for (size_t s = 0; s < std::size(stage_channels); ++s) {
        const int64_t c = stage_channels[s];
        const std::string tag = "s" + std::to_string(s);
        x = conv(tag + ".a", x, 3, s == 0 ? 1 : 2, 1, c);
        x = conv(tag + ".b", x, 3, 1, 1, c);
        x = conv(tag + ".c", x, 3, 1, 1, c);
    }
    int feat38 = x;  // ~38x38x256 scale

    int feat19 = conv("extra0", feat38, 3, 2, 1, 512);
    int feat10 = conv("extra1", feat19, 3, 2, 1, 512);

    // Per-scale class + box heads (4 anchors, 81 classes, 4 coords).
    std::vector<int> heads;
    int scale_idx = 0;
    for (int feat : {feat38, feat19, feat10}) {
        const std::string tag = "head" + std::to_string(scale_idx++);
        heads.push_back(conv(tag + ".cls", feat, 3, 1, 1, 4 * 81));
        heads.push_back(conv(tag + ".box", feat, 3, 1, 1, 4 * 4));
    }
    g.AddLayer(LayerKind::kConcat, "detections", heads, LayerParams{});

    T4I_CHECK(g.Finalize().ok(), "SSD graph failed to finalize");
    return g;
}

Graph
BuildMobileNetish(const std::string& name)
{
    Graph g(name);
    int x = g.AddInput("image", {224, 224, 3});

    auto conv = [&g](const std::string& n, int input, int64_t k,
                     int64_t stride, int64_t pad, int64_t out) {
        LayerParams p;
        p.kernel_h = k;
        p.kernel_w = k;
        p.stride = stride;
        p.pad = pad;
        p.out_channels = out;
        p.activation = Activation::kRelu;
        return g.AddLayer(LayerKind::kConv2d, n, {input}, p);
    };
    auto dwsep = [&](const std::string& n, int input, int64_t stride,
                     int64_t out) {
        LayerParams dw;
        dw.kernel_h = 3;
        dw.kernel_w = 3;
        dw.stride = stride;
        dw.pad = 1;
        dw.activation = Activation::kRelu;
        int d = g.AddLayer(LayerKind::kDepthwiseConv2d, n + ".dw",
                           {input}, dw);
        return conv(n + ".pw", d, 1, 1, 0, out);
    };

    x = conv("stem", x, 3, 2, 1, 32);
    const struct { int64_t stride; int64_t out; } kBlocks[] = {
        {1, 64},  {2, 128}, {1, 128}, {2, 256},
        {1, 256}, {2, 512}, {1, 512}, {1, 512},
        {2, 1024}, {1, 1024},
    };
    for (size_t i = 0; i < std::size(kBlocks); ++i) {
        x = dwsep("b" + std::to_string(i), x, kBlocks[i].stride,
                  kBlocks[i].out);
    }
    x = g.AddLayer(LayerKind::kGlobalPool, "gap", {x}, LayerParams{});
    LayerParams fc;
    fc.in_features = 1024;
    fc.out_features = 1000;
    g.AddLayer(LayerKind::kDense, "logits", {x}, fc);

    T4I_CHECK(g.Finalize().ok(), "MobileNet graph failed to finalize");
    return g;
}

}  // namespace t4i
