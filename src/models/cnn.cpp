/**
 * @file
 * Convolutional models: the paper's CNN0/CNN1 stand-ins and MLPerf-style
 * ResNet-50. CNNs are the compute-bound end of the zoo — hundreds of
 * FLOPs per weight byte — so they ride the roofline's flat top and gain
 * the most from the MXUs.
 */
#include "src/models/zoo.h"

namespace t4i {
namespace {

/** Adds conv + ReLU; returns the new layer id. */
int
AddConv(Graph& g, const std::string& name, int input, int64_t kernel,
        int64_t stride, int64_t pad, int64_t out_channels,
        Activation act = Activation::kRelu)
{
    LayerParams p;
    p.kernel_h = kernel;
    p.kernel_w = kernel;
    p.stride = stride;
    p.pad = pad;
    p.out_channels = out_channels;
    p.activation = act;
    return g.AddLayer(LayerKind::kConv2d, name, {input}, p);
}

/** Adds a residual bottleneck block (1x1 -> 3x3 -> 1x1 + skip add). */
int
AddBottleneck(Graph& g, const std::string& name, int input,
              int64_t in_channels, int64_t bottleneck, int64_t stride)
{
    const int64_t out_channels = bottleneck * 4;
    int a = AddConv(g, name + ".a", input, 1, 1, 0, bottleneck);
    int b = AddConv(g, name + ".b", a, 3, stride, 1, bottleneck);
    int c = AddConv(g, name + ".c", b, 1, 1, 0, out_channels,
                    Activation::kNone);
    int skip = input;
    if (stride != 1 || in_channels != out_channels) {
        skip = AddConv(g, name + ".proj", input, 1, stride, 0,
                       out_channels, Activation::kNone);
    }
    LayerParams add;
    add.arity = 2;
    add.flops_per_element = 1.0;
    add.activation = Activation::kRelu;
    return g.AddLayer(LayerKind::kElementwise, name + ".add", {c, skip},
                      add);
}

Graph
BuildResNetImpl(const std::string& name,
                const std::vector<int>& blocks_per_stage,
                int64_t base_channels, int64_t classes)
{
    Graph g(name);
    int x = g.AddInput("image", {224, 224, 3});
    x = AddConv(g, "stem", x, 7, 2, 3, base_channels);

    LayerParams pool;
    pool.kernel_h = 3;
    pool.kernel_w = 3;
    pool.stride = 2;
    x = g.AddLayer(LayerKind::kMaxPool, "pool0", {x}, pool);

    int64_t in_channels = base_channels;
    for (size_t stage = 0; stage < blocks_per_stage.size(); ++stage) {
        const int64_t bottleneck = base_channels << stage;
        for (int blk = 0; blk < blocks_per_stage[stage]; ++blk) {
            const int64_t stride = (stage > 0 && blk == 0) ? 2 : 1;
            x = AddBottleneck(
                g, "s" + std::to_string(stage) + "b" + std::to_string(blk),
                x, in_channels, bottleneck, stride);
            in_channels = bottleneck * 4;
        }
    }

    x = g.AddLayer(LayerKind::kGlobalPool, "gap", {x}, LayerParams{});
    LayerParams fc;
    fc.in_features = in_channels;
    fc.out_features = classes;
    g.AddLayer(LayerKind::kDense, "logits", {x}, fc);

    T4I_CHECK(g.Finalize().ok(), "ResNet graph failed to finalize");
    return g;
}

}  // namespace

Graph
BuildResNetish(const std::string& name, int blocks_per_stage,
               int64_t base_channels)
{
    return BuildResNetImpl(
        name,
        {blocks_per_stage, blocks_per_stage, blocks_per_stage,
         blocks_per_stage},
        base_channels, 1000);
}

Graph
BuildResNet50()
{
    // The canonical [3, 4, 6, 3] bottleneck arrangement.
    return BuildResNetImpl("ResNet50", {3, 4, 6, 3}, 64, 1000);
}

Graph
BuildSmallCnn(const std::string& name)
{
    // An inception-flavored detector backbone: aggressive early
    // downsampling, mixed 1x1/3x3 stages, small classifier.
    Graph g(name);
    int x = g.AddInput("image", {224, 224, 3});
    x = AddConv(g, "stem0", x, 3, 2, 1, 32);
    x = AddConv(g, "stem1", x, 3, 1, 1, 48);

    LayerParams pool;
    pool.kernel_h = 3;
    pool.kernel_w = 3;
    pool.stride = 2;
    x = g.AddLayer(LayerKind::kMaxPool, "pool0", {x}, pool);

    const struct { int64_t squeeze; int64_t expand; } kStages[] = {
        {64, 192}, {96, 288}, {128, 384}, {192, 576},
    };
    for (size_t s = 0; s < std::size(kStages); ++s) {
        const std::string tag = "mix" + std::to_string(s);
        x = AddConv(g, tag + ".squeeze", x, 1, 1, 0, kStages[s].squeeze);
        x = AddConv(g, tag + ".expand", x, 3, 1, 1, kStages[s].expand);
        if (s + 1 < std::size(kStages)) {
            LayerParams dp;
            dp.kernel_h = 3;
            dp.kernel_w = 3;
            dp.stride = 2;
            x = g.AddLayer(LayerKind::kMaxPool, tag + ".pool", {x}, dp);
        }
    }

    x = g.AddLayer(LayerKind::kGlobalPool, "gap", {x}, LayerParams{});
    LayerParams fc;
    fc.in_features = 576;
    fc.out_features = 1000;
    g.AddLayer(LayerKind::kDense, "logits", {x}, fc);

    T4I_CHECK(g.Finalize().ok(), "SmallCnn graph failed to finalize");
    return g;
}

}  // namespace t4i
