/**
 * @file
 * The eight production apps, the year-scaled suite (Lesson 8) and the
 * fleet-mix history (Lesson 9).
 *
 * Shapes are synthetic stand-ins chosen so that each app's weight
 * footprint, FLOPs and operational intensity land in the band the TPU
 * papers report for its domain (see DESIGN.md "Substitutions"):
 *   MLPs  — 100s of MiB of embeddings, ops/byte O(10)
 *   CNNs  — 10s of MiB of weights, ops/byte O(100-1000)
 *   RNNs  — 10s-100 MiB, long dependent chains
 *   BERTs — 100s of MiB, high intensity at long sequence lengths
 */
#include "src/models/zoo.h"

#include <cmath>

#include "src/common/strings.h"

namespace t4i {

const char*
AppDomainName(AppDomain domain)
{
    switch (domain) {
      case AppDomain::kMlp: return "MLP";
      case AppDomain::kCnn: return "CNN";
      case AppDomain::kRnn: return "RNN";
      case AppDomain::kBert: return "BERT";
    }
    return "?";
}

namespace {

App
MakeApp(std::string name, AppDomain domain, Graph graph, double slo_ms,
        int64_t typical_batch, double fleet_share)
{
    App app{std::move(name), domain, std::move(graph), slo_ms,
            typical_batch, fleet_share};
    return app;
}

/** Builds the suite with capacity multiplier `scale` (1.0 = 2017). */
std::vector<App>
BuildSuite(double scale)
{
    // `scale` multiplies total weight bytes. Table/row-count dimensions
    // carry weights linearly, so they scale by `scale`; hidden widths
    // carry weights quadratically, so they scale by sqrt(scale).
    auto s = [scale](int64_t v) {
        return static_cast<int64_t>(std::llround(
            static_cast<double>(v) * scale));
    };
    const double wscale = std::sqrt(scale);
    // Width dimensions must stay multiples of 64 for the graphs to
    // compose cleanly.
    auto s64 = [wscale](int64_t v) {
        const auto x = static_cast<int64_t>(std::llround(
            static_cast<double>(v) * wscale));
        return std::max<int64_t>(64, (x / 64) * 64);
    };

    std::vector<App> apps;

    // MLP0: large ranking model. ~50M embedding rows at dim 64 would be
    // fleet-scale; we keep 4M x 96 (~768 MiB bf16) plus a 4-layer tower.
    apps.push_back(MakeApp(
        "MLP0", AppDomain::kMlp,
        BuildMlp("MLP0", s(4'000'000), 96, 80, 80 * 96,
                 {s64(2048), s64(1024), s64(512), 1}),
        7.0, 128, 0.25));

    // MLP1: smaller ranking model with a deeper tower.
    apps.push_back(MakeApp(
        "MLP1", AppDomain::kMlp,
        BuildMlp("MLP1", s(1'000'000), 64, 32, 32 * 64,
                 {s64(1024), s64(1024), s64(512), s64(256), 1}),
        7.0, 128, 0.10));

    // CNN0: deep residual network (ResNet-50-class at scale 1).
    apps.push_back(MakeApp(
        "CNN0", AppDomain::kCnn,
        BuildResNetish("CNN0", std::max<int>(2, static_cast<int>(
                                  std::llround(3 * scale))),
                       64),
        10.0, 16, 0.06));

    // CNN1: small detector backbone.
    apps.push_back(MakeApp("CNN1", AppDomain::kCnn,
                           BuildSmallCnn("CNN1"), 5.0, 8, 0.06));

    // RNN0: speech-style 5-layer LSTM stack.
    apps.push_back(MakeApp(
        "RNN0", AppDomain::kRnn,
        BuildLstmStack("RNN0", 32'000, s64(512), 5, s64(1024), 80),
        100.0, 16, 0.15));

    // RNN1: translation-style 2-layer wide LSTM.
    apps.push_back(MakeApp(
        "RNN1", AppDomain::kRnn,
        BuildLstmStack("RNN1", 32'000, s64(1024), 2, s64(1536), 96),
        50.0, 16, 0.10));

    // BERT0: BERT-base-class encoder.
    apps.push_back(MakeApp(
        "BERT0", AppDomain::kBert,
        BuildBert("BERT0", 12, s64(768), 12, s64(3072), 128, 30'522),
        15.0, 32, 0.18));

    // BERT1: BERT-large-class encoder at shorter sequence length.
    apps.push_back(MakeApp(
        "BERT1", AppDomain::kBert,
        BuildBert("BERT1", 24, s64(1024), 16, s64(4096), 192, 30'522),
        30.0, 16, 0.10));

    return apps;
}

}  // namespace

std::vector<App>
ProductionApps()
{
    return BuildSuite(1.0);
}

std::vector<std::string>
ProductionAppNames()
{
    return {"MLP0", "MLP1", "CNN0", "CNN1",
            "RNN0", "RNN1", "BERT0", "BERT1"};
}

StatusOr<App>
BuildApp(const std::string& name)
{
    for (auto& app : ProductionApps()) {
        if (app.name == name) return std::move(app);
    }
    return Status::NotFound("unknown app '" + name + "'");
}

std::vector<App>
AppsOfYear(int year)
{
    // Lesson 8: capacities grow ~1.5x per year; 2017 is the reference.
    const double scale = std::pow(1.5, year - 2017);
    return BuildSuite(scale);
}

std::vector<FleetMix>
FleetMixHistory()
{
    // 2016 numbers follow the TPUv1 paper's published mix
    // (61% MLP / 29% LSTM / 5% CNN / 5% other, folded into MLP);
    // later years shift toward CNN and then BERT.
    return {
        {2016, 0.66, 0.05, 0.29, 0.00},
        {2017, 0.61, 0.08, 0.29, 0.02},
        {2018, 0.52, 0.12, 0.26, 0.10},
        {2019, 0.42, 0.13, 0.22, 0.23},
        {2020, 0.35, 0.12, 0.25, 0.28},
    };
}

}  // namespace t4i
