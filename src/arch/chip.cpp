#include "src/arch/chip.h"

namespace t4i {

const char*
CoolingName(Cooling cooling)
{
    switch (cooling) {
      case Cooling::kAir: return "air";
      case Cooling::kLiquid: return "liquid";
    }
    return "?";
}

double
ChipConfig::PeakMacsPerCycle(DType dtype) const
{
    const double per_mxu =
        static_cast<double>(mxu.rows) * static_cast<double>(mxu.cols);
    double macs = per_mxu * mxu.count * num_cores;
    switch (dtype) {
      case DType::kInt8:
        if (!supports_int8) return 0.0;
        return macs * mxu.int8_rate;
      case DType::kBf16:
        if (!supports_bf16) return 0.0;
        return macs;
      case DType::kFp32:
        // fp32 matmul runs at a quarter rate through the bf16 MXU
        // (pass-splitting), the standard technique.
        return supports_bf16 ? macs / 4.0 : 0.0;
    }
    return 0.0;
}

double
ChipConfig::PeakFlops(DType dtype) const
{
    return 2.0 * PeakMacsPerCycle(dtype) * clock_hz;
}

double
ChipConfig::PeakVectorFlops() const
{
    return static_cast<double>(vpu_lanes) * vpu_ops_per_lane * clock_hz *
           num_cores;
}

double
ChipConfig::RidgeOpsPerByte(DType dtype) const
{
    if (dram_bw_Bps <= 0.0) return 0.0;
    return PeakFlops(dtype) / dram_bw_Bps;
}

}  // namespace t4i
