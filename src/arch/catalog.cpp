/**
 * @file
 * Catalog values follow the paper's Table 1 and public spec sheets.
 * Where the paper gives a bound ("< 400 mm^2") we use the bound.
 */
#include "src/arch/catalog.h"

namespace t4i {

ChipConfig
Tpu_v1()
{
    ChipConfig c;
    c.name = "TPUv1";
    c.year = 2015;
    c.tech_nm = 28;
    c.die_mm2 = 330.0;
    c.clock_hz = 700e6;
    c.num_cores = 1;
    // One 256x256 int8 systolic array; no bf16 datapath.
    c.mxu = {256, 256, 1, 1.0};
    c.supports_bf16 = false;
    c.supports_int8 = true;
    c.vpu_lanes = 256;  // the fixed-function activation pipeline
    c.vpu_ops_per_lane = 1.0;
    c.flexible_vpu = false;
    c.vmem_bytes = 28 * kMiB;  // 24 MiB unified buffer + 4 MiB accumulators
    c.cmem_bytes = 0;
    c.dram_bytes = 8 * kGiB;   // DDR3
    c.dram_bw_Bps = 34e9;
    c.dram_latency_s = 80e-9;
    c.ici_links = 0;
    c.pcie_bw_Bps = 14e9;      // PCIe gen3 x16 effective
    c.dma_engines = 2;
    c.tdp_w = 75.0;
    c.idle_w = 28.0;
    c.cooling = Cooling::kAir;
    return c;
}

ChipConfig
Tpu_v2()
{
    ChipConfig c;
    c.name = "TPUv2";
    c.year = 2017;
    c.tech_nm = 16;
    c.die_mm2 = 625.0;
    c.clock_hz = 700e6;
    c.num_cores = 2;
    c.mxu = {128, 128, 1, 1.0};  // one MXU per core
    c.supports_bf16 = true;
    c.supports_int8 = false;
    c.vpu_lanes = 128 * 8;
    c.vmem_bytes = 32 * kMiB;
    c.cmem_bytes = 0;
    c.dram_bytes = 16 * kGiB;    // HBM
    c.dram_bw_Bps = 700e9;
    c.dram_latency_s = 350e-9;
    c.ici_links = 4;
    c.ici_bw_Bps_per_link = 62e9;   // 496 Gb/s
    c.pcie_bw_Bps = 14e9;
    c.dma_engines = 4;
    c.tdp_w = 280.0;
    c.idle_w = 82.0;
    c.cooling = Cooling::kAir;
    return c;
}

ChipConfig
Tpu_v3()
{
    ChipConfig c;
    c.name = "TPUv3";
    c.year = 2018;
    c.tech_nm = 16;
    c.die_mm2 = 700.0;
    c.clock_hz = 940e6;
    c.num_cores = 2;
    c.mxu = {128, 128, 2, 1.0};  // two MXUs per core
    c.supports_bf16 = true;
    c.supports_int8 = false;
    c.vpu_lanes = 128 * 8;
    c.vmem_bytes = 32 * kMiB;
    c.cmem_bytes = 0;
    c.dram_bytes = 32 * kGiB;
    c.dram_bw_Bps = 900e9;
    c.dram_latency_s = 350e-9;
    c.ici_links = 4;
    c.ici_bw_Bps_per_link = 82e9;   // 656 Gb/s
    c.pcie_bw_Bps = 14e9;
    c.dma_engines = 4;
    c.tdp_w = 450.0;
    c.idle_w = 175.0;
    c.cooling = Cooling::kLiquid;
    return c;
}

ChipConfig
Tpu_v4i()
{
    ChipConfig c;
    c.name = "TPUv4i";
    c.year = 2020;
    c.tech_nm = 7;
    c.die_mm2 = 400.0;
    c.clock_hz = 1.05e9;
    c.num_cores = 1;
    c.mxu = {128, 128, 4, 1.0};  // four MXUs, one TensorCore
    c.supports_bf16 = true;
    c.supports_int8 = true;
    c.vpu_lanes = 128 * 8;
    c.vmem_bytes = 16 * kMiB;
    c.cmem_bytes = 128 * kMiB;   // the CMEM (Lesson 1 / E8)
    c.cmem_bw_Bps = 3.0e12;      // wide on-chip port
    c.dram_bytes = 8 * kGiB;
    c.dram_bw_Bps = 614e9;       // HBM2 @ 614 GB/s
    c.dram_latency_s = 350e-9;
    c.ici_links = 2;
    c.ici_bw_Bps_per_link = 50e9;
    c.pcie_bw_Bps = 14e9;
    c.dma_engines = 8;
    c.tdp_w = 175.0;
    c.idle_w = 55.0;
    c.cooling = Cooling::kAir;   // Lesson 5
    return c;
}

ChipConfig
Tpu_v4()
{
    ChipConfig c = Tpu_v4i();
    c.name = "TPUv4";
    c.year = 2020;
    c.num_cores = 2;             // two TensorCores -> 2x peak
    c.vmem_bytes = 32 * kMiB;
    c.cmem_bytes = 128 * kMiB;
    c.dram_bytes = 32 * kGiB;
    c.dram_bw_Bps = 1200e9;
    c.ici_links = 6;
    c.ici_bw_Bps_per_link = 50e9;
    c.tdp_w = 300.0;
    c.idle_w = 90.0;
    c.cooling = Cooling::kLiquid;
    return c;
}

ChipConfig
GpuT4()
{
    ChipConfig c;
    c.name = "T4";
    c.year = 2018;
    c.tech_nm = 16;              // TSMC 12FFN, a 16 nm derivative
    c.die_mm2 = 545.0;
    c.clock_hz = 1.35e9;         // sustained boost
    c.num_cores = 1;
    // Model the 320 tensor cores as an aggregate 64x64x4 MAC pool with
    // fp16 peak ~65 TFLOPS at sustained clocks; int8 runs at 2x.
    c.mxu = {64, 64, 6, 2.0};
    // Every SM has its own scheduler; descriptor issue is not the
    // GPU's bottleneck.
    c.mxu.issue_cycles = 8;
    c.supports_bf16 = true;      // stands in for fp16 tensor-core mode
    c.supports_int8 = true;
    // 70 W cannot sustain boost clocks, and SIMT scheduling reaches a
    // fraction of tensor-core peak on inference kernels; MLPerf v0.7
    // submissions put sustained T4 throughput well under half of spec
    // peak on these model classes.
    c.sustained_compute_fraction = 0.37;
    c.vpu_lanes = 2560;          // CUDA cores
    c.vpu_ops_per_lane = 2.0;
    c.vmem_bytes = 6 * kMiB;     // L2
    c.cmem_bytes = 0;
    c.dram_bytes = 16 * kGiB;    // GDDR6
    c.dram_bw_Bps = 320e9;
    c.dram_latency_s = 250e-9;
    c.ici_links = 0;
    c.pcie_bw_Bps = 14e9;
    c.dma_engines = 4;
    c.tdp_w = 70.0;
    c.idle_w = 17.0;
    c.cooling = Cooling::kAir;
    return c;
}

std::vector<ChipConfig>
ChipCatalog()
{
    return {Tpu_v1(), Tpu_v2(), Tpu_v3(), Tpu_v4i(), Tpu_v4(), GpuT4()};
}

StatusOr<ChipConfig>
ChipByName(const std::string& name)
{
    for (auto& chip : ChipCatalog()) {
        if (chip.name == name) return chip;
    }
    return Status::NotFound("unknown chip '" + name + "'");
}

}  // namespace t4i
