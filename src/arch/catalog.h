/**
 * @file
 * The chip catalog: configurations reproducing the paper's Table 1 row
 * for each TPU generation, plus the NVIDIA T4-class baseline the paper
 * compares against. Published spec-sheet numbers; see E1.
 */
#ifndef T4I_ARCH_CATALOG_H
#define T4I_ARCH_CATALOG_H

#include <vector>

#include "src/arch/chip.h"
#include "src/common/status.h"

namespace t4i {

/** TPUv1 (2015): 28 nm, int8-only, 92 TOPS, DDR3. */
ChipConfig Tpu_v1();

/** TPUv2 (2017): 16 nm, bf16, 46 TFLOPS, HBM, liquid? no — air, training. */
ChipConfig Tpu_v2();

/** TPUv3 (2018): 16 nm, bf16, 123 TFLOPS, liquid cooled, training. */
ChipConfig Tpu_v3();

/** TPUv4i (2020): 7 nm, bf16+int8, 138 TFLOPS, 128 MiB CMEM, air. */
ChipConfig Tpu_v4i();

/** TPUv4 (2020): 7 nm training sibling, 275 TFLOPS, liquid. */
ChipConfig Tpu_v4();

/** NVIDIA T4-class inference GPU baseline (2018): 12->16 nm bucket. */
ChipConfig GpuT4();

/** All catalog chips in generation order (v1, v2, v3, v4i, v4, T4). */
std::vector<ChipConfig> ChipCatalog();

/** Looks a chip up by name. */
StatusOr<ChipConfig> ChipByName(const std::string& name);

}  // namespace t4i

#endif  // T4I_ARCH_CATALOG_H
