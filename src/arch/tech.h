/**
 * @file
 * Technology-node model (Lesson 1: logic, wires, SRAM and DRAM improve
 * unequally).
 *
 * Values are relative to the 45 nm node and follow the publicly reported
 * trend the paper summarizes: logic density/energy improves close to the
 * classic rate each generation, SRAM density improves noticeably slower,
 * wire delay per mm barely improves (it *worsens* relative to gate
 * delay), and DRAM/HBM bandwidth grows on its own curve. The E3 bench
 * prints this table; the power model consumes the energy columns.
 */
#ifndef T4I_ARCH_TECH_H
#define T4I_ARCH_TECH_H

#include <vector>

#include "src/common/status.h"

namespace t4i {

/** Relative characteristics of one process node (45 nm == 1.0). */
struct TechNode {
    int nm = 45;
    int year = 2008;
    double logic_density = 1.0;  ///< transistors per mm^2, relative
    double sram_density = 1.0;   ///< SRAM bits per mm^2, relative
    double logic_energy = 1.0;   ///< energy per logic op, relative (lower=better)
    double sram_energy = 1.0;    ///< energy per SRAM access, relative
    double wire_delay = 1.0;     ///< delay per mm at matched width, relative
    double dram_bw = 1.0;        ///< commodity DRAM/HBM GB/s per device, rel.
};

/** The node ladder used by the TPU generations: 45/28/16/7 nm (+5 nm). */
const std::vector<TechNode>& TechLadder();

/** Looks up a node by feature size. */
StatusOr<TechNode> TechNodeOf(int nm);

/**
 * Energy per MAC in picojoules at a node, for a given operand width in
 * bits. Calibrated so that a 16-bit MAC at 45 nm costs ~2.5 pJ (Horowitz
 * ISSCC'14 style numbers) and scales with `logic_energy` and operand
 * width.
 */
double MacEnergyPj(const TechNode& node, int operand_bits);

/** Energy per byte of SRAM access (pJ/B) at a node. */
double SramEnergyPjPerByte(const TechNode& node);

/** Energy per byte of DRAM/HBM access (pJ/B) at a node's era. */
double DramEnergyPjPerByte(const TechNode& node);

}  // namespace t4i

#endif  // T4I_ARCH_TECH_H
