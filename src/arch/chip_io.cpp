#include "src/arch/chip_io.h"

#include <cstdio>
#include <functional>
#include <map>

#include "src/arch/catalog.h"
#include "src/common/strings.h"

namespace t4i {
namespace {

std::string
Trim(const std::string& raw)
{
    size_t first = raw.find_first_not_of(" \t\r");
    size_t last = raw.find_last_not_of(" \t\r");
    if (first == std::string::npos) return "";
    return raw.substr(first, last - first + 1);
}

/** Field table: name -> (setter from string, getter to string). */
struct Field {
    std::function<Status(ChipConfig*, const std::string&)> set;
    std::function<std::string(const ChipConfig&)> get;
};

StatusOr<double>
ParseDouble(const std::string& key, const std::string& value)
{
    char* end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad number for " + key + ": '" +
                                       value + "'");
    }
    return v;
}

Field
DoubleField(double ChipConfig::* member)
{
    return Field{
        [member](ChipConfig* chip, const std::string& value) {
            auto v = ParseDouble("field", value);
            T4I_RETURN_IF_ERROR(v.status());
            chip->*member = v.value();
            return Status::Ok();
        },
        [member](const ChipConfig& chip) {
            return StrFormat("%.9g", chip.*member);
        }};
}

Field
IntField(int ChipConfig::* member)
{
    return Field{
        [member](ChipConfig* chip, const std::string& value) {
            auto v = ParseDouble("field", value);
            T4I_RETURN_IF_ERROR(v.status());
            chip->*member = static_cast<int>(v.value());
            return Status::Ok();
        },
        [member](const ChipConfig& chip) {
            return StrFormat("%d", chip.*member);
        }};
}

Field
Int64Field(int64_t ChipConfig::* member)
{
    return Field{
        [member](ChipConfig* chip, const std::string& value) {
            auto v = ParseDouble("field", value);
            T4I_RETURN_IF_ERROR(v.status());
            chip->*member = static_cast<int64_t>(v.value());
            return Status::Ok();
        },
        [member](const ChipConfig& chip) {
            return StrFormat("%lld",
                             static_cast<long long>(chip.*member));
        }};
}

Field
BoolField(bool ChipConfig::* member)
{
    return Field{
        [member](ChipConfig* chip, const std::string& value) {
            if (value != "true" && value != "false") {
                return Status::InvalidArgument(
                    "expected true/false, got '" + value + "'");
            }
            chip->*member = value == "true";
            return Status::Ok();
        },
        [member](const ChipConfig& chip) {
            return std::string(chip.*member ? "true" : "false");
        }};
}

const std::map<std::string, Field>&
FieldTable()
{
    static const auto* table = new std::map<std::string, Field>{
        {"name",
         {[](ChipConfig* chip, const std::string& value) {
              chip->name = value;
              return Status::Ok();
          },
          [](const ChipConfig& chip) { return chip.name; }}},
        {"year", IntField(&ChipConfig::year)},
        {"tech_nm", IntField(&ChipConfig::tech_nm)},
        {"die_mm2", DoubleField(&ChipConfig::die_mm2)},
        {"clock_hz", DoubleField(&ChipConfig::clock_hz)},
        {"num_cores", IntField(&ChipConfig::num_cores)},
        {"mxu_rows",
         {[](ChipConfig* chip, const std::string& value) {
              auto v = ParseDouble("mxu_rows", value);
              T4I_RETURN_IF_ERROR(v.status());
              chip->mxu.rows = static_cast<int>(v.value());
              chip->mxu.cols = static_cast<int>(v.value());
              return Status::Ok();
          },
          [](const ChipConfig& chip) {
              return StrFormat("%d", chip.mxu.rows);
          }}},
        {"mxu_count",
         {[](ChipConfig* chip, const std::string& value) {
              auto v = ParseDouble("mxu_count", value);
              T4I_RETURN_IF_ERROR(v.status());
              chip->mxu.count = static_cast<int>(v.value());
              return Status::Ok();
          },
          [](const ChipConfig& chip) {
              return StrFormat("%d", chip.mxu.count);
          }}},
        {"mxu_int8_rate",
         {[](ChipConfig* chip, const std::string& value) {
              auto v = ParseDouble("mxu_int8_rate", value);
              T4I_RETURN_IF_ERROR(v.status());
              chip->mxu.int8_rate = v.value();
              return Status::Ok();
          },
          [](const ChipConfig& chip) {
              return StrFormat("%.9g", chip.mxu.int8_rate);
          }}},
        {"vpu_lanes", IntField(&ChipConfig::vpu_lanes)},
        {"vpu_ops_per_lane",
         DoubleField(&ChipConfig::vpu_ops_per_lane)},
        {"sustained_compute_fraction",
         DoubleField(&ChipConfig::sustained_compute_fraction)},
        {"vmem_bytes", Int64Field(&ChipConfig::vmem_bytes)},
        {"cmem_bytes", Int64Field(&ChipConfig::cmem_bytes)},
        {"cmem_bw_Bps", DoubleField(&ChipConfig::cmem_bw_Bps)},
        {"dram_bytes", Int64Field(&ChipConfig::dram_bytes)},
        {"dram_bw_Bps", DoubleField(&ChipConfig::dram_bw_Bps)},
        {"dram_latency_s", DoubleField(&ChipConfig::dram_latency_s)},
        {"ici_links", IntField(&ChipConfig::ici_links)},
        {"ici_bw_Bps_per_link",
         DoubleField(&ChipConfig::ici_bw_Bps_per_link)},
        {"pcie_bw_Bps", DoubleField(&ChipConfig::pcie_bw_Bps)},
        {"dma_engines", IntField(&ChipConfig::dma_engines)},
        {"tdp_w", DoubleField(&ChipConfig::tdp_w)},
        {"idle_w", DoubleField(&ChipConfig::idle_w)},
        {"cooling",
         {[](ChipConfig* chip, const std::string& value) {
              if (value == "air") {
                  chip->cooling = Cooling::kAir;
              } else if (value == "liquid") {
                  chip->cooling = Cooling::kLiquid;
              } else {
                  return Status::InvalidArgument(
                      "cooling must be air|liquid");
              }
              return Status::Ok();
          },
          [](const ChipConfig& chip) {
              return std::string(CoolingName(chip.cooling));
          }}},
        {"supports_bf16", BoolField(&ChipConfig::supports_bf16)},
        {"supports_int8", BoolField(&ChipConfig::supports_int8)},
        {"flexible_vpu", BoolField(&ChipConfig::flexible_vpu)},
    };
    return *table;
}

}  // namespace

std::string
ChipToText(const ChipConfig& chip)
{
    std::string out =
        "# tpu4sim chip configuration (key = value; omitted keys keep "
        "TPUv4i defaults)\n";
    for (const auto& [key, field] : FieldTable()) {
        out += key + " = " + field.get(chip) + "\n";
    }
    return out;
}

StatusOr<ChipConfig>
ChipFromText(const std::string& text)
{
    ChipConfig chip = Tpu_v4i();
    chip.name = "custom";

    size_t pos = 0;
    int line_no = 0;
    while (pos < text.size()) {
        size_t eol = text.find('\n', pos);
        if (eol == std::string::npos) eol = text.size();
        std::string line = Trim(text.substr(pos, eol - pos));
        pos = eol + 1;
        ++line_no;
        if (line.empty() || line[0] == '#') continue;

        const size_t eq = line.find('=');
        if (eq == std::string::npos) {
            return Status::InvalidArgument(StrFormat(
                "line %d: expected 'key = value'", line_no));
        }
        const std::string key = Trim(line.substr(0, eq));
        const std::string value = Trim(line.substr(eq + 1));
        auto it = FieldTable().find(key);
        if (it == FieldTable().end()) {
            return Status::InvalidArgument(StrFormat(
                "line %d: unknown key '%s'", line_no, key.c_str()));
        }
        Status status = it->second.set(&chip, value);
        if (!status.ok()) {
            return Status::InvalidArgument(StrFormat(
                "line %d (%s): %s", line_no, key.c_str(),
                status.message().c_str()));
        }
    }
    if (chip.clock_hz <= 0 || chip.mxu.rows <= 0 ||
        chip.num_cores <= 0 || chip.dram_bw_Bps <= 0) {
        return Status::InvalidArgument(
            "config produces a non-functional chip");
    }
    return chip;
}

StatusOr<ChipConfig>
LoadChipFile(const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (f == nullptr) {
        return Status::NotFound("cannot open " + path);
    }
    std::string text;
    char buffer[4096];
    size_t n;
    while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
        text.append(buffer, n);
    }
    std::fclose(f);
    return ChipFromText(text);
}

Status
SaveChipFile(const ChipConfig& chip, const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        return Status::InvalidArgument("cannot open " + path);
    }
    const std::string text = ChipToText(chip);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    return Status::Ok();
}

}  // namespace t4i
