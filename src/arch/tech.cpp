#include "src/arch/tech.h"

#include <cmath>

#include "src/common/strings.h"

namespace t4i {

const std::vector<TechNode>&
TechLadder()
{
    // Unequal scaling (Lesson 1). Per full node step, roughly:
    //   logic density  ~1.8-2.0x      logic energy  ~0.55-0.65x
    //   SRAM density   ~1.4-1.6x      SRAM energy   ~0.7-0.8x
    //   wire delay/mm  ~0.95x (nearly flat; worsens vs gates)
    //   DRAM BW        tracks DDR3 -> DDR4 -> HBM -> HBM2(E) steps
    static const std::vector<TechNode> kLadder = {
        //  nm  year logicD sramD logicE sramE  wire  dramBW
        {45, 2008, 1.00, 1.00, 1.000, 1.000, 1.00, 1.0},
        {28, 2012, 2.10, 1.55, 0.600, 0.780, 0.95, 2.0},
        {16, 2016, 4.40, 2.40, 0.340, 0.600, 0.90, 20.0},
        {7, 2019, 10.80, 3.80, 0.190, 0.460, 0.86, 27.0},
        {5, 2021, 14.80, 4.30, 0.150, 0.420, 0.84, 36.0},
    };
    return kLadder;
}

StatusOr<TechNode>
TechNodeOf(int nm)
{
    for (const auto& node : TechLadder()) {
        if (node.nm == nm) return node;
    }
    return Status::NotFound(StrFormat("no tech node for %d nm", nm));
}

double
MacEnergyPj(const TechNode& node, int operand_bits)
{
    // ~2.5 pJ for a 16-bit multiply-add at 45 nm; multiplier energy
    // grows ~quadratically with operand width, the adder linearly. Use a
    // blended superlinear exponent of 1.7.
    const double base_16bit = 2.5;
    const double width_scale =
        std::pow(static_cast<double>(operand_bits) / 16.0, 1.7);
    return base_16bit * width_scale * node.logic_energy;
}

double
SramEnergyPjPerByte(const TechNode& node)
{
    // ~10 pJ/byte for a large (MB-class) SRAM at 45 nm.
    return 10.0 * node.sram_energy;
}

double
DramEnergyPjPerByte(const TechNode& node)
{
    // DDR3-era ~160 pJ/B falling to ~60 pJ/B for HBM2 in the 7 nm era.
    if (node.nm >= 45) return 160.0;
    if (node.nm >= 28) return 130.0;
    if (node.nm >= 16) return 80.0;
    return 60.0;
}

}  // namespace t4i
