/**
 * @file
 * Chip configuration: the quantities from the paper's Table 1 that the
 * simulator, power model and TCO model consume. One struct describes any
 * of TPUv1/v2/v3/v4i/v4 or the T4-class GPU baseline; the simulator is
 * config-driven so all chips share one methodology.
 */
#ifndef T4I_ARCH_CHIP_H
#define T4I_ARCH_CHIP_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/graph/layer.h"

namespace t4i {

/** Cooling technology (Lesson 5: inference DSAs need air cooling). */
enum class Cooling { kAir, kLiquid };

const char* CoolingName(Cooling cooling);

/** One matrix-multiply unit: a weight-stationary systolic array. */
struct MxuConfig {
    int rows = 128;
    int cols = 128;
    int count = 1;          ///< MXUs per core
    /** Relative int8 throughput vs bf16 (TPUv1 is int8-only). */
    double int8_rate = 1.0;
    /**
     * Cycles the (single, per-core) sequencer needs to issue one
     * systolic-pass descriptor — address generation plus the VLIW
     * matmul push. With many small arrays the descriptor stream
     * becomes the bottleneck, which is the counterweight that makes
     * 128x128 the sweet spot (ablation A1).
     */
    int issue_cycles = 64;
};

/** Full chip description. */
struct ChipConfig {
    std::string name;
    int year = 2020;            ///< first deployment
    int tech_nm = 7;            ///< process node
    double die_mm2 = 400.0;
    double clock_hz = 1.05e9;
    int num_cores = 1;          ///< TensorCores

    MxuConfig mxu;

    /** Vector unit width: fp32-equivalent lanes per core (ALUs). */
    int vpu_lanes = 128 * 8;
    /** Vector ops per lane per cycle (dual-issue etc.). */
    double vpu_ops_per_lane = 2.0;

    /**
     * Fraction of peak compute throughput the chip sustains on real
     * kernels. The TPUs are modeled structurally (systolic fill, DMA
     * overlap), so they keep 1.0; the GPU baseline carries the
     * combination of thermal clock capping at its TDP and SIMT/tensor-
     * core scheduling losses that published MLPerf results show it
     * pays relative to spec-sheet peak.
     */
    double sustained_compute_fraction = 1.0;

    // On-chip memories (per chip).
    int64_t vmem_bytes = 16 * kMiB;   ///< vector-unit scratchpad
    int64_t cmem_bytes = 0;           ///< common memory (TPUv4i: 128 MiB)
    double cmem_bw_Bps = 0.0;         ///< CMEM sustained bandwidth

    // Off-chip memory.
    int64_t dram_bytes = 8 * kGiB;
    double dram_bw_Bps = 614e9;
    double dram_latency_s = 400e-9;

    // Interconnect.
    int ici_links = 0;
    double ici_bw_Bps_per_link = 0.0; ///< per direction
    double pcie_bw_Bps = 16e9;

    // DMA engines shared by the memory system.
    int dma_engines = 4;

    // Power.
    double tdp_w = 175.0;
    double idle_w = 55.0;
    Cooling cooling = Cooling::kAir;

    // Datapath support (Lessons 4/6).
    bool supports_bf16 = true;
    bool supports_int8 = true;

    /**
     * Whether the vector unit is a programmable VPU (TPUv2 onward) or a
     * fixed-function activation pipeline (TPUv1: ReLU/sigmoid/tanh at
     * line rate, but post-2017 primitives like softmax, layernorm and
     * GELU fall off a cliff). Lesson 9's mechanism.
     */
    bool flexible_vpu = true;

    /** Peak MACs/cycle across the chip for the given dtype. */
    double PeakMacsPerCycle(DType dtype) const;

    /** Peak FLOP/s (2 * MACs) for the given dtype. */
    double PeakFlops(DType dtype) const;

    /** Peak vector FLOP/s across the chip. */
    double PeakVectorFlops() const;

    /** Total on-chip memory (VMEM + CMEM). */
    int64_t OnChipBytes() const { return vmem_bytes + cmem_bytes; }

    /**
     * Roofline ridge point in FLOPs/byte against DRAM bandwidth for the
     * given dtype: intensity below this is memory bound.
     */
    double RidgeOpsPerByte(DType dtype) const;
};

}  // namespace t4i

#endif  // T4I_ARCH_CHIP_H
