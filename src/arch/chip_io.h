/**
 * @file
 * Text serialization of chip configurations, so users can define and
 * evaluate their own design points without recompiling (the
 * `t4sim_cli run --chip-file` path and the design-space scripts).
 *
 * Format: one `key = value` per line, `#` comments, unknown keys are
 * errors (catching typos beats silently ignoring them). All keys are
 * optional; omitted fields keep the TPUv4i defaults, so a file can be
 * a small delta ("like TPUv4i but 256 MiB CMEM").
 */
#ifndef T4I_ARCH_CHIP_IO_H
#define T4I_ARCH_CHIP_IO_H

#include <string>

#include "src/arch/chip.h"
#include "src/common/status.h"

namespace t4i {

/** Serializes a chip config to the key=value text format. */
std::string ChipToText(const ChipConfig& chip);

/** Parses a config from text; unknown keys or bad values fail. */
StatusOr<ChipConfig> ChipFromText(const std::string& text);

/** Reads and parses a config file. */
StatusOr<ChipConfig> LoadChipFile(const std::string& path);

/** Writes a config file. */
Status SaveChipFile(const ChipConfig& chip, const std::string& path);

}  // namespace t4i

#endif  // T4I_ARCH_CHIP_IO_H
