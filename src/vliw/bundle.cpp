#include "src/vliw/bundle.h"

#include <algorithm>

#include "src/common/units.h"

namespace t4i {

MicroOpCounts
CountMicroOps(const Program& program, int mxu_dim, int vpu_lanes)
{
    MicroOpCounts counts;
    for (const auto& instr : program.instrs) {
        switch (instr.engine) {
          case Engine::kMxu: {
            // One push per systolic pass, one pop per result tile,
            // plus scalar address updates for both.
            const int64_t passes = instr.k_tiles * instr.n_tiles;
            const int64_t row_waves =
                CeilDiv(std::max<int64_t>(instr.rows, 1), mxu_dim);
            counts.matrix_push += passes * row_waves;
            counts.matrix_pop += instr.n_tiles * row_waves;
            counts.scalar += 2 * passes;
            break;
          }
          case Engine::kVpu: {
            const int64_t chunks = CeilDiv(
                std::max<int64_t>(instr.elements, 1), vpu_lanes);
            // Multi-op pointwise bodies issue one vector micro-op per
            // "flop" pass over the chunk.
            const auto body = static_cast<int64_t>(
                std::max(instr.flops_per_element, 1.0));
            counts.vector += chunks * body;
            counts.scalar += chunks;
            break;
          }
          case Engine::kHbm:
          case Engine::kCmem:
          case Engine::kIci:
          case Engine::kPcie:
          case Engine::kPcieIn: {
            // One descriptor per 512 B stripe, batched 8 per memory
            // micro-op by the DMA engines.
            const int64_t descriptors =
                CeilDiv(std::max<int64_t>(instr.bytes, 1), 512 * 8);
            counts.memory += descriptors;
            counts.scalar += descriptors;
            break;
          }
          case Engine::kEngineCount:
            break;
        }
        // Sync flag set/wait around every macro-op.
        counts.misc += 2;
    }
    return counts;
}

StatusOr<BundleStats>
PackBundles(const Program& program, const BundleFormat& format,
            int mxu_dim, int vpu_lanes)
{
    if (format.bundle_bits == 0) {
        return Status::InvalidArgument(
            format.generation + " is not a VLIW machine");
    }
    if (mxu_dim <= 0 || vpu_lanes <= 0) {
        return Status::InvalidArgument("bad machine dimensions");
    }

    BundleStats stats;
    stats.micro_ops = CountMicroOps(program, mxu_dim, vpu_lanes);

    struct Demand {
        SlotKind kind;
        int64_t ops;
        int slots;
    };
    const Demand demands[] = {
        {SlotKind::kScalar, stats.micro_ops.scalar,
         format.scalar_slots},
        {SlotKind::kVector, stats.micro_ops.vector,
         format.vector_slots},
        {SlotKind::kMatrixPush, stats.micro_ops.matrix_push,
         format.matrix_push_slots},
        {SlotKind::kMatrixPop, stats.micro_ops.matrix_pop,
         format.matrix_pop_slots},
        {SlotKind::kMemory, stats.micro_ops.memory,
         format.memory_slots},
        {SlotKind::kMisc, stats.micro_ops.misc, format.misc_slots},
    };

    for (const auto& d : demands) {
        if (d.ops > 0 && d.slots == 0) {
            return Status::FailedPrecondition(
                std::string(SlotKindName(d.kind)) +
                " micro-ops cannot be encoded on " +
                format.generation +
                " (no slots of that class; the op must run elsewhere)");
        }
        const int64_t needed =
            d.slots > 0 ? CeilDiv(d.ops, d.slots) : 0;
        if (needed > stats.bundles) {
            stats.bundles = needed;
            stats.limiting_slot = d.kind;
        }
    }
    if (stats.bundles == 0) stats.bundles = 1;

    const double issued_slots =
        static_cast<double>(stats.bundles) * format.TotalSlots();
    stats.slot_occupancy =
        static_cast<double>(stats.micro_ops.Total()) / issued_slots;
    stats.code_bytes = stats.bundles * format.bundle_bits / 8;
    return stats;
}

}  // namespace t4i
