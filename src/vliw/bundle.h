/**
 * @file
 * The bundle packer: lowers a compiled Program's macro-instructions to
 * VLIW bundle counts for a generation's format, giving the control-path
 * view the cycle simulator abstracts away.
 *
 * Each macro-op expands into micro-ops: an MXU instruction needs one
 * matrix-push slot per systolic pass plus scalar address arithmetic; a
 * VPU op needs one vector slot per lane-wide chunk; DMA needs a memory
 * slot per descriptor. The packer greedily fills bundles subject to the
 * per-slot-class limits, reporting bundle count and slot occupancy —
 * the numbers behind the "sequencer issue bandwidth" term in the
 * timing model and the i-cache pressure discussion in E9b.
 */
#ifndef T4I_VLIW_BUNDLE_H
#define T4I_VLIW_BUNDLE_H

#include "src/compiler/program.h"
#include "src/vliw/isa.h"

namespace t4i {

/** Micro-op demand of one program, by slot class. */
struct MicroOpCounts {
    int64_t scalar = 0;
    int64_t vector = 0;
    int64_t matrix_push = 0;
    int64_t matrix_pop = 0;
    int64_t memory = 0;
    int64_t misc = 0;

    int64_t Total() const
    {
        return scalar + vector + matrix_push + matrix_pop + memory +
               misc;
    }
};

/** Result of packing a program into bundles. */
struct BundleStats {
    MicroOpCounts micro_ops;
    int64_t bundles = 0;
    /** Fraction of issued slots actually used (packing efficiency). */
    double slot_occupancy = 0.0;
    /** Which slot class forced the bundle count (the issue limiter). */
    SlotKind limiting_slot = SlotKind::kScalar;
    /** Encoded program size in bytes at this generation's width. */
    int64_t code_bytes = 0;
};

/**
 * Derives the micro-op demand of @p program for a machine with
 * @p mxu_dim-deep arrays and @p vpu_lanes vector lanes.
 */
MicroOpCounts CountMicroOps(const Program& program, int mxu_dim,
                            int vpu_lanes);

/**
 * Packs @p program into bundles of @p format. The packer is slot-class
 * bound: bundles = max over classes of ceil(demand / slots).
 */
StatusOr<BundleStats> PackBundles(const Program& program,
                                  const BundleFormat& format,
                                  int mxu_dim, int vpu_lanes);

}  // namespace t4i

#endif  // T4I_VLIW_BUNDLE_H
