/**
 * @file
 * The VLIW instruction-set layer (Lesson 2's subject).
 *
 * The TensorCore's scalar core is a VLIW machine: every cycle it issues
 * one *bundle* whose slots drive the scalar ALUs, the vector unit, the
 * matrix push/pop ports and the memory system. Each TPU generation
 * changed the bundle format (slot counts, widths, encodings), so
 * binaries are NOT portable across generations — only programs
 * recompiled from XLA's graph survive. This module defines per-
 * generation bundle formats and a checker that demonstrates exactly
 * that incompatibility, plus the encoder the bundle packer
 * (bundle.h) targets.
 */
#ifndef T4I_VLIW_ISA_H
#define T4I_VLIW_ISA_H

#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace t4i {

/** Slot classes a bundle can carry. */
enum class SlotKind {
    kScalar,   ///< address/loop arithmetic
    kVector,   ///< VPU lane operation
    kMatrixPush,  ///< feed activations into an MXU
    kMatrixPop,   ///< drain accumulators
    kMemory,   ///< DMA descriptor / VMEM access
    kMisc,     ///< sync flags, branches
};

const char* SlotKindName(SlotKind kind);

/** A bundle format: how many slots of each class one bundle carries. */
struct BundleFormat {
    std::string generation;
    int scalar_slots = 2;
    int vector_slots = 2;
    int matrix_push_slots = 1;
    int matrix_pop_slots = 1;
    int memory_slots = 1;
    int misc_slots = 1;
    /** Encoded bundle width in bits (changes every generation). */
    int bundle_bits = 256;

    int SlotsOf(SlotKind kind) const;
    int TotalSlots() const;
};

/** Bundle format of each TPU generation (the ISA compatibility axis). */
BundleFormat BundleFormatOf(const std::string& chip_name);

/**
 * Binary compatibility check: a program encoded for @p built_for can
 * execute on @p running_on only if the formats match exactly. Returns
 * Ok or FailedPrecondition with an explanation — the paper's argument
 * for shipping the compiler, not binaries.
 */
Status CheckBinaryCompatible(const BundleFormat& built_for,
                             const BundleFormat& running_on);

}  // namespace t4i

#endif  // T4I_VLIW_ISA_H
