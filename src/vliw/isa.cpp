#include "src/vliw/isa.h"

#include "src/common/strings.h"

namespace t4i {

const char*
SlotKindName(SlotKind kind)
{
    switch (kind) {
      case SlotKind::kScalar: return "scalar";
      case SlotKind::kVector: return "vector";
      case SlotKind::kMatrixPush: return "mxu-push";
      case SlotKind::kMatrixPop: return "mxu-pop";
      case SlotKind::kMemory: return "memory";
      case SlotKind::kMisc: return "misc";
    }
    return "?";
}

int
BundleFormat::SlotsOf(SlotKind kind) const
{
    switch (kind) {
      case SlotKind::kScalar: return scalar_slots;
      case SlotKind::kVector: return vector_slots;
      case SlotKind::kMatrixPush: return matrix_push_slots;
      case SlotKind::kMatrixPop: return matrix_pop_slots;
      case SlotKind::kMemory: return memory_slots;
      case SlotKind::kMisc: return misc_slots;
    }
    return 0;
}

int
BundleFormat::TotalSlots() const
{
    return scalar_slots + vector_slots + matrix_push_slots +
           matrix_pop_slots + memory_slots + misc_slots;
}

BundleFormat
BundleFormatOf(const std::string& chip_name)
{
    // Slot mixes track each generation's datapath: TPUv1's CISC-ish
    // controller is modeled as a minimal bundle; v2 introduced the
    // VLIW core; v3 doubled the MXUs (more push/pop slots); v4i's
    // wider memory system added DMA slots and again changed the
    // encoding width. Values are representative, not die-verified —
    // what matters for Lesson 2 is that they DIFFER.
    BundleFormat f;
    f.generation = chip_name;
    if (chip_name == "TPUv1") {
        f.scalar_slots = 1;
        f.vector_slots = 0;
        f.matrix_push_slots = 1;
        f.matrix_pop_slots = 1;
        f.memory_slots = 1;
        f.misc_slots = 1;
        f.bundle_bits = 128;
    } else if (chip_name == "TPUv2") {
        f.scalar_slots = 2;
        f.vector_slots = 2;
        f.matrix_push_slots = 1;
        f.matrix_pop_slots = 1;
        f.memory_slots = 1;
        f.misc_slots = 1;
        f.bundle_bits = 256;
    } else if (chip_name == "TPUv3") {
        f.scalar_slots = 2;
        f.vector_slots = 2;
        f.matrix_push_slots = 2;
        f.matrix_pop_slots = 2;
        f.memory_slots = 1;
        f.misc_slots = 1;
        f.bundle_bits = 288;
    } else if (chip_name == "TPUv4i" || chip_name == "TPUv4") {
        f.scalar_slots = 2;
        f.vector_slots = 4;
        f.matrix_push_slots = 4;
        f.matrix_pop_slots = 4;
        f.memory_slots = 2;
        f.misc_slots = 2;
        f.bundle_bits = 384;
    } else {
        // Non-VLIW baseline (the GPU): one "slot" per kind as a
        // stand-in; the compatibility story does not apply.
        f.bundle_bits = 0;
    }
    return f;
}

Status
CheckBinaryCompatible(const BundleFormat& built_for,
                      const BundleFormat& running_on)
{
    if (built_for.bundle_bits != running_on.bundle_bits) {
        return Status::FailedPrecondition(StrFormat(
            "bundle width %d bits (built for %s) != %d bits (%s): "
            "binaries do not survive TPU generations — recompile from "
            "the XLA graph (Lesson 2)",
            built_for.bundle_bits, built_for.generation.c_str(),
            running_on.bundle_bits, running_on.generation.c_str()));
    }
    for (SlotKind kind :
         {SlotKind::kScalar, SlotKind::kVector, SlotKind::kMatrixPush,
          SlotKind::kMatrixPop, SlotKind::kMemory, SlotKind::kMisc}) {
        if (built_for.SlotsOf(kind) != running_on.SlotsOf(kind)) {
            return Status::FailedPrecondition(StrFormat(
                "%s slot count differs (%d vs %d) between %s and %s",
                SlotKindName(kind), built_for.SlotsOf(kind),
                running_on.SlotsOf(kind),
                built_for.generation.c_str(),
                running_on.generation.c_str()));
        }
    }
    return Status::Ok();
}

}  // namespace t4i
