/**
 * @file
 * Collective-communication cost models over an ICI domain.
 *
 * Sharded inference needs all-gathers at layer boundaries (and
 * all-reduces for tensor-parallel matmuls). Costs follow the standard
 * alpha-beta analysis of bandwidth-optimal algorithms:
 *
 *   ring all-gather of B total bytes over N chips:
 *     (N-1) steps, each moving B/N per chip at the per-neighbor rate;
 *   reduce-scatter: the same wire cost (payloads shrink as they merge);
 *   all-reduce: reduce-scatter + all-gather = 2(N-1)/N * B;
 *   fully-connected: one step, each chip sends its shard to all peers
 *     in parallel across its (time-shared) links.
 *
 * The model returns the *time* a collective occupies the interconnect,
 * which the compiler converts to an equivalent-bytes descriptor for the
 * simulator's single ICI engine queue.
 */
#ifndef T4I_ICI_COLLECTIVES_H
#define T4I_ICI_COLLECTIVES_H

#include "src/ici/topology.h"

namespace t4i {

/** Collective operations used by sharded inference. */
enum class Collective {
    kAllGather,      ///< every chip ends with all N shards
    kReduceScatter,  ///< every chip ends with 1/N of the reduced data
    kAllReduce,      ///< every chip ends with all of the reduced data
    kBroadcast,      ///< one chip's data reaches all others
};

const char* CollectiveName(Collective collective);

/** Cost of one collective invocation. */
struct CollectiveCost {
    double time_s = 0.0;      ///< interconnect occupancy
    double bytes_on_wire = 0; ///< per-chip bytes actually transmitted
    int steps = 0;            ///< algorithm steps (latency terms)
};

/**
 * Costs a collective moving @p total_bytes of payload (the full,
 * unsharded tensor size) over @p domain.
 */
StatusOr<CollectiveCost> CostCollective(Collective collective,
                                        int64_t total_bytes,
                                        const IciDomain& domain);

}  // namespace t4i

#endif  // T4I_ICI_COLLECTIVES_H
