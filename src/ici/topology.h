/**
 * @file
 * Inter-chip interconnect (ICI) domain topologies.
 *
 * TPUv2/v3 build 2-D torus supercomputers; TPUv4i deliberately scales
 * the idea *down* to a 4-chip board domain (Lesson 8: enough headroom
 * for ~2 years of 1.5x/year model growth without paying for a
 * training-class fabric). This module describes the wiring options the
 * collectives model (collectives.h) costs out.
 */
#ifndef T4I_ICI_TOPOLOGY_H
#define T4I_ICI_TOPOLOGY_H

#include <string>

#include "src/arch/chip.h"
#include "src/common/status.h"

namespace t4i {

/** How the chips of one ICI domain are wired. */
enum class IciTopology {
    kRing,            ///< each chip links to two neighbors
    kFullyConnected,  ///< every chip pair has a direct link
    kTorus2D,         ///< 2-D torus (meaningful for >= 9 chips)
};

const char* IciTopologyName(IciTopology topology);

/** One ICI domain: chips of one board (or a small pod). */
struct IciDomain {
    int num_chips = 4;
    IciTopology topology = IciTopology::kRing;
    /** Per-link per-direction bandwidth (from the chip config). */
    double link_bw_Bps = 50e9;
    /** Physical links each chip exposes. */
    int links_per_chip = 2;
    /** Per-hop latency (serialization + switch traversal). */
    double hop_latency_s = 1e-6;

    /**
     * Links each chip can actually devote to one neighbor given the
     * wiring. A ring splits the chip's links over 2 neighbors; a
     * fully-connected domain over (num_chips - 1).
     */
    StatusOr<double> PerNeighborBandwidth() const;

    /** Bisection bandwidth of the domain (per direction). */
    StatusOr<double> BisectionBandwidth() const;

    /** Network diameter in hops. */
    int Diameter() const;

    std::string ToString() const;
};

/** Builds a domain from a chip's ICI capabilities. */
StatusOr<IciDomain> MakeDomain(const ChipConfig& chip, int num_chips,
                               IciTopology topology);

}  // namespace t4i

#endif  // T4I_ICI_TOPOLOGY_H
