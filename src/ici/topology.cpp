#include "src/ici/topology.h"

#include <cmath>

#include "src/common/strings.h"

namespace t4i {

const char*
IciTopologyName(IciTopology topology)
{
    switch (topology) {
      case IciTopology::kRing: return "ring";
      case IciTopology::kFullyConnected: return "fully-connected";
      case IciTopology::kTorus2D: return "2D-torus";
    }
    return "?";
}

StatusOr<double>
IciDomain::PerNeighborBandwidth() const
{
    if (num_chips < 2) {
        return Status::InvalidArgument("domain needs >= 2 chips");
    }
    int neighbors = 0;
    switch (topology) {
      case IciTopology::kRing:
        neighbors = num_chips == 2 ? 1 : 2;
        break;
      case IciTopology::kFullyConnected:
        neighbors = num_chips - 1;
        break;
      case IciTopology::kTorus2D:
        neighbors = 4;
        break;
    }
    if (neighbors > links_per_chip &&
        topology == IciTopology::kFullyConnected) {
        // Links are time-multiplexed across neighbors.
        return link_bw_Bps * links_per_chip / neighbors;
    }
    if (neighbors > links_per_chip) {
        return Status::InvalidArgument(StrFormat(
            "%s topology needs %d links/chip but only %d available",
            IciTopologyName(topology), neighbors, links_per_chip));
    }
    // Spare links double up on the existing neighbors.
    const double share =
        static_cast<double>(links_per_chip) / neighbors;
    return link_bw_Bps * share;
}

StatusOr<double>
IciDomain::BisectionBandwidth() const
{
    auto per_neighbor = PerNeighborBandwidth();
    T4I_RETURN_IF_ERROR(per_neighbor.status());
    switch (topology) {
      case IciTopology::kRing:
        // Cutting a ring severs two links.
        return 2.0 * per_neighbor.value();
      case IciTopology::kFullyConnected: {
        const int half = num_chips / 2;
        return per_neighbor.value() *
               static_cast<double>(half * (num_chips - half));
      }
      case IciTopology::kTorus2D: {
        const int side = static_cast<int>(std::lround(
            std::sqrt(static_cast<double>(num_chips))));
        return 2.0 * side * per_neighbor.value();
      }
    }
    return Status::Internal("unhandled topology");
}

int
IciDomain::Diameter() const
{
    switch (topology) {
      case IciTopology::kRing:
        return num_chips / 2;
      case IciTopology::kFullyConnected:
        return 1;
      case IciTopology::kTorus2D: {
        const int side = static_cast<int>(std::lround(
            std::sqrt(static_cast<double>(num_chips))));
        return side;  // side/2 per dimension, two dimensions
      }
    }
    return 1;
}

std::string
IciDomain::ToString() const
{
    return StrFormat("%d-chip %s, %.0f GB/s/link x %d links/chip",
                     num_chips, IciTopologyName(topology),
                     link_bw_Bps / 1e9, links_per_chip);
}

StatusOr<IciDomain>
MakeDomain(const ChipConfig& chip, int num_chips, IciTopology topology)
{
    if (chip.ici_links == 0) {
        return Status::FailedPrecondition(chip.name +
                                          " has no ICI links");
    }
    if (num_chips < 2) {
        return Status::InvalidArgument("domain needs >= 2 chips");
    }
    IciDomain domain;
    domain.num_chips = num_chips;
    domain.topology = topology;
    domain.link_bw_Bps = chip.ici_bw_Bps_per_link;
    domain.links_per_chip = chip.ici_links;
    // Validate the wiring is realizable.
    T4I_RETURN_IF_ERROR(domain.PerNeighborBandwidth().status());
    return domain;
}

}  // namespace t4i
