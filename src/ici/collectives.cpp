#include "src/ici/collectives.h"

#include <algorithm>

namespace t4i {

const char*
CollectiveName(Collective collective)
{
    switch (collective) {
      case Collective::kAllGather: return "all-gather";
      case Collective::kReduceScatter: return "reduce-scatter";
      case Collective::kAllReduce: return "all-reduce";
      case Collective::kBroadcast: return "broadcast";
    }
    return "?";
}

StatusOr<CollectiveCost>
CostCollective(Collective collective, int64_t total_bytes,
               const IciDomain& domain)
{
    if (total_bytes < 0) {
        return Status::InvalidArgument("negative payload");
    }
    auto bw = domain.PerNeighborBandwidth();
    T4I_RETURN_IF_ERROR(bw.status());
    const double n = domain.num_chips;
    const double shard =
        static_cast<double>(total_bytes) / n;

    CollectiveCost cost;
    switch (domain.topology) {
      case IciTopology::kRing:
      case IciTopology::kTorus2D: {
        // Bandwidth-optimal ring schedule (a torus runs it per ring
        // dimension; same wire volume, fewer steps per dimension —
        // modeled as a ring with the torus's per-neighbor bandwidth).
        switch (collective) {
          case Collective::kAllGather:
          case Collective::kReduceScatter:
            cost.steps = domain.num_chips - 1;
            cost.bytes_on_wire = shard * (n - 1.0);
            break;
          case Collective::kAllReduce:
            cost.steps = 2 * (domain.num_chips - 1);
            cost.bytes_on_wire = 2.0 * shard * (n - 1.0);
            break;
          case Collective::kBroadcast:
            cost.steps = domain.num_chips - 1;
            cost.bytes_on_wire = static_cast<double>(total_bytes);
            break;
        }
        break;
      }
      case IciTopology::kFullyConnected: {
        // Direct exchange: every chip sends its shard to each peer
        // over its time-shared links in one logical step.
        switch (collective) {
          case Collective::kAllGather:
          case Collective::kReduceScatter:
            cost.steps = 1;
            cost.bytes_on_wire = shard * (n - 1.0);
            break;
          case Collective::kAllReduce:
            cost.steps = 2;
            cost.bytes_on_wire = 2.0 * shard * (n - 1.0);
            break;
          case Collective::kBroadcast:
            cost.steps = 1;
            cost.bytes_on_wire = static_cast<double>(total_bytes);
            break;
        }
        break;
      }
    }
    // Per-neighbor bandwidth carries the wire bytes; each step pays a
    // hop latency. Fully-connected broadcasts fan out over shared
    // links, so they see the aggregated neighbor rate too.
    cost.time_s = cost.bytes_on_wire / bw.value() +
                  cost.steps * domain.hop_latency_s;
    return cost;
}

}  // namespace t4i
