/**
 * @file
 * Umbrella header: the full tpu4sim public API.
 *
 * Typical flow:
 *   1. build or pick a model        (src/models, src/graph)
 *   2. pick a chip                  (src/arch)
 *   3. compile                      (src/compiler)
 *   4. simulate                     (src/sim)
 *   5. analyze: power, roofline,    (src/power, src/roofline,
 *      serving, TCO                  src/serving, src/tco)
 */
#ifndef T4I_TPU4SIM_H
#define T4I_TPU4SIM_H

#include "src/arch/catalog.h"
#include "src/arch/chip.h"
#include "src/arch/chip_io.h"
#include "src/arch/tech.h"
#include "src/cluster/cluster.h"
#include "src/cluster/routing.h"
#include "src/common/log.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/common/units.h"
#include "src/compiler/compiler.h"
#include "src/fleet/deployment.h"
#include "src/fleet/planner.h"
#include "src/compiler/memory_planner.h"
#include "src/compiler/program.h"
#include "src/graph/graph.h"
#include "src/graph/layer.h"
#include "src/ici/collectives.h"
#include "src/ici/topology.h"
#include "src/models/zoo.h"
#include "src/numerics/bfloat16.h"
#include "src/numerics/calibration.h"
#include "src/numerics/quantize.h"
#include "src/power/power.h"
#include "src/roofline/roofline.h"
#include "src/serving/faults.h"
#include "src/serving/latency_table.h"
#include "src/serving/server.h"
#include "src/sim/machine.h"
#include "src/sim/perfcounters.h"
#include "src/sim/profile.h"
#include "src/sim/timing.h"
#include "src/sim/trace.h"
#include "src/tco/tco.h"
#include "src/tensor/executor.h"
#include "src/tensor/ops.h"
#include "src/tensor/tensor.h"
#include "src/vliw/bundle.h"
#include "src/vliw/isa.h"

#endif  // T4I_TPU4SIM_H
