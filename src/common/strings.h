/**
 * @file
 * Small string formatting helpers shared across the library.
 */
#ifndef T4I_COMMON_STRINGS_H
#define T4I_COMMON_STRINGS_H

#include <cstdint>
#include <string>
#include <vector>

namespace t4i {

/** printf-style formatting into a std::string. */
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Joins the elements of @p parts with @p sep. */
std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep);

/**
 * Splits @p text on @p sep, trimming surrounding whitespace from each
 * piece and dropping empty pieces ("a, b,," -> {"a", "b"}).
 */
std::vector<std::string> SplitString(const std::string& text, char sep);

/**
 * Formats a value with engineering suffixes (1.25 G, 640 M, ...).
 * Used by tables so large numbers stay readable.
 */
std::string HumanCount(double value, int precision = 2);

/** Formats a byte count with binary suffixes (KiB/MiB/GiB). */
std::string HumanBytes(double bytes, int precision = 1);

/** Formats seconds with an appropriate unit (ns/us/ms/s). */
std::string HumanSeconds(double seconds, int precision = 2);

}  // namespace t4i

#endif  // T4I_COMMON_STRINGS_H
