/**
 * @file
 * Fixed-width console tables and CSV emission.
 *
 * Every bench binary regenerates one paper table/figure; TablePrinter is
 * the single rendering path so all outputs share one format and can be
 * diffed run-to-run.
 */
#ifndef T4I_COMMON_TABLE_H
#define T4I_COMMON_TABLE_H

#include <string>
#include <vector>

namespace t4i {

/** Accumulates rows of strings and renders an aligned ASCII table. */
class TablePrinter {
  public:
    /** Creates a table whose first row is the header. */
    explicit TablePrinter(std::vector<std::string> header);

    /** Appends one row; must match the header arity. */
    void AddRow(std::vector<std::string> row);

    /** Renders the aligned table (header, rule, rows). */
    std::string Render() const;

    /** Renders as comma-separated values (no alignment padding). */
    std::string RenderCsv() const;

    /** Convenience: render to stdout with a caption line. */
    void Print(const std::string& caption) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace t4i

#endif  // T4I_COMMON_TABLE_H
