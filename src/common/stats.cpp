#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

#include "src/common/status.h"
#include "src/common/strings.h"

namespace t4i {

void
RunningStat::Add(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::Variance() const
{
    if (count_ < 2) return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStat::StdDev() const
{
    return std::sqrt(Variance());
}

void
PercentileTracker::Add(double x)
{
    samples_.push_back(x);
    sorted_ = false;
}

double
PercentileTracker::Percentile(double q) const
{
    T4I_CHECK(q >= 0.0 && q <= 100.0, "percentile out of range");
    if (samples_.empty()) return 0.0;
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    const double rank =
        q / 100.0 * static_cast<double>(samples_.size() - 1);
    const size_t lo = static_cast<size_t>(std::floor(rank));
    const size_t hi = static_cast<size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double
PercentileTracker::Mean() const
{
    if (samples_.empty()) return 0.0;
    double sum = 0.0;
    for (double s : samples_) sum += s;
    return sum / static_cast<double>(samples_.size());
}

Histogram::Histogram(double lo, double hi, int buckets)
    : lo_(lo), hi_(hi),
      width_((hi - lo) / static_cast<double>(buckets)),
      counts_(static_cast<size_t>(buckets), 0)
{
    T4I_CHECK(buckets > 0 && hi > lo, "bad histogram bounds");
}

void
Histogram::Add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
    } else if (x >= hi_) {
        ++overflow_;
    } else {
        auto idx = static_cast<size_t>((x - lo_) / width_);
        if (idx >= counts_.size()) idx = counts_.size() - 1;
        ++counts_[idx];
    }
}

double
Histogram::BucketLow(int i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

std::string
Histogram::ToString() const
{
    std::string out;
    for (size_t i = 0; i < counts_.size(); ++i) {
        out += StrFormat("[%.3g,%.3g):%lld ", BucketLow(static_cast<int>(i)),
                         BucketLow(static_cast<int>(i)) + width_,
                         static_cast<long long>(counts_[i]));
    }
    return out;
}

double
GeoMean(const std::vector<double>& values)
{
    if (values.empty()) return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        T4I_CHECK(v > 0.0, "GeoMean requires positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace t4i
