#include "src/common/strings.h"

#include <cctype>
#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace t4i {

std::string
StrFormat(const char* fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int size = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (size > 0) {
        out.resize(static_cast<size_t>(size));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    }
    va_end(args_copy);
    return out;
}

std::string
StrJoin(const std::vector<std::string>& parts, const std::string& sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) out += sep;
        out += parts[i];
    }
    return out;
}

std::vector<std::string>
SplitString(const std::string& text, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= text.size()) {
        size_t end = text.find(sep, start);
        if (end == std::string::npos) end = text.size();
        size_t lo = start;
        size_t hi = end;
        while (lo < hi && std::isspace(static_cast<unsigned char>(
                              text[lo]))) {
            ++lo;
        }
        while (hi > lo && std::isspace(static_cast<unsigned char>(
                              text[hi - 1]))) {
            --hi;
        }
        if (hi > lo) out.push_back(text.substr(lo, hi - lo));
        start = end + 1;
    }
    return out;
}

std::string
HumanCount(double value, int precision)
{
    static const struct { double threshold; const char* suffix; } kScales[] = {
        {1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"},
    };
    double mag = std::fabs(value);
    for (const auto& s : kScales) {
        if (mag >= s.threshold) {
            return StrFormat("%.*f %s", precision, value / s.threshold,
                             s.suffix);
        }
    }
    return StrFormat("%.*f", precision, value);
}

std::string
HumanBytes(double bytes, int precision)
{
    static const struct { double threshold; const char* suffix; } kScales[] = {
        {1ull << 40, "TiB"}, {1ull << 30, "GiB"},
        {1ull << 20, "MiB"}, {1ull << 10, "KiB"},
    };
    double mag = std::fabs(bytes);
    for (const auto& s : kScales) {
        if (mag >= s.threshold) {
            return StrFormat("%.*f %s", precision, bytes / s.threshold,
                             s.suffix);
        }
    }
    return StrFormat("%.*f B", precision, bytes);
}

std::string
HumanSeconds(double seconds, int precision)
{
    double mag = std::fabs(seconds);
    if (mag >= 1.0) return StrFormat("%.*f s", precision, seconds);
    if (mag >= 1e-3) return StrFormat("%.*f ms", precision, seconds * 1e3);
    if (mag >= 1e-6) return StrFormat("%.*f us", precision, seconds * 1e6);
    return StrFormat("%.*f ns", precision, seconds * 1e9);
}

}  // namespace t4i
