/**
 * @file
 * Minimal leveled logging. Mirrors gem5's inform()/warn() intent: these are
 * status messages for the user and never stop the simulation.
 */
#ifndef T4I_COMMON_LOG_H
#define T4I_COMMON_LOG_H

#include <string>

namespace t4i {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kSilent };

/** Sets the global threshold; messages below it are dropped. */
void SetLogLevel(LogLevel level);

/** Current global threshold. */
LogLevel GetLogLevel();

/** Emits a message at @p level (printf-style). */
void LogMessage(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace t4i

#define T4I_LOG_DEBUG(...) ::t4i::LogMessage(::t4i::LogLevel::kDebug, __VA_ARGS__)
#define T4I_LOG_INFO(...)  ::t4i::LogMessage(::t4i::LogLevel::kInfo, __VA_ARGS__)
#define T4I_LOG_WARN(...)  ::t4i::LogMessage(::t4i::LogLevel::kWarn, __VA_ARGS__)
#define T4I_LOG_ERROR(...) ::t4i::LogMessage(::t4i::LogLevel::kError, __VA_ARGS__)

#endif  // T4I_COMMON_LOG_H
