/**
 * @file
 * Minimal leveled logging. Mirrors gem5's inform()/warn() intent: these are
 * status messages for the user and never stop the simulation.
 */
#ifndef T4I_COMMON_LOG_H
#define T4I_COMMON_LOG_H

#include <functional>
#include <string>

namespace t4i {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kSilent };

/** "DEBUG"/"INFO"/"WARN"/"ERROR". */
const char* LogLevelName(LogLevel level);

/** Sets the global threshold; messages below it are dropped. */
void SetLogLevel(LogLevel level);

/** Current global threshold. */
LogLevel GetLogLevel();

/**
 * Receives every emitted message (those at or above the threshold) as
 * a formatted string, after it is written to stderr. Used to route
 * warnings/errors into structured sinks (the flight recorder ring,
 * src/obs/flight_recorder.h).
 */
using LogSink = std::function<void(LogLevel, const std::string&)>;

/** Installs @p sink (null restores stderr-only logging). With no sink
 *  installed the stderr path is exactly the historical one. */
void SetLogSink(LogSink sink);

/** Emits a message at @p level (printf-style). */
void LogMessage(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace t4i

#define T4I_LOG_DEBUG(...) ::t4i::LogMessage(::t4i::LogLevel::kDebug, __VA_ARGS__)
#define T4I_LOG_INFO(...)  ::t4i::LogMessage(::t4i::LogLevel::kInfo, __VA_ARGS__)
#define T4I_LOG_WARN(...)  ::t4i::LogMessage(::t4i::LogLevel::kWarn, __VA_ARGS__)
#define T4I_LOG_ERROR(...) ::t4i::LogMessage(::t4i::LogLevel::kError, __VA_ARGS__)

#endif  // T4I_COMMON_LOG_H
