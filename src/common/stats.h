/**
 * @file
 * Statistics accumulators used by the simulator and the serving model:
 * running mean/min/max/stddev, exact percentile estimation over retained
 * samples, and fixed-bucket histograms.
 */
#ifndef T4I_COMMON_STATS_H
#define T4I_COMMON_STATS_H

#include <cstdint>
#include <string>
#include <vector>

namespace t4i {

/** Running scalar summary (Welford variance). */
class RunningStat {
  public:
    /** Adds one observation. */
    void Add(double x);

    int64_t count() const { return count_; }
    double mean() const { return mean_; }
    double min() const { return min_; }
    double max() const { return max_; }
    double sum() const { return sum_; }

    /** Sample variance; zero for fewer than two observations. */
    double Variance() const;
    double StdDev() const;

  private:
    int64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Percentile estimator that retains all samples. Serving experiments need
 * accurate tails (p99/p99.9) at modest sample counts, so exact estimation
 * beats streaming sketches here.
 */
class PercentileTracker {
  public:
    void Add(double x);

    int64_t count() const { return static_cast<int64_t>(samples_.size()); }

    /**
     * Returns the q-th percentile via linear interpolation.
     * @param q in [0, 100]. Returns 0 when empty.
     */
    double Percentile(double q) const;

    double Mean() const;

  private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/** Fixed-width-bucket histogram over [lo, hi) with out-of-range tails. */
class Histogram {
  public:
    Histogram(double lo, double hi, int buckets);

    void Add(double x);

    int buckets() const { return static_cast<int>(counts_.size()); }
    int64_t bucket_count(int i) const { return counts_[static_cast<size_t>(i)]; }
    int64_t underflow() const { return underflow_; }
    int64_t overflow() const { return overflow_; }
    int64_t total() const { return total_; }

    /** Lower edge of bucket @p i. */
    double BucketLow(int i) const;

    /** One-line rendering, for debugging. */
    std::string ToString() const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<int64_t> counts_;
    int64_t underflow_ = 0;
    int64_t overflow_ = 0;
    int64_t total_ = 0;
};

/** Geometric mean of a vector of positive values; 0 if empty. */
double GeoMean(const std::vector<double>& values);

}  // namespace t4i

#endif  // T4I_COMMON_STATS_H
