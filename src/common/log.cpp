#include "src/common/log.h"

#include <cstdarg>
#include <cstdio>

#include "src/common/status.h"

namespace t4i {
namespace {

LogLevel g_level = LogLevel::kInfo;

const char*
LevelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
      case LogLevel::kSilent: return "SILENT";
    }
    return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }

LogLevel GetLogLevel() { return g_level; }

void
LogMessage(LogLevel level, const char* fmt, ...)
{
    if (level < g_level) return;
    std::fprintf(stderr, "[%s] ", LevelTag(level));
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
}

const char*
StatusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
      case StatusCode::kNotFound: return "NOT_FOUND";
      case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
      case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
      case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
      case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
      case StatusCode::kInternal: return "INTERNAL";
    }
    return "?";
}

std::string
Status::ToString() const
{
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
}

}  // namespace t4i
