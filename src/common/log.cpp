#include "src/common/log.h"

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace t4i {
namespace {

LogLevel g_level = LogLevel::kInfo;
LogSink g_sink;

}  // namespace

const char*
LogLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
      case LogLevel::kSilent: return "SILENT";
    }
    return "?";
}

void SetLogLevel(LogLevel level) { g_level = level; }

LogLevel GetLogLevel() { return g_level; }

void SetLogSink(LogSink sink) { g_sink = std::move(sink); }

void
LogMessage(LogLevel level, const char* fmt, ...)
{
    if (level < g_level) return;
    if (!g_sink) {
        // No sink installed: the historical stderr path, bit for bit.
        std::fprintf(stderr, "[%s] ", LogLevelName(level));
        va_list args;
        va_start(args, fmt);
        std::vfprintf(stderr, fmt, args);
        va_end(args);
        std::fputc('\n', stderr);
        return;
    }
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    const int n = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string message;
    if (n > 0) {
        std::vector<char> buf(static_cast<size_t>(n) + 1);
        std::vsnprintf(buf.data(), buf.size(), fmt, args);
        message.assign(buf.data(), static_cast<size_t>(n));
    }
    va_end(args);
    std::fprintf(stderr, "[%s] %s\n", LogLevelName(level),
                 message.c_str());
    g_sink(level, message);
}

const char*
StatusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
      case StatusCode::kNotFound: return "NOT_FOUND";
      case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
      case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
      case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
      case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
      case StatusCode::kInternal: return "INTERNAL";
    }
    return "?";
}

std::string
Status::ToString() const
{
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
}

}  // namespace t4i
