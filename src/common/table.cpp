#include "src/common/table.h"

#include <algorithm>
#include <cstdio>

#include "src/common/status.h"

namespace t4i {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header))
{
    T4I_CHECK(!header_.empty(), "table needs at least one column");
}

void
TablePrinter::AddRow(std::vector<std::string> row)
{
    T4I_CHECK(row.size() == header_.size(), "row arity mismatch");
    rows_.push_back(std::move(row));
}

std::string
TablePrinter::Render() const
{
    std::vector<size_t> widths(header_.size());
    for (size_t c = 0; c < header_.size(); ++c) {
        widths[c] = header_[c].size();
    }
    for (const auto& row : rows_) {
        for (size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    auto render_row = [&](const std::vector<std::string>& row) {
        std::string line;
        for (size_t c = 0; c < row.size(); ++c) {
            line += row[c];
            line.append(widths[c] - row[c].size(), ' ');
            if (c + 1 < row.size()) line += "  ";
        }
        // Trim trailing padding.
        while (!line.empty() && line.back() == ' ') line.pop_back();
        line += '\n';
        return line;
    };

    std::string out = render_row(header_);
    size_t rule_len = 0;
    for (size_t c = 0; c < widths.size(); ++c) {
        rule_len += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    }
    out.append(rule_len, '-');
    out += '\n';
    for (const auto& row : rows_) out += render_row(row);
    return out;
}

std::string
TablePrinter::RenderCsv() const
{
    auto render_row = [](const std::vector<std::string>& row) {
        std::string line;
        for (size_t c = 0; c < row.size(); ++c) {
            if (c > 0) line += ',';
            line += row[c];
        }
        line += '\n';
        return line;
    };
    std::string out = render_row(header_);
    for (const auto& row : rows_) out += render_row(row);
    return out;
}

void
TablePrinter::Print(const std::string& caption) const
{
    std::printf("\n== %s ==\n%s", caption.c_str(), Render().c_str());
    std::fflush(stdout);
}

}  // namespace t4i
