/**
 * @file
 * Deterministic random number generation.
 *
 * All stochastic parts of the simulator (request arrivals, synthetic
 * tensors) draw from an explicitly-seeded Rng so every experiment is
 * reproducible bit-for-bit. The engine is SplitMix64-seeded xoshiro256**,
 * implemented locally so results do not depend on the standard library's
 * unspecified distributions.
 */
#ifndef T4I_COMMON_RNG_H
#define T4I_COMMON_RNG_H

#include <cmath>
#include <cstdint>

namespace t4i {

/** Deterministic 64-bit PRNG (xoshiro256**). */
class Rng {
  public:
    /** Seeds the generator; the same seed always yields the same stream. */
    explicit Rng(uint64_t seed = 0x74707534ULL) { Reseed(seed); }

    /** Re-seeds in place. */
    void
    Reseed(uint64_t seed)
    {
        // SplitMix64 expands the seed into four non-zero words.
        uint64_t x = seed;
        for (auto& word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    uint64_t
    NextU64()
    {
        const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = Rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    NextDouble()
    {
        return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
    }

    /** Uniform integer in [0, bound). @p bound must be > 0. */
    uint64_t
    NextBounded(uint64_t bound)
    {
        // Lemire-style rejection-free-enough bound; bias is < 2^-53 here
        // because we go through the 53-bit double path.
        return static_cast<uint64_t>(NextDouble() *
                                     static_cast<double>(bound));
    }

    /** Uniform double in [lo, hi). */
    double
    NextUniform(double lo, double hi)
    {
        return lo + (hi - lo) * NextDouble();
    }

    /** Standard normal via Box-Muller. */
    double
    NextGaussian()
    {
        double u1 = NextDouble();
        double u2 = NextDouble();
        if (u1 < 1e-300) u1 = 1e-300;
        return std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * M_PI * u2);
    }

    /** Exponential with rate @p lambda (mean 1/lambda). */
    double
    NextExponential(double lambda)
    {
        double u = NextDouble();
        if (u < 1e-300) u = 1e-300;
        return -std::log(u) / lambda;
    }

    /** Bernoulli draw with probability @p p of true. */
    bool NextBool(double p) { return NextDouble() < p; }

  private:
    static uint64_t
    Rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
};

/**
 * Derives a named substream seed from one run seed. Every stochastic
 * stream in the simulator (arrivals, fault timelines, transient-error
 * draws, routing tiebreaks, load generators) seeds its own Rng with
 * `SubstreamSeed(run_seed, "family.name", index)` so that (a) one run
 * seed reproduces the whole run bit-for-bit and (b) adding a draw to
 * one stream never perturbs any other stream.
 *
 * The name is hashed with FNV-1a, mixed with the seed and index, and
 * finalized through the SplitMix64 mixer so nearby (seed, index)
 * pairs land far apart.
 */
inline uint64_t
SubstreamSeed(uint64_t seed, const char* name, uint64_t index = 0)
{
    uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
    for (const char* p = name; *p != '\0'; ++p) {
        h ^= static_cast<uint64_t>(static_cast<unsigned char>(*p));
        h *= 0x100000001b3ULL;  // FNV prime
    }
    uint64_t z = seed;
    z ^= h + 0x9e3779b97f4a7c15ULL + (z << 6) + (z >> 2);
    z ^= (index + 1) * 0xff51afd7ed558ccdULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Convenience: an Rng seeded on a named substream of @p seed. */
inline Rng
Substream(uint64_t seed, const char* name, uint64_t index = 0)
{
    return Rng(SubstreamSeed(seed, name, index));
}

}  // namespace t4i

#endif  // T4I_COMMON_RNG_H
