/**
 * @file
 * Lightweight error-handling primitives used across module boundaries.
 *
 * The library does not throw exceptions across public interfaces; fallible
 * operations return Status (or StatusOr<T>) in the spirit of the Google
 * style guide. Internal invariant violations use T4I_CHECK, which aborts
 * (gem5 "panic" semantics: a simulator bug, never a user error).
 */
#ifndef T4I_COMMON_STATUS_H
#define T4I_COMMON_STATUS_H

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace t4i {

/** Error categories, loosely mirroring absl::StatusCode. */
enum class StatusCode {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kOutOfRange,
    kFailedPrecondition,
    kResourceExhausted,
    kUnimplemented,
    kInternal,
};

/** Human-readable name of a status code. */
const char* StatusCodeName(StatusCode code);

/**
 * Result of a fallible operation: a code plus a message.
 *
 * Statuses are cheap to move and copy; the common (Ok) case carries no
 * allocation.
 */
class Status {
  public:
    /** Constructs an Ok status. */
    Status() = default;

    /** Constructs a status with a code and explanatory message. */
    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message)) {}

    static Status Ok() { return Status(); }
    static Status InvalidArgument(std::string msg)
    {
        return Status(StatusCode::kInvalidArgument, std::move(msg));
    }
    static Status NotFound(std::string msg)
    {
        return Status(StatusCode::kNotFound, std::move(msg));
    }
    static Status OutOfRange(std::string msg)
    {
        return Status(StatusCode::kOutOfRange, std::move(msg));
    }
    static Status FailedPrecondition(std::string msg)
    {
        return Status(StatusCode::kFailedPrecondition, std::move(msg));
    }
    static Status ResourceExhausted(std::string msg)
    {
        return Status(StatusCode::kResourceExhausted, std::move(msg));
    }
    static Status Unimplemented(std::string msg)
    {
        return Status(StatusCode::kUnimplemented, std::move(msg));
    }
    static Status Internal(std::string msg)
    {
        return Status(StatusCode::kInternal, std::move(msg));
    }

    bool ok() const { return code_ == StatusCode::kOk; }
    StatusCode code() const { return code_; }
    const std::string& message() const { return message_; }

    /** Formats the status as "CODE: message" (or "OK"). */
    std::string ToString() const;

  private:
    StatusCode code_ = StatusCode::kOk;
    std::string message_;
};

/**
 * Either a value or an error Status. A minimal stand-in for
 * absl::StatusOr<T> / std::expected<T, Status>.
 */
template <typename T>
class StatusOr {
  public:
    /** Implicit from a value (the success path). */
    StatusOr(T value) : payload_(std::move(value)) {}  // NOLINT
    /** Implicit from a non-Ok status (the failure path). */
    StatusOr(Status status) : payload_(std::move(status))  // NOLINT
    {
        // A StatusOr constructed from a Status must carry an error.
        if (std::get<Status>(payload_).ok()) {
            std::fprintf(stderr, "StatusOr constructed from Ok status\n");
            std::abort();
        }
    }

    bool ok() const { return std::holds_alternative<T>(payload_); }

    /** Status of the operation; Ok when a value is present. */
    Status status() const
    {
        return ok() ? Status::Ok() : std::get<Status>(payload_);
    }

    /** Value access; aborts if no value is held (simulator bug). */
    const T&
    value() const
    {
        if (!ok()) {
            std::fprintf(stderr, "StatusOr::value on error: %s\n",
                         std::get<Status>(payload_).ToString().c_str());
            std::abort();
        }
        return std::get<T>(payload_);
    }

    T&
    value()
    {
        if (!ok()) {
            std::fprintf(stderr, "StatusOr::value on error: %s\n",
                         std::get<Status>(payload_).ToString().c_str());
            std::abort();
        }
        return std::get<T>(payload_);
    }

    /** Moves the value out. */
    T
    ConsumeValue() &&
    {
        return std::move(value());
    }

  private:
    std::variant<Status, T> payload_;
};

}  // namespace t4i

/** Propagates a non-Ok status to the caller. */
#define T4I_RETURN_IF_ERROR(expr)                        \
    do {                                                 \
        ::t4i::Status t4i_status_ = (expr);              \
        if (!t4i_status_.ok()) return t4i_status_;       \
    } while (0)

/**
 * Aborts with a message when an invariant does not hold. This marks
 * simulator bugs (panic semantics), never user-input errors.
 */
#define T4I_CHECK(cond, msg)                                              \
    do {                                                                  \
        if (!(cond)) {                                                    \
            std::fprintf(stderr, "T4I_CHECK failed at %s:%d: %s (%s)\n",  \
                         __FILE__, __LINE__, #cond, msg);                 \
            std::abort();                                                 \
        }                                                                 \
    } while (0)

#endif  // T4I_COMMON_STATUS_H
