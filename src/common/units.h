/**
 * @file
 * Unit helpers. All simulator-facing quantities use SI base units
 * (bytes, seconds, hertz, watts, joules) held in double or int64_t; these
 * constants make call sites read like the spec sheets they come from.
 */
#ifndef T4I_COMMON_UNITS_H
#define T4I_COMMON_UNITS_H

#include <cstdint>

namespace t4i {

// Binary capacities.
inline constexpr int64_t kKiB = 1024;
inline constexpr int64_t kMiB = 1024 * kKiB;
inline constexpr int64_t kGiB = 1024 * kMiB;

// Decimal rates (bandwidth, FLOPS): spec sheets use powers of ten.
inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;
inline constexpr double kTera = 1e12;

// Frequencies.
inline constexpr double kMHz = 1e6;
inline constexpr double kGHz = 1e9;

// Times.
inline constexpr double kMillisecond = 1e-3;
inline constexpr double kMicrosecond = 1e-6;
inline constexpr double kNanosecond = 1e-9;

/** Ceiling division for non-negative integers. */
constexpr int64_t
CeilDiv(int64_t a, int64_t b)
{
    return (a + b - 1) / b;
}

/** Rounds @p a up to the next multiple of @p b. */
constexpr int64_t
RoundUp(int64_t a, int64_t b)
{
    return CeilDiv(a, b) * b;
}

}  // namespace t4i

#endif  // T4I_COMMON_UNITS_H
