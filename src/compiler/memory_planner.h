/**
 * @file
 * CMEM weight-pinning planner.
 *
 * TPUv4i's 128 MiB CMEM exists because SRAM stopped scaling with logic
 * (Lesson 1) while HBM bandwidth became the limiter for low-intensity
 * layers. The planner decides which parameter tensors live permanently in
 * CMEM (pinned at model-load time, so inference reads them at CMEM
 * bandwidth) and which stream from HBM on every inference.
 *
 * Policy: greedy by bandwidth-boundedness — layers with the fewest FLOPs
 * per weight byte (embedding tables, wide dense layers) are pinned first,
 * since their HBM reads are the hardest to hide behind compute. The
 * marginal layer may be pinned fractionally, which is what gives the
 * smooth CMEM-sweep curve in E8.
 */
#ifndef T4I_COMPILER_MEMORY_PLANNER_H
#define T4I_COMPILER_MEMORY_PLANNER_H

#include <vector>

#include "src/common/status.h"
#include "src/graph/graph.h"

namespace t4i {

/** Per-layer pinning decision: fraction of weight bytes resident in CMEM. */
struct PinPlan {
    /** fraction[layer_id] in [0,1]; 0 for weightless layers. */
    std::vector<double> fraction;
    int64_t pinned_bytes = 0;
    int64_t total_weight_bytes = 0;
};

/**
 * Plans weight pinning for @p graph at the given batch/dtype into a CMEM
 * of @p cmem_budget bytes. A zero budget returns an all-zero plan.
 */
StatusOr<PinPlan> PlanWeightPinning(const Graph& graph, int64_t batch,
                                    DType weight_dtype, DType act_dtype,
                                    int64_t cmem_budget);

/**
 * Full CMEM allocation: weights AND spilled activations compete for the
 * same capacity. A spilled activation byte staged in CMEM saves two HBM
 * crossings (the write and the read-back), so activation candidates
 * outrank streamed weights; embedding tables, touched only sparsely,
 * rank last. The marginal candidate is split fractionally.
 */
/** Allocation policies for the CMEM planner (ablation A8). */
enum class CmemPolicy {
    kByBandwidthSaved,  ///< default: HBM bytes saved per CMEM byte
    kBySize,            ///< biggest tensors first (naive)
    kByProgramOrder,    ///< first-come-first-pinned (naive)
};

const char* CmemPolicyName(CmemPolicy policy);

struct CmemPlan {
    /** Weight bytes fraction resident in CMEM, per layer id. */
    std::vector<double> weight_fraction;
    /** Spilled-activation bytes fraction staged in CMEM, per layer id. */
    std::vector<double> act_fraction;
    int64_t pinned_weight_bytes = 0;
    int64_t staged_act_bytes = 0;
    int64_t total_weight_bytes = 0;
};

/**
 * Plans the CMEM allocation. @p vmem_budget decides which activations
 * spill at all (outputs larger than it leave the vector memory).
 */
StatusOr<CmemPlan> PlanCmem(const Graph& graph, int64_t batch,
                            DType weight_dtype, DType act_dtype,
                            int64_t cmem_budget, int64_t vmem_budget,
                            CmemPolicy policy =
                                CmemPolicy::kByBandwidthSaved);

}  // namespace t4i

#endif  // T4I_COMPILER_MEMORY_PLANNER_H
