/**
 * @file
 * The device program: what the XLA-lite compiler emits and the simulator
 * executes.
 *
 * Instructions are tile-granular macro-ops. Each carries the *work
 * descriptor* (rows/tiles for the MXU, elements for the VPU, bytes for
 * DMA); the simulator derives cycle counts from the descriptor plus the
 * chip configuration, so one program can be timed on any chip it was
 * compiled for. Dependencies form a DAG; engines execute their queues in
 * program order (the hardware's in-order queues), and overlap across
 * engines is what the compiler's scheduling choices control.
 */
#ifndef T4I_COMPILER_PROGRAM_H
#define T4I_COMPILER_PROGRAM_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/layer.h"

namespace t4i {

/** Execution engines (simulator resources). */
enum class Engine {
    kMxu,    ///< the matrix units (modeled as one pooled resource)
    kVpu,    ///< the vector unit
    kHbm,    ///< HBM/DRAM channel (DMA transfers serialize here)
    kCmem,   ///< CMEM port (on-chip staging transfers)
    kIci,    ///< inter-chip interconnect
    kPcie,   ///< host link, device-to-host direction
    kPcieIn, ///< host link, host-to-device direction (PCIe is full
             ///< duplex, so inputs never queue behind outputs)
    kEngineCount,
};

const char* EngineName(Engine engine);

/** Instruction kinds (mostly informational; engine + descriptor drive
 *  timing). */
enum class InstrKind {
    kMatmulTile,   ///< systolic-array passes
    kVectorOp,     ///< pointwise/reduction work on the VPU
    kDmaIn,        ///< memory -> on-chip
    kDmaOut,       ///< on-chip -> memory
    kGather,       ///< random-access embedding gather
    kIciTransfer,  ///< chip-to-chip transfer
    kHostTransfer, ///< PCIe transfer
};

const char* InstrKindName(InstrKind kind);

/**
 * One logical compiler op (HLO-level). The compiler may emit several
 * machine instructions for one op — weight-stream chunks, per-timestep
 * matmuls of a recurrence — and the profiler joins counter deltas back
 * to ops through the `Instr::hlo_op_id` stamp, so "where did the cycles
 * go" is answered at the granularity engineers reason about.
 */
struct HloOp {
    int id = -1;
    /** Owning model layer. */
    int layer_id = -1;
    /** Canonical name, e.g. "encoder0.qkv" (chunk indices stripped). */
    std::string name;
};

/** One macro instruction. */
struct Instr {
    int id = -1;
    Engine engine = Engine::kMxu;
    InstrKind kind = InstrKind::kMatmulTile;
    DType dtype = DType::kBf16;
    /** Producing layer id (for per-layer stats) and display label. */
    int layer_id = -1;
    /** Index into Program::hlo_ops (-1 on hand-built programs). */
    int hlo_op_id = -1;
    std::string label;

    // --- MXU descriptor -------------------------------------------------
    /** Activation rows streamed through the array per (k,n) tile pair. */
    int64_t rows = 0;
    /** Number of contraction-dimension tiles. */
    int64_t k_tiles = 0;
    /** Number of output-column tiles. */
    int64_t n_tiles = 0;
    /** MACs this instruction performs (for FLOP/energy accounting). */
    double macs = 0.0;

    // --- VPU descriptor -------------------------------------------------
    int64_t elements = 0;
    double flops_per_element = 1.0;
    /** Transcendental-heavy vector work (softmax/layernorm/GELU) that a
     *  fixed-function activation pipeline cannot run at line rate. */
    bool complex_vector = false;

    // --- DMA / ICI / PCIe descriptor -------------------------------------
    int64_t bytes = 0;
    /** Effective-bandwidth derating (random gathers < streaming). */
    double bw_efficiency = 1.0;

    /** Instruction ids that must complete before this one starts. */
    std::vector<int> deps;
};

/** Compile-time summary the planner records for reporting. */
struct MemoryPlan {
    int64_t weight_bytes_total = 0;
    int64_t weight_bytes_cmem = 0;    ///< pinned (no per-step HBM traffic)
    int64_t weight_bytes_hbm = 0;     ///< streamed per inference
    int64_t activation_bytes_hbm = 0; ///< activations spilled to HBM
    int64_t activation_bytes_cmem = 0; ///< activations staged in CMEM
    int64_t peak_vmem_bytes = 0;
};

/** A compiled device program for one (model, chip, options) triple. */
struct Program {
    std::string model_name;
    std::string chip_name;
    int64_t batch = 1;
    DType dtype = DType::kBf16;
    int opt_level = 3;
    int num_chips = 1;

    std::vector<Instr> instrs;
    /** Logical-op table the instructions' hlo_op_id indexes into. */
    std::vector<HloOp> hlo_ops;
    MemoryPlan memory;

    /** Total MACs across instructions (one chip's share). */
    double TotalMacs() const;
    /** Total bytes queued on the HBM engine. */
    int64_t HbmBytes() const;

    /** Validates the dependence DAG (ids in range, acyclic by
     *  construction: deps must reference earlier ids). */
    Status Validate() const;

    /** Short human-readable summary. */
    std::string Summary() const;
};

}  // namespace t4i

#endif  // T4I_COMPILER_PROGRAM_H
