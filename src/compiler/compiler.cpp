#include "src/compiler/compiler.h"

#include <algorithm>
#include <map>

#include "src/common/strings.h"
#include "src/common/units.h"
#include "src/ici/collectives.h"
#include "src/obs/registry.h"

namespace t4i {
namespace {

/** Weight-stream chunk target: small enough to pipeline, large enough to
 *  amortize DMA setup. */
constexpr int64_t kWeightChunkBytes = 2 * kMiB;
constexpr int kMaxWeightChunks = 8;

/** Random-gather bandwidth derating vs streaming. */
constexpr double kHbmGatherEfficiency = 0.35;
constexpr double kCmemGatherEfficiency = 0.8;

class Emitter {
  public:
    Emitter(const Graph& graph, const ChipConfig& chip,
            const CompileOptions& opts, CmemPlan pins, IciDomain domain)
        : g_(graph), chip_(chip), opts_(opts), pins_(std::move(pins)),
          domain_(domain)
    {
        prog_.model_name = g_.name();
        prog_.chip_name = chip_.name;
        prog_.batch = opts_.batch;
        prog_.dtype = opts_.dtype;
        prog_.opt_level = opts_.opt_level;
        prog_.num_chips = opts_.num_chips;
        tail_.assign(static_cast<size_t>(g_.num_layers()), -1);
        spilled_.assign(static_cast<size_t>(g_.num_layers()), false);
        // Half of VMEM for live activations, half for staging.
        vmem_budget_ = chip_.vmem_bytes / 2;
    }

    Status Run();

    Program Take() { return std::move(prog_); }

  private:
    int64_t ActBytes(int64_t elements) const
    {
        return elements * DTypeBytes(opts_.dtype);
    }

    /**
     * Canonical op name: the instruction label with any trailing chunk
     * or timestep index stripped, so "enc0.w3" and "enc0.w5" join the
     * same logical op "enc0.w" while "enc0.qkv" stays itself.
     */
    static std::string
    CanonicalOpName(const std::string& label)
    {
        size_t end = label.size();
        while (end > 0 &&
               label[end - 1] >= '0' && label[end - 1] <= '9') {
            --end;
        }
        // A label that is *all* digits (or empty) keeps its spelling.
        if (end == 0 || label[end - 1] == '.') return label;
        return label.substr(0, end);
    }

    int
    Add(Instr instr)
    {
        instr.id = static_cast<int>(prog_.instrs.size());
        const std::string op_name = CanonicalOpName(instr.label);
        auto [it, inserted] = op_ids_.try_emplace(
            op_name, static_cast<int>(prog_.hlo_ops.size()));
        if (inserted) {
            prog_.hlo_ops.push_back(
                {it->second, instr.layer_id, op_name});
        }
        instr.hlo_op_id = it->second;
        prog_.instrs.push_back(std::move(instr));
        return prog_.instrs.back().id;
    }

    /** Appends dep if valid, deduplicating. */
    static void
    AddDep(std::vector<int>* deps, int id)
    {
        if (id < 0) return;
        if (std::find(deps->begin(), deps->end(), id) != deps->end()) {
            return;
        }
        deps->push_back(id);
    }

    /**
     * Collects compute dependencies on the layer's producers, emitting
     * the memory reads (HBM and/or CMEM, per the planner's split) for
     * spilled inputs.
     */
    std::vector<int>
    InputDeps(const Layer& layer)
    {
        std::vector<int> deps;
        for (int in : layer.inputs) {
            const int producer_tail = tail_[static_cast<size_t>(in)];
            if (!spilled_[static_cast<size_t>(in)]) {
                AddDep(&deps, producer_tail);
                continue;
            }
            const Layer& producer = g_.layer(in);
            const int64_t bytes = ActBytes(
                opts_.batch * FeatureElements(producer.out_shape));
            const double f =
                pins_.act_fraction[static_cast<size_t>(in)];
            const auto cmem_bytes =
                static_cast<int64_t>(f * static_cast<double>(bytes));
            const int64_t hbm_bytes = bytes - cmem_bytes;
            for (auto [engine, part] :
                 {std::pair{Engine::kHbm, hbm_bytes},
                  std::pair{Engine::kCmem, cmem_bytes}}) {
                if (part <= 0) continue;
                Instr dma;
                dma.engine = engine;
                dma.kind = InstrKind::kDmaIn;
                dma.dtype = opts_.dtype;
                dma.layer_id = layer.id;
                dma.label = layer.name + ".act_in";
                dma.bytes = part;
                AddDep(&dma.deps, producer_tail);
                AddDep(&deps, Add(dma));
            }
        }
        return deps;
    }

    /**
     * Emits the weight-load instructions for a layer with
     * @p weight_bytes of parameters. Returns per-chunk dependency ids
     * that the corresponding compute chunks must wait for; `chunks` is
     * the chunk count used (1 below O3).
     */
    std::vector<int>
    EmitWeightLoad(const Layer& layer, int64_t weight_bytes, int* chunks)
    {
        const double pin =
            pins_.weight_fraction[static_cast<size_t>(layer.id)];
        const auto pinned =
            static_cast<int64_t>(pin * static_cast<double>(weight_bytes));
        const int64_t streamed = weight_bytes - pinned;

        prog_.memory.weight_bytes_total += weight_bytes;
        prog_.memory.weight_bytes_cmem += pinned;
        prog_.memory.weight_bytes_hbm += streamed;

        // Pinned weights are read from CMEM during compute. The read is
        // recorded for bandwidth/energy accounting but does not gate the
        // MXU: CMEM feeds the array in lockstep.
        if (pinned > 0) {
            Instr cm;
            cm.engine = Engine::kCmem;
            cm.kind = InstrKind::kDmaIn;
            cm.dtype = opts_.dtype;
            cm.layer_id = layer.id;
            cm.label = layer.name + ".w_cmem";
            cm.bytes = pinned;
            AddDep(&cm.deps, prev_tail_);
            Add(cm);
        }

        std::vector<int> chunk_deps;
        if (streamed <= 0) {
            *chunks = 1;
            return chunk_deps;  // nothing gates compute
        }

        int n_chunks = 1;
        if (opts_.opt_level >= 3) {
            n_chunks = static_cast<int>(std::clamp<int64_t>(
                CeilDiv(streamed, kWeightChunkBytes), 1,
                kMaxWeightChunks));
        }
        *chunks = n_chunks;
        const int64_t per_chunk = CeilDiv(streamed, n_chunks);
        int64_t left = streamed;
        for (int i = 0; i < n_chunks; ++i) {
            Instr dma;
            dma.engine = Engine::kHbm;
            dma.kind = InstrKind::kDmaIn;
            dma.dtype = opts_.dtype;
            dma.layer_id = layer.id;
            dma.label = layer.name + StrFormat(".w%d", i);
            dma.bytes = std::min(per_chunk, left);
            left -= dma.bytes;
            if (opts_.opt_level < 3) {
                // No cross-layer prefetch: the load waits for the
                // previous layer to finish.
                AddDep(&dma.deps, prev_tail_);
            }
            chunk_deps.push_back(Add(dma));
        }
        return chunk_deps;
    }

    /** Emits one MXU macro-op. */
    int
    EmitMxu(const Layer& layer, const std::string& suffix, int64_t rows,
            int64_t k_dim, int64_t n_dim, std::vector<int> deps)
    {
        Instr mm;
        mm.engine = Engine::kMxu;
        mm.kind = InstrKind::kMatmulTile;
        mm.dtype = opts_.dtype;
        mm.layer_id = layer.id;
        mm.label = layer.name + suffix;
        mm.rows = rows;
        mm.k_tiles = CeilDiv(k_dim, chip_.mxu.rows);
        mm.n_tiles = CeilDiv(n_dim, chip_.mxu.cols);
        mm.macs = static_cast<double>(rows) *
                  static_cast<double>(k_dim) * static_cast<double>(n_dim);
        mm.deps = std::move(deps);
        return Add(mm);
    }

    /** Emits one VPU macro-op. */
    int
    EmitVpu(const Layer& layer, const std::string& suffix,
            int64_t elements, double flops_per_element,
            std::vector<int> deps, bool complex_vector = false)
    {
        Instr op;
        op.engine = Engine::kVpu;
        op.kind = InstrKind::kVectorOp;
        op.dtype = opts_.dtype;
        op.layer_id = layer.id;
        op.label = layer.name + suffix;
        op.elements = std::max<int64_t>(elements, 1);
        op.flops_per_element = flops_per_element;
        op.complex_vector = complex_vector;
        op.deps = std::move(deps);
        return Add(op);
    }

    /**
     * Post-compute bookkeeping: all-gather when sharded, spill decision,
     * tail/in_hbm update. @p compute_tail is the id of the last compute
     * instruction of this layer; @p sharded says whether the layer's
     * outputs were split across chips.
     */
    void
    FinishLayer(const Layer& layer, int compute_tail, bool sharded)
    {
        const int64_t out_bytes =
            ActBytes(opts_.batch * FeatureElements(layer.out_shape));
        int tail = compute_tail;

        if (sharded && opts_.num_chips > 1) {
            // All-gather the sharded outputs. The collectives model
            // costs the schedule on the domain's topology; the result
            // is expressed as equivalent bytes on the simulator's
            // aggregate ICI engine.
            auto cost = CostCollective(Collective::kAllGather,
                                       out_bytes, domain_);
            T4I_CHECK(cost.ok(), cost.status().ToString().c_str());
            const double aggregate_bw =
                static_cast<double>(chip_.ici_links) *
                chip_.ici_bw_Bps_per_link;
            Instr ici;
            ici.engine = Engine::kIci;
            ici.kind = InstrKind::kIciTransfer;
            ici.dtype = opts_.dtype;
            ici.layer_id = layer.id;
            ici.label = layer.name + ".allgather";
            ici.bytes = std::max<int64_t>(
                static_cast<int64_t>(cost.value().time_s *
                                     aggregate_bw), 1);
            AddDep(&ici.deps, tail);
            tail = Add(ici);
        }

        const bool spill =
            opts_.opt_level < 1 || out_bytes > vmem_budget_;
        if (spill) {
            // The planner may have staged part (or all) of this output
            // in CMEM; the rest goes to HBM. Writes chain so the tail
            // covers both.
            const double f =
                pins_.act_fraction[static_cast<size_t>(layer.id)];
            const auto cmem_bytes = static_cast<int64_t>(
                f * static_cast<double>(out_bytes));
            const int64_t hbm_bytes = out_bytes - cmem_bytes;
            for (auto [engine, part] :
                 {std::pair{Engine::kHbm, hbm_bytes},
                  std::pair{Engine::kCmem, cmem_bytes}}) {
                if (part <= 0) continue;
                Instr dma;
                dma.engine = engine;
                dma.kind = InstrKind::kDmaOut;
                dma.dtype = opts_.dtype;
                dma.layer_id = layer.id;
                dma.label = layer.name + ".act_out";
                dma.bytes = part;
                AddDep(&dma.deps, tail);
                tail = Add(dma);
            }
            prog_.memory.activation_bytes_hbm += hbm_bytes;
            prog_.memory.activation_bytes_cmem += cmem_bytes;
        } else {
            prog_.memory.peak_vmem_bytes =
                std::max(prog_.memory.peak_vmem_bytes, out_bytes);
        }
        tail_[static_cast<size_t>(layer.id)] = tail;
        spilled_[static_cast<size_t>(layer.id)] = spill;
        prev_tail_ = tail;
    }

    /** True when pointwise layers are fused into their neighbors. */
    bool FusionEnabled() const { return opts_.opt_level >= 2; }

    // Per-kind emission -----------------------------------------------

    Status EmitInput(const Layer& layer);
    Status EmitDense(const Layer& layer);
    Status EmitConv(const Layer& layer);
    Status EmitDepthwiseConv(const Layer& layer);
    Status EmitPool(const Layer& layer, bool global);
    Status EmitLstm(const Layer& layer);
    Status EmitAttention(const Layer& layer);
    Status EmitFeedForward(const Layer& layer);
    Status EmitPointwise(const Layer& layer);
    Status EmitEmbedding(const Layer& layer);
    Status EmitConcat(const Layer& layer);
    Status EmitDecoderBlock(const Layer& layer);
    Status EmitDecoderPrefill(const Layer& layer);
    Status EmitFlatten(const Layer& layer);
    Status EmitHostOut(const Layer& layer);

    /** Weight bytes of this layer at the compile dtype (per chip). */
    StatusOr<int64_t> ShardedWeightBytes(const Layer& layer) const;

    Program prog_;
    /** Canonical op name -> Program::hlo_ops index. */
    std::map<std::string, int> op_ids_;
    const Graph& g_;
    const ChipConfig& chip_;
    CompileOptions opts_;
    CmemPlan pins_;
    IciDomain domain_;
    std::vector<int> tail_;
    std::vector<bool> spilled_;
    int prev_tail_ = -1;
    int64_t vmem_budget_ = 0;
};

StatusOr<int64_t>
Emitter::ShardedWeightBytes(const Layer& layer) const
{
    auto cost = ComputeLayerCost(layer, g_.InputShapeOf(layer.id),
                                 opts_.batch, opts_.dtype, opts_.dtype);
    T4I_RETURN_IF_ERROR(cost.status());
    return cost.value().weight_bytes / opts_.num_chips;
}

Status
Emitter::EmitInput(const Layer& layer)
{
    if (!opts_.include_host_transfers) {
        tail_[static_cast<size_t>(layer.id)] = -1;
        spilled_[static_cast<size_t>(layer.id)] = false;
        return Status::Ok();
    }
    Instr host;
    host.engine = Engine::kPcieIn;
    host.kind = InstrKind::kHostTransfer;
    host.dtype = opts_.dtype;
    host.layer_id = layer.id;
    host.label = layer.name + ".h2d";
    // The host runtime ships inputs pre-converted to the device dtype
    // (images as int8/bf16, ids packed), as production serving does.
    host.bytes = opts_.batch * FeatureElements(layer.out_shape) *
                 DTypeBytes(opts_.dtype);
    tail_[static_cast<size_t>(layer.id)] = Add(host);
    spilled_[static_cast<size_t>(layer.id)] = false;
    return Status::Ok();
}

Status
Emitter::EmitDense(const Layer& layer)
{
    const auto& p = layer.params;
    const auto in_shape = g_.InputShapeOf(layer.id);
    const int64_t rows =
        opts_.batch * (FeatureElements(in_shape) / p.in_features);
    const int64_t n_per_chip = CeilDiv(p.out_features, opts_.num_chips);

    auto wb = ShardedWeightBytes(layer);
    T4I_RETURN_IF_ERROR(wb.status());

    std::vector<int> act_deps = InputDeps(layer);
    int chunks = 1;
    std::vector<int> w_deps = EmitWeightLoad(layer, wb.value(), &chunks);

    // Split the output columns across weight chunks so compute chunk i
    // only waits for DMA chunk i (double buffering).
    const int64_t n_chunk = CeilDiv(n_per_chip, chunks);
    int last = -1;
    for (int i = 0; i < chunks; ++i) {
        const int64_t n_dim =
            std::min<int64_t>(n_chunk, n_per_chip - i * n_chunk);
        if (n_dim <= 0) break;
        std::vector<int> deps = act_deps;
        if (i < static_cast<int>(w_deps.size())) {
            AddDep(&deps, w_deps[static_cast<size_t>(i)]);
        }
        AddDep(&deps, last);  // MXU runs chunks in order anyway
        last = EmitMxu(layer, chunks > 1 ? StrFormat(".mm%d", i) : ".mm",
                       rows, p.in_features, n_dim, std::move(deps));
    }
    // Bias + activation epilogue (bias always applies).
    last = EmitVpu(layer, ".epilogue", rows * n_per_chip, 2.0, {last},
                   layer.params.activation == Activation::kGelu);
    FinishLayer(layer, last, /*sharded=*/true);
    return Status::Ok();
}

Status
Emitter::EmitConv(const Layer& layer)
{
    const auto& p = layer.params;
    const auto in_shape = g_.InputShapeOf(layer.id);
    const int64_t cin = in_shape[2];
    const int64_t oh = layer.out_shape[0];
    const int64_t ow = layer.out_shape[1];
    const int64_t rows = opts_.batch * oh * ow;
    const int64_t k_dim = p.kernel_h * p.kernel_w * cin;
    const int64_t n_per_chip = CeilDiv(p.out_channels, opts_.num_chips);

    auto wb = ShardedWeightBytes(layer);
    T4I_RETURN_IF_ERROR(wb.status());

    std::vector<int> act_deps = InputDeps(layer);
    int chunks = 1;
    std::vector<int> w_deps = EmitWeightLoad(layer, wb.value(), &chunks);

    const int64_t n_chunk = CeilDiv(n_per_chip, chunks);
    int last = -1;
    for (int i = 0; i < chunks; ++i) {
        const int64_t n_dim =
            std::min<int64_t>(n_chunk, n_per_chip - i * n_chunk);
        if (n_dim <= 0) break;
        std::vector<int> deps = act_deps;
        if (i < static_cast<int>(w_deps.size())) {
            AddDep(&deps, w_deps[static_cast<size_t>(i)]);
        }
        AddDep(&deps, last);
        last = EmitMxu(layer, chunks > 1 ? StrFormat(".mm%d", i) : ".mm",
                       rows, k_dim, n_dim, std::move(deps));
    }
    last = EmitVpu(layer, ".epilogue", rows * n_per_chip, 2.0, {last});
    FinishLayer(layer, last, /*sharded=*/true);
    return Status::Ok();
}

Status
Emitter::EmitDepthwiseConv(const Layer& layer)
{
    // Depthwise convolution maps badly onto a systolic array: each
    // output channel contracts only its own KxK window, so the MXU
    // executes it as a blocked-diagonal matmul (k = K*K*C against
    // n = C) whose utilization is ~1/C of a dense conv. The macs field
    // records the *useful* work; the descriptor records the padded
    // passes actually occupying the array — the gap is exactly the
    // MobileNet-on-TPU inefficiency practitioners report.
    const auto& p = layer.params;
    const auto in_shape = g_.InputShapeOf(layer.id);
    const int64_t c = in_shape[2];
    const int64_t oh = layer.out_shape[0];
    const int64_t ow = layer.out_shape[1];
    const int64_t rows = opts_.batch * oh * ow;
    const int64_t c_per_chip = CeilDiv(c, opts_.num_chips);

    auto wb = ShardedWeightBytes(layer);
    T4I_RETURN_IF_ERROR(wb.status());
    std::vector<int> deps = InputDeps(layer);
    int chunks = 1;
    std::vector<int> w_deps = EmitWeightLoad(layer, wb.value(), &chunks);
    for (int w : w_deps) AddDep(&deps, w);

    Instr mm;
    mm.engine = Engine::kMxu;
    mm.kind = InstrKind::kMatmulTile;
    mm.dtype = opts_.dtype;
    mm.layer_id = layer.id;
    mm.label = layer.name + ".dw";
    mm.rows = rows;
    mm.k_tiles = CeilDiv(p.kernel_h * p.kernel_w * c_per_chip,
                         chip_.mxu.rows);
    mm.n_tiles = CeilDiv(c_per_chip, chip_.mxu.cols);
    mm.macs = static_cast<double>(rows) *
              static_cast<double>(p.kernel_h * p.kernel_w) *
              static_cast<double>(c_per_chip);
    mm.deps = std::move(deps);
    int last = Add(mm);
    last = EmitVpu(layer, ".epilogue", rows * c_per_chip, 2.0, {last});
    FinishLayer(layer, last, /*sharded=*/true);
    return Status::Ok();
}

Status
Emitter::EmitPool(const Layer& layer, bool global)
{
    const auto in_shape = g_.InputShapeOf(layer.id);
    std::vector<int> deps = InputDeps(layer);
    const int64_t in_elems = opts_.batch * FeatureElements(in_shape);
    const double flops =
        global ? 1.0
               : static_cast<double>(layer.params.kernel_h *
                                     layer.params.kernel_w);
    int last = EmitVpu(layer, ".pool", in_elems, flops, std::move(deps));
    FinishLayer(layer, last, /*sharded=*/false);
    return Status::Ok();
}

Status
Emitter::EmitLstm(const Layer& layer)
{
    const auto& p = layer.params;
    const auto in_shape = g_.InputShapeOf(layer.id);
    const int64_t in_dim = in_shape[1];
    const int64_t gates_per_chip =
        CeilDiv(4 * p.hidden_dim, opts_.num_chips);

    auto wb = ShardedWeightBytes(layer);
    T4I_RETURN_IF_ERROR(wb.status());

    std::vector<int> act_deps = InputDeps(layer);
    int chunks = 1;
    std::vector<int> w_deps = EmitWeightLoad(layer, wb.value(), &chunks);

    // The recurrence serializes steps; each step is one fused
    // [x_t, h_{t-1}] x W matmul plus pointwise gate math.
    int last = -1;
    for (int64_t t = 0; t < p.seq_len; ++t) {
        std::vector<int> deps = act_deps;
        for (int w : w_deps) AddDep(&deps, w);
        AddDep(&deps, last);
        int mm = EmitMxu(layer, StrFormat(".t%lld",
                                          static_cast<long long>(t)),
                         opts_.batch, in_dim + p.hidden_dim,
                         gates_per_chip, std::move(deps));
        last = EmitVpu(layer,
                       StrFormat(".gates%lld", static_cast<long long>(t)),
                       opts_.batch * p.hidden_dim, 10.0, {mm});
    }
    FinishLayer(layer, last, /*sharded=*/true);
    return Status::Ok();
}

Status
Emitter::EmitAttention(const Layer& layer)
{
    const auto& p = layer.params;
    const int64_t seq = g_.InputShapeOf(layer.id)[0];
    const int64_t d = p.d_model;
    const int64_t heads = std::max<int64_t>(p.num_heads, 1);
    const int64_t dh = std::max<int64_t>(d / heads, 1);
    const int64_t rows_t = opts_.batch * seq;

    auto wb = ShardedWeightBytes(layer);
    T4I_RETURN_IF_ERROR(wb.status());

    std::vector<int> act_deps = InputDeps(layer);
    int chunks = 1;
    std::vector<int> w_deps = EmitWeightLoad(layer, wb.value(), &chunks);
    std::vector<int> deps = act_deps;
    for (int w : w_deps) AddDep(&deps, w);

    // QKV projection (columns sharded across chips).
    int qkv = EmitMxu(layer, ".qkv", rows_t, d,
                      CeilDiv(3 * d, opts_.num_chips), deps);
    // Scores: per-head [seq x dh] x [dh x seq] (heads sharded).
    const int64_t heads_per_chip = CeilDiv(heads, opts_.num_chips);
    int scores = EmitMxu(layer, ".scores",
                         opts_.batch * heads_per_chip * seq, dh, seq,
                         {qkv});
    int softmax = EmitVpu(layer, ".softmax",
                          opts_.batch * heads_per_chip * seq * seq, 5.0,
                          {scores}, /*complex_vector=*/true);
    // Weighted values.
    int av = EmitMxu(layer, ".av", opts_.batch * heads_per_chip * seq,
                     seq, dh, {softmax});
    // Output projection.
    int proj = EmitMxu(layer, ".proj", rows_t, d,
                       CeilDiv(d, opts_.num_chips), {av});
    FinishLayer(layer, proj, /*sharded=*/true);
    return Status::Ok();
}

Status
Emitter::EmitFeedForward(const Layer& layer)
{
    const auto& p = layer.params;
    const int64_t seq = g_.InputShapeOf(layer.id)[0];
    const int64_t rows = opts_.batch * seq;

    auto wb = ShardedWeightBytes(layer);
    T4I_RETURN_IF_ERROR(wb.status());

    std::vector<int> act_deps = InputDeps(layer);
    int chunks = 1;
    std::vector<int> w_deps = EmitWeightLoad(layer, wb.value(), &chunks);
    std::vector<int> deps = act_deps;
    for (int w : w_deps) AddDep(&deps, w);

    int mm1 = EmitMxu(layer, ".mm1", rows, p.d_model,
                      CeilDiv(p.d_ff, opts_.num_chips), deps);
    int act = EmitVpu(layer, ".gelu",
                      rows * CeilDiv(p.d_ff, opts_.num_chips), 8.0,
                      {mm1}, /*complex_vector=*/true);
    int mm2 = EmitMxu(layer, ".mm2", rows,
                      CeilDiv(p.d_ff, opts_.num_chips), p.d_model, {act});
    FinishLayer(layer, mm2, /*sharded=*/true);
    return Status::Ok();
}

Status
Emitter::EmitPointwise(const Layer& layer)
{
    // LayerNorm / Softmax / Elementwise. With fusion these consume the
    // producer stream; otherwise they round-trip through memory like any
    // other layer (that difference is most of O2's win).
    const auto in_shape = g_.InputShapeOf(layer.id);
    const int64_t elems = opts_.batch * FeatureElements(in_shape);

    double flops = 1.0;
    switch (layer.kind) {
      case LayerKind::kLayerNorm: flops = 8.0; break;
      case LayerKind::kSoftmax: flops = 5.0; break;
      case LayerKind::kElementwise:
        flops = layer.params.flops_per_element;
        break;
      default: break;
    }

    const bool complex_vec = layer.kind == LayerKind::kLayerNorm ||
                             layer.kind == LayerKind::kSoftmax ||
                             layer.params.activation == Activation::kGelu;
    if (FusionEnabled()) {
        std::vector<int> deps;
        for (int in : layer.inputs) {
            AddDep(&deps, tail_[static_cast<size_t>(in)]);
        }
        int last = flops > 0.0
                       ? EmitVpu(layer, ".fused", elems, flops, deps,
                                 complex_vec)
                       : (deps.empty() ? -1 : deps.front());
        // Fused ops inherit the producer's residency.
        tail_[static_cast<size_t>(layer.id)] =
            last >= 0 ? last : tail_[static_cast<size_t>(
                                   layer.inputs[0])];
        spilled_[static_cast<size_t>(layer.id)] =
            spilled_[static_cast<size_t>(layer.inputs[0])];
        pins_.act_fraction[static_cast<size_t>(layer.id)] =
            pins_.act_fraction[static_cast<size_t>(layer.inputs[0])];
        prev_tail_ = tail_[static_cast<size_t>(layer.id)];
        return Status::Ok();
    }

    std::vector<int> deps = InputDeps(layer);
    int last = EmitVpu(layer, ".pw", elems, std::max(flops, 0.5),
                       std::move(deps), complex_vec);
    FinishLayer(layer, last, /*sharded=*/false);
    return Status::Ok();
}

Status
Emitter::EmitEmbedding(const Layer& layer)
{
    const auto& p = layer.params;
    const double pin =
        pins_.weight_fraction[static_cast<size_t>(layer.id)];
    const int64_t gathered_bytes =
        opts_.batch * p.lookups_per_sample * p.embed_dim *
        DTypeBytes(opts_.dtype) / opts_.num_chips;
    const auto cmem_bytes = static_cast<int64_t>(
        pin * static_cast<double>(gathered_bytes));
    const int64_t hbm_bytes = gathered_bytes - cmem_bytes;

    // The table itself counts as (pinnable) weights.
    auto wb = ShardedWeightBytes(layer);
    T4I_RETURN_IF_ERROR(wb.status());
    prog_.memory.weight_bytes_total += wb.value();
    const auto pinned_table = static_cast<int64_t>(
        pin * static_cast<double>(wb.value()));
    prog_.memory.weight_bytes_cmem += pinned_table;
    prog_.memory.weight_bytes_hbm += wb.value() - pinned_table;

    std::vector<int> deps = InputDeps(layer);
    std::vector<int> parts;
    if (hbm_bytes > 0) {
        Instr gather;
        gather.engine = Engine::kHbm;
        gather.kind = InstrKind::kGather;
        gather.dtype = opts_.dtype;
        gather.layer_id = layer.id;
        gather.label = layer.name + ".gather_hbm";
        gather.bytes = hbm_bytes;
        gather.bw_efficiency = kHbmGatherEfficiency;
        gather.deps = deps;
        parts.push_back(Add(gather));
    }
    if (cmem_bytes > 0) {
        Instr gather;
        gather.engine = Engine::kCmem;
        gather.kind = InstrKind::kGather;
        gather.dtype = opts_.dtype;
        gather.layer_id = layer.id;
        gather.label = layer.name + ".gather_cmem";
        gather.bytes = cmem_bytes;
        gather.bw_efficiency = kCmemGatherEfficiency;
        gather.deps = deps;
        parts.push_back(Add(gather));
    }
    // Join + index arithmetic on the VPU.
    int last = EmitVpu(layer, ".combine",
                       opts_.batch * p.lookups_per_sample, 1.0,
                       std::move(parts));
    FinishLayer(layer, last, /*sharded=*/opts_.num_chips > 1);
    return Status::Ok();
}

Status
Emitter::EmitFlatten(const Layer& layer)
{
    // Pure relabeling: forward the producer's tail and residency.
    const int in = layer.inputs[0];
    tail_[static_cast<size_t>(layer.id)] = tail_[static_cast<size_t>(in)];
    spilled_[static_cast<size_t>(layer.id)] =
        spilled_[static_cast<size_t>(in)];
    pins_.act_fraction[static_cast<size_t>(layer.id)] =
        pins_.act_fraction[static_cast<size_t>(in)];
    return Status::Ok();
}

Status
Emitter::EmitHostOut(const Layer& layer)
{
    if (!opts_.include_host_transfers) return Status::Ok();
    Instr host;
    host.engine = Engine::kPcie;
    host.kind = InstrKind::kHostTransfer;
    host.dtype = opts_.dtype;
    host.layer_id = layer.id;
    host.label = layer.name + ".d2h";
    host.bytes = std::max<int64_t>(
        opts_.batch * FeatureElements(layer.out_shape) * 4, 1);
    AddDep(&host.deps, tail_[static_cast<size_t>(layer.id)]);
    const int id = Add(host);
    tail_[static_cast<size_t>(layer.id)] = id;
    prev_tail_ = id;
    return Status::Ok();
}


Status
Emitter::EmitConcat(const Layer& layer)
{
    // Gathers every input into one contiguous buffer on the VPU's
    // copy path; inputs may live in different memories.
    std::vector<int> deps = InputDeps(layer);
    const int64_t elems =
        opts_.batch * FeatureElements(layer.out_shape);
    int last = EmitVpu(layer, ".concat", elems, 1.0, std::move(deps));
    FinishLayer(layer, last, /*sharded=*/false);
    return Status::Ok();
}

Status
Emitter::EmitDecoderBlock(const Layer& layer)
{
    if (layer.params.prefill) return EmitDecoderPrefill(layer);
    const auto& p = layer.params;
    const int64_t d = p.d_model;
    const int64_t heads = std::max<int64_t>(p.num_heads, 1);
    const int64_t chips = opts_.num_chips;
    const int64_t mxu_dim = chip_.mxu.rows;

    auto wb = ShardedWeightBytes(layer);
    T4I_RETURN_IF_ERROR(wb.status());
    std::vector<int> act_deps = InputDeps(layer);
    int chunks = 1;
    std::vector<int> w_deps = EmitWeightLoad(layer, wb.value(), &chunks);

    // Projections + FFN share rows (= batch single-token queries), so
    // their systolic passes aggregate into one macro-op per step. The
    // attention matvecs over the growing KV cache form a second; the
    // cache itself streams from HBM each step (it cannot fit VMEM at
    // production contexts) — that stream is what makes small-batch
    // decode memory-bound.
    const int64_t proj_passes =
        CeilDiv(d, mxu_dim) * CeilDiv(CeilDiv(3 * d, chips), mxu_dim) +
        CeilDiv(d, mxu_dim) * CeilDiv(CeilDiv(d, chips), mxu_dim) +
        CeilDiv(d, mxu_dim) * CeilDiv(CeilDiv(p.d_ff, chips), mxu_dim) +
        CeilDiv(p.d_ff, mxu_dim) * CeilDiv(CeilDiv(d, chips), mxu_dim);
    const double proj_macs =
        static_cast<double>(opts_.batch) *
        (4.0 * static_cast<double>(d) * static_cast<double>(d) +
         2.0 * static_cast<double>(d) * static_cast<double>(p.d_ff)) /
        static_cast<double>(chips);

    // CMEM-resident share of the KV stream (src/llm/ residency
    // planning). Clamped here so callers can pass a raw budget ratio.
    const double kv_frac =
        std::min(1.0, std::max(0.0, opts_.kv_cmem_fraction));

    int last = -1;
    for (int64_t t = 0; t < p.seq_len; ++t) {
        const int64_t ctx = p.kv_len + t + 1;
        // KV cache stream for this step (heads sharded across chips).
        const int64_t kv_total = std::max<int64_t>(
            opts_.batch * ctx * 2 * d * DTypeBytes(opts_.dtype) /
                chips, 1);
        const int64_t kv_cmem_bytes =
            static_cast<int64_t>(static_cast<double>(kv_total) *
                                 kv_frac);
        // The CMEM-resident slice reads over the wide on-chip port;
        // emitted first so a fraction of 0 leaves the HBM stream (and
        // the whole instruction sequence) bit-identical to pre-LLM
        // compilations.
        int kv_cmem_id = -1;
        if (kv_cmem_bytes > 0) {
            Instr kvc;
            kvc.engine = Engine::kCmem;
            kvc.kind = InstrKind::kDmaIn;
            kvc.dtype = opts_.dtype;
            kvc.layer_id = layer.id;
            kvc.label = layer.name +
                        StrFormat(".kvc%lld",
                                  static_cast<long long>(t));
            kvc.bytes = kv_cmem_bytes;
            kvc.bw_efficiency = 0.9;
            AddDep(&kvc.deps, last);
            kv_cmem_id = Add(kvc);
        }
        Instr kv;
        kv.engine = Engine::kHbm;
        kv.kind = InstrKind::kDmaIn;
        kv.dtype = opts_.dtype;
        kv.layer_id = layer.id;
        kv.label = layer.name +
                   StrFormat(".kv%lld", static_cast<long long>(t));
        kv.bytes = std::max<int64_t>(kv_total - kv_cmem_bytes, 1);
        kv.bw_efficiency = 0.7;
        AddDep(&kv.deps, last);
        const int kv_id = Add(kv);

        // Projections + FFN.
        std::vector<int> deps = act_deps;
        for (int w : w_deps) AddDep(&deps, w);
        AddDep(&deps, last);
        Instr proj;
        proj.engine = Engine::kMxu;
        proj.kind = InstrKind::kMatmulTile;
        proj.dtype = opts_.dtype;
        proj.layer_id = layer.id;
        proj.label = layer.name +
                     StrFormat(".proj%lld", static_cast<long long>(t));
        proj.rows = opts_.batch;
        proj.k_tiles = proj_passes;
        proj.n_tiles = 1;
        proj.macs = proj_macs;
        proj.deps = std::move(deps);
        const int proj_id = Add(proj);

        // Attention matvecs over the cache.
        Instr attn;
        attn.engine = Engine::kMxu;
        attn.kind = InstrKind::kMatmulTile;
        attn.dtype = opts_.dtype;
        attn.layer_id = layer.id;
        attn.label = layer.name +
                     StrFormat(".attn%lld", static_cast<long long>(t));
        attn.rows = opts_.batch * CeilDiv(heads, chips);
        attn.k_tiles = 2 * CeilDiv(ctx, mxu_dim);
        attn.n_tiles = 1;
        attn.macs = static_cast<double>(opts_.batch) * 2.0 *
                    static_cast<double>(d) *
                    static_cast<double>(ctx) /
                    static_cast<double>(chips);
        AddDep(&attn.deps, proj_id);
        AddDep(&attn.deps, kv_id);
        if (kv_cmem_id >= 0) AddDep(&attn.deps, kv_cmem_id);
        const int attn_id = Add(attn);

        // Softmax + residual/norm glue.
        last = EmitVpu(layer,
                       StrFormat(".sm%lld", static_cast<long long>(t)),
                       opts_.batch * (CeilDiv(heads, chips) * ctx + d),
                       4.0, {attn_id}, /*complex_vector=*/true);

        // Tensor-parallel decode all-reduces the activations each
        // step (two per block in Megatron-style sharding; folded into
        // one equivalent transfer).
        if (chips > 1) {
            auto cost = CostCollective(
                Collective::kAllReduce,
                2 * opts_.batch * d * DTypeBytes(opts_.dtype),
                domain_);
            T4I_CHECK(cost.ok(), cost.status().ToString().c_str());
            const double aggregate_bw =
                static_cast<double>(chip_.ici_links) *
                chip_.ici_bw_Bps_per_link;
            Instr ici;
            ici.engine = Engine::kIci;
            ici.kind = InstrKind::kIciTransfer;
            ici.dtype = opts_.dtype;
            ici.layer_id = layer.id;
            ici.label = layer.name + StrFormat(
                ".ar%lld", static_cast<long long>(t));
            ici.bytes = std::max<int64_t>(
                static_cast<int64_t>(cost.value().time_s *
                                     aggregate_bw), 1);
            AddDep(&ici.deps, last);
            last = Add(ici);
        }
    }
    // Already reduced per step; no block-level all-gather needed.
    FinishLayer(layer, last, /*sharded=*/false);
    return Status::Ok();
}

Status
Emitter::EmitDecoderPrefill(const Layer& layer)
{
    // The prefill phase of autoregressive serving: all seq_len prompt
    // tokens flow through the block in one batched pass. The matmuls
    // see seq_len rows at once (systolic arrays near peak — the
    // compute-bound half of the workload split), the weights stream
    // once for the whole prompt, and the KV cache is *written* (not
    // streamed back), split across CMEM/HBM by kv_cmem_fraction like
    // the decode-side reads.
    const auto& p = layer.params;
    const int64_t d = p.d_model;
    const int64_t heads = std::max<int64_t>(p.num_heads, 1);
    const int64_t chips = opts_.num_chips;
    const int64_t mxu_dim = chip_.mxu.rows;
    const int64_t seq = std::max<int64_t>(p.seq_len, 1);

    auto wb = ShardedWeightBytes(layer);
    T4I_RETURN_IF_ERROR(wb.status());
    std::vector<int> deps = InputDeps(layer);
    int chunks = 1;
    std::vector<int> w_deps = EmitWeightLoad(layer, wb.value(), &chunks);
    for (int w : w_deps) AddDep(&deps, w);

    // QKV + output projections and the FFN over all tokens at once.
    const int64_t rows = opts_.batch * seq;
    Instr proj;
    proj.engine = Engine::kMxu;
    proj.kind = InstrKind::kMatmulTile;
    proj.dtype = opts_.dtype;
    proj.layer_id = layer.id;
    proj.label = layer.name + ".prefill_proj";
    proj.rows = rows;
    proj.k_tiles =
        CeilDiv(d, mxu_dim) * CeilDiv(CeilDiv(3 * d, chips), mxu_dim) +
        CeilDiv(d, mxu_dim) * CeilDiv(CeilDiv(d, chips), mxu_dim) +
        CeilDiv(d, mxu_dim) * CeilDiv(CeilDiv(p.d_ff, chips), mxu_dim) +
        CeilDiv(p.d_ff, mxu_dim) * CeilDiv(CeilDiv(d, chips), mxu_dim);
    proj.n_tiles = 1;
    proj.macs = static_cast<double>(rows) *
                (4.0 * static_cast<double>(d) * static_cast<double>(d) +
                 2.0 * static_cast<double>(d) *
                     static_cast<double>(p.d_ff)) /
                static_cast<double>(chips);
    proj.deps = std::move(deps);
    const int proj_id = Add(proj);

    // KV cache write for the whole prompt (heads sharded): the
    // CMEM-resident slice first, remainder to HBM — same residency
    // split the decode steps read back.
    const double kv_frac =
        std::min(1.0, std::max(0.0, opts_.kv_cmem_fraction));
    const int64_t kv_total = std::max<int64_t>(
        opts_.batch * seq * 2 * d * DTypeBytes(opts_.dtype) / chips,
        1);
    const int64_t kv_cmem_bytes = static_cast<int64_t>(
        static_cast<double>(kv_total) * kv_frac);
    int kv_cmem_id = -1;
    if (kv_cmem_bytes > 0) {
        Instr kvc;
        kvc.engine = Engine::kCmem;
        kvc.kind = InstrKind::kDmaOut;
        kvc.dtype = opts_.dtype;
        kvc.layer_id = layer.id;
        kvc.label = layer.name + ".prefill_kvc";
        kvc.bytes = kv_cmem_bytes;
        kvc.bw_efficiency = 0.9;
        AddDep(&kvc.deps, proj_id);
        kv_cmem_id = Add(kvc);
    }
    Instr kv;
    kv.engine = Engine::kHbm;
    kv.kind = InstrKind::kDmaOut;
    kv.dtype = opts_.dtype;
    kv.layer_id = layer.id;
    kv.label = layer.name + ".prefill_kv";
    kv.bytes = std::max<int64_t>(kv_total - kv_cmem_bytes, 1);
    kv.bw_efficiency = 0.7;
    AddDep(&kv.deps, proj_id);
    const int kv_id = Add(kv);

    // Causal self-attention over the prompt: QK^T + AV, average
    // context (kv_len + (seq+1)/2) per query under the causal mask.
    const double avg_ctx = static_cast<double>(p.kv_len) +
                           (static_cast<double>(seq) + 1.0) / 2.0;
    Instr attn;
    attn.engine = Engine::kMxu;
    attn.kind = InstrKind::kMatmulTile;
    attn.dtype = opts_.dtype;
    attn.layer_id = layer.id;
    attn.label = layer.name + ".prefill_attn";
    attn.rows = rows * CeilDiv(heads, chips);
    attn.k_tiles = 2 * CeilDiv(static_cast<int64_t>(avg_ctx), mxu_dim);
    attn.n_tiles = 1;
    attn.macs = static_cast<double>(rows) * 2.0 *
                static_cast<double>(d) * avg_ctx /
                static_cast<double>(chips);
    AddDep(&attn.deps, proj_id);
    AddDep(&attn.deps, kv_id);
    if (kv_cmem_id >= 0) AddDep(&attn.deps, kv_cmem_id);
    const int attn_id = Add(attn);

    // Softmax over the causal score matrix + residual/norm glue.
    int last = EmitVpu(
        layer, ".prefill_sm",
        opts_.batch * (CeilDiv(heads, chips) *
                           static_cast<int64_t>(avg_ctx) * seq / 4 +
                       seq * d),
        4.0, {attn_id}, /*complex_vector=*/true);

    // Tensor-parallel prefill all-reduces activations once per block.
    if (chips > 1) {
        auto cost = CostCollective(
            Collective::kAllReduce,
            2 * rows * d * DTypeBytes(opts_.dtype), domain_);
        T4I_CHECK(cost.ok(), cost.status().ToString().c_str());
        const double aggregate_bw =
            static_cast<double>(chip_.ici_links) *
            chip_.ici_bw_Bps_per_link;
        Instr ici;
        ici.engine = Engine::kIci;
        ici.kind = InstrKind::kIciTransfer;
        ici.dtype = opts_.dtype;
        ici.layer_id = layer.id;
        ici.label = layer.name + ".prefill_ar";
        ici.bytes = std::max<int64_t>(
            static_cast<int64_t>(cost.value().time_s * aggregate_bw),
            1);
        AddDep(&ici.deps, last);
        last = Add(ici);
    }
    FinishLayer(layer, last, /*sharded=*/false);
    return Status::Ok();
}

Status
Emitter::Run()
{
    for (const auto& layer : g_.layers()) {
        Status status;
        switch (layer.kind) {
          case LayerKind::kInput:
            status = EmitInput(layer);
            break;
          case LayerKind::kDense:
            status = EmitDense(layer);
            break;
          case LayerKind::kConv2d:
            status = EmitConv(layer);
            break;
          case LayerKind::kDepthwiseConv2d:
            status = EmitDepthwiseConv(layer);
            break;
          case LayerKind::kMaxPool:
            status = EmitPool(layer, /*global=*/false);
            break;
          case LayerKind::kGlobalPool:
            status = EmitPool(layer, /*global=*/true);
            break;
          case LayerKind::kLstm:
            status = EmitLstm(layer);
            break;
          case LayerKind::kAttention:
            status = EmitAttention(layer);
            break;
          case LayerKind::kFeedForward:
            status = EmitFeedForward(layer);
            break;
          case LayerKind::kLayerNorm:
          case LayerKind::kSoftmax:
          case LayerKind::kElementwise:
            status = EmitPointwise(layer);
            break;
          case LayerKind::kEmbedding:
            status = EmitEmbedding(layer);
            break;
          case LayerKind::kFlatten:
            status = EmitFlatten(layer);
            break;
          case LayerKind::kConcat:
            status = EmitConcat(layer);
            break;
          case LayerKind::kDecoderBlock:
            status = EmitDecoderBlock(layer);
            break;
        }
        T4I_RETURN_IF_ERROR(status);
    }
    // Ship the final layer's result to the host.
    return EmitHostOut(g_.layer(g_.num_layers() - 1));
}

}  // namespace

StatusOr<Program>
Compile(const Graph& graph, const ChipConfig& chip,
        const CompileOptions& options)
{
    if (!graph.finalized()) {
        return Status::FailedPrecondition("graph '" + graph.name() +
                                          "' not finalized");
    }
    if (options.batch < 1) {
        return Status::InvalidArgument("batch must be >= 1");
    }
    if (options.opt_level < 0 || options.opt_level > 3) {
        return Status::InvalidArgument("opt_level must be in [0,3]");
    }
    // Lesson 6: dtype support is a hard compatibility gate.
    if (options.dtype == DType::kInt8 && !chip.supports_int8) {
        return Status::FailedPrecondition(
            chip.name + " has no int8 datapath");
    }
    if ((options.dtype == DType::kBf16 || options.dtype == DType::kFp32) &&
        !chip.supports_bf16) {
        return Status::FailedPrecondition(
            chip.name + " has no floating-point datapath; the model must "
                        "be quantized first (Lesson 6)");
    }
    if (options.num_chips < 1) {
        return Status::InvalidArgument("num_chips must be >= 1");
    }
    if (options.num_chips > 1 && chip.ici_links == 0) {
        return Status::FailedPrecondition(
            chip.name + " has no ICI links for multi-chip execution");
    }

    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    obs::ScopedTimer total_timer(
        reg.GetHistogram("compiler.pass.total.seconds"));

    int64_t cmem = options.cmem_override_bytes >= 0
                       ? options.cmem_override_bytes
                       : chip.cmem_bytes;
    if (options.opt_level < 3) cmem = 0;  // pinning is an O3 feature

    // CMEM is allocated jointly across pinned weights and spilled
    // activations; the VMEM spill threshold must match the emitter's.
    obs::ScopedTimer plan_timer(
        reg.GetHistogram("compiler.pass.plan_cmem.seconds"));
    auto pins = PlanCmem(graph, options.batch, options.dtype,
                         options.dtype, cmem, chip.vmem_bytes / 2,
                         options.cmem_policy);
    plan_timer.Stop();
    T4I_RETURN_IF_ERROR(pins.status());

    // CMEM planner hit rate: how much of the model's weight traffic
    // the planner managed to keep on-chip.
    if (pins.value().total_weight_bytes > 0) {
        reg.GetGauge("compiler.cmem.pinned_weight_fraction")
            ->Set(static_cast<double>(
                      pins.value().pinned_weight_bytes) /
                  static_cast<double>(
                      pins.value().total_weight_bytes));
    }
    reg.GetGauge("compiler.cmem.pinned_weight_bytes")
        ->Set(static_cast<double>(pins.value().pinned_weight_bytes));
    reg.GetGauge("compiler.cmem.staged_act_bytes")
        ->Set(static_cast<double>(pins.value().staged_act_bytes));

    // Capacity check: streamed weights plus the activation high-water
    // mark must fit DRAM. Activations are transient, so the live set is
    // the largest single layer boundary, not the sum over the model.
    auto cost = graph.Cost(options.batch, options.dtype, options.dtype);
    T4I_RETURN_IF_ERROR(cost.status());
    int64_t max_live_act = 0;
    for (const auto& layer : graph.layers()) {
        if (layer.kind == LayerKind::kInput) continue;
        auto lc = ComputeLayerCost(layer, graph.InputShapeOf(layer.id),
                                   options.batch, options.dtype,
                                   options.dtype);
        T4I_RETURN_IF_ERROR(lc.status());
        max_live_act = std::max(
            max_live_act, lc.value().in_bytes + lc.value().out_bytes);
    }
    const int64_t dram_need =
        (cost.value().weight_bytes -
         pins.value().pinned_weight_bytes) / options.num_chips +
        2 * max_live_act / options.num_chips;
    if (dram_need > chip.dram_bytes) {
        return Status::ResourceExhausted(StrFormat(
            "%s: working set %.1f GiB exceeds %.1f GiB of device memory",
            graph.name().c_str(),
            static_cast<double>(dram_need) / (1ull << 30),
            static_cast<double>(chip.dram_bytes) / (1ull << 30)));
    }

    IciDomain domain;  // meaningful only when num_chips > 1
    if (options.num_chips > 1) {
        auto made = MakeDomain(chip, options.num_chips,
                               options.ici_topology);
        T4I_RETURN_IF_ERROR(made.status());
        domain = made.value();
    }
    Emitter emitter(graph, chip, options,
                    std::move(pins).ConsumeValue(), domain);
    obs::ScopedTimer emit_timer(
        reg.GetHistogram("compiler.pass.emit.seconds"));
    T4I_RETURN_IF_ERROR(emitter.Run());
    Program prog = emitter.Take();
    emit_timer.Stop();
    T4I_RETURN_IF_ERROR(prog.Validate());

    // Emission decision counts: fusion take rate and how finely the
    // weight streams were chunked for prefetch (both are what the
    // opt-level ladder actually changes).
    reg.GetCounter("compiler.compiles")->Increment();
    reg.GetCounter("compiler.layers_total")
        ->Increment(graph.num_layers());
    reg.GetCounter("compiler.instrs_emitted")
        ->Increment(static_cast<int64_t>(prog.instrs.size()));
    int64_t fused = 0;
    if (options.opt_level >= 2) {
        for (const auto& layer : graph.layers()) {
            if (layer.kind == LayerKind::kLayerNorm ||
                layer.kind == LayerKind::kSoftmax ||
                layer.kind == LayerKind::kElementwise) {
                ++fused;
            }
        }
    }
    reg.GetCounter("compiler.layers_fused")->Increment(fused);
    int64_t weight_chunks = 0;
    for (const auto& instr : prog.instrs) {
        if (instr.engine == Engine::kHbm &&
            instr.kind == InstrKind::kDmaIn &&
            instr.label.find(".w") != std::string::npos) {
            ++weight_chunks;
        }
    }
    reg.GetCounter("compiler.weight_stream_chunks")
        ->Increment(weight_chunks);
    return prog;
}

}  // namespace t4i
