#include "src/compiler/program.h"

#include "src/common/strings.h"

namespace t4i {

const char*
EngineName(Engine engine)
{
    switch (engine) {
      case Engine::kMxu: return "MXU";
      case Engine::kVpu: return "VPU";
      case Engine::kHbm: return "HBM";
      case Engine::kCmem: return "CMEM";
      case Engine::kIci: return "ICI";
      case Engine::kPcie: return "PCIe";
      case Engine::kPcieIn: return "PCIeIn";
      case Engine::kEngineCount: break;
    }
    return "?";
}

const char*
InstrKindName(InstrKind kind)
{
    switch (kind) {
      case InstrKind::kMatmulTile: return "matmul";
      case InstrKind::kVectorOp: return "vector";
      case InstrKind::kDmaIn: return "dma_in";
      case InstrKind::kDmaOut: return "dma_out";
      case InstrKind::kGather: return "gather";
      case InstrKind::kIciTransfer: return "ici";
      case InstrKind::kHostTransfer: return "host";
    }
    return "?";
}

double
Program::TotalMacs() const
{
    double total = 0.0;
    for (const auto& i : instrs) total += i.macs;
    return total;
}

int64_t
Program::HbmBytes() const
{
    int64_t total = 0;
    for (const auto& i : instrs) {
        if (i.engine == Engine::kHbm) total += i.bytes;
    }
    return total;
}

Status
Program::Validate() const
{
    for (size_t idx = 0; idx < instrs.size(); ++idx) {
        const Instr& instr = instrs[idx];
        if (instr.id != static_cast<int>(idx)) {
            return Status::Internal(StrFormat(
                "instruction %zu has id %d", idx, instr.id));
        }
        for (int dep : instr.deps) {
            if (dep < 0 || dep >= instr.id) {
                return Status::Internal(StrFormat(
                    "instruction %d depends on %d (must be earlier)",
                    instr.id, dep));
            }
        }
        // -1 (unattributed) is legal: hand-built programs need not
        // maintain an op table.
        if (instr.hlo_op_id < -1 ||
            instr.hlo_op_id >= static_cast<int>(hlo_ops.size())) {
            return Status::Internal(StrFormat(
                "instruction %d references hlo op %d of %zu", instr.id,
                instr.hlo_op_id, hlo_ops.size()));
        }
        switch (instr.engine) {
          case Engine::kMxu:
            if (instr.rows <= 0 || instr.k_tiles <= 0 ||
                instr.n_tiles <= 0) {
                return Status::Internal(StrFormat(
                    "MXU instruction %d has empty descriptor", instr.id));
            }
            break;
          case Engine::kVpu:
            if (instr.elements <= 0) {
                return Status::Internal(StrFormat(
                    "VPU instruction %d has no elements", instr.id));
            }
            break;
          default:
            if (instr.bytes <= 0) {
                return Status::Internal(StrFormat(
                    "transfer instruction %d has no bytes", instr.id));
            }
            break;
        }
    }
    return Status::Ok();
}

std::string
Program::Summary() const
{
    int64_t counts[static_cast<int>(Engine::kEngineCount)] = {};
    for (const auto& i : instrs) ++counts[static_cast<int>(i.engine)];
    return StrFormat(
        "%s on %s (batch %lld, %s, O%d, %d chip%s): %zu instrs "
        "[MXU %lld, VPU %lld, HBM %lld, CMEM %lld, ICI %lld, PCIe %lld], "
        "%.2f GMACs, weights %.1f MiB (%.1f MiB pinned)",
        model_name.c_str(), chip_name.c_str(),
        static_cast<long long>(batch), DTypeName(dtype), opt_level,
        num_chips, num_chips == 1 ? "" : "s", instrs.size(),
        static_cast<long long>(counts[0]),
        static_cast<long long>(counts[1]),
        static_cast<long long>(counts[2]),
        static_cast<long long>(counts[3]),
        static_cast<long long>(counts[4]),
        static_cast<long long>(counts[5] + counts[6]),
        TotalMacs() / 1e9,
        static_cast<double>(memory.weight_bytes_total) / (1 << 20),
        static_cast<double>(memory.weight_bytes_cmem) / (1 << 20));
}

}  // namespace t4i
