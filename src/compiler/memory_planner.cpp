#include "src/compiler/memory_planner.h"

#include <algorithm>

namespace t4i {
namespace {

/** One pinnable item: a layer's weights or its spilled activations. */
struct Candidate {
    int layer_id;
    bool is_weight;
    int64_t bytes;
    /** HBM bytes saved per inference per CMEM byte allocated. */
    double score;
};

/** HBM-traffic-saved score of a layer's weights (per byte). */
double
WeightReuseScore(const Layer& layer, int64_t batch, DType weight_dtype,
                 int64_t weight_bytes)
{
    if (layer.kind == LayerKind::kEmbedding) {
        // Only the gathered rows would have moved from HBM.
        const double gathered = static_cast<double>(
            batch * layer.params.lookups_per_sample *
            layer.params.embed_dim * DTypeBytes(weight_dtype));
        return std::min(1.0, gathered /
                                 static_cast<double>(weight_bytes));
    }
    return 1.0;  // streamed once per inference
}

std::vector<Candidate>
CollectCandidates(const Graph& graph, int64_t batch, DType weight_dtype,
                  DType act_dtype, int64_t vmem_budget, bool with_acts,
                  int64_t* total_weight_bytes)
{
    std::vector<Candidate> candidates;
    for (const auto& layer : graph.layers()) {
        if (layer.kind == LayerKind::kInput) continue;
        auto cost = ComputeLayerCost(layer, graph.InputShapeOf(layer.id),
                                     batch, weight_dtype, act_dtype);
        T4I_CHECK(cost.ok(), cost.status().ToString().c_str());
        if (cost.value().weight_bytes > 0) {
            *total_weight_bytes += cost.value().weight_bytes;
            candidates.push_back(
                {layer.id, /*is_weight=*/true,
                 cost.value().weight_bytes,
                 WeightReuseScore(layer, batch, weight_dtype,
                                  cost.value().weight_bytes)});
        }
        // Flatten/fused layers do not materialize outputs; the emitter
        // skips their spill, so skip them here too.
        const bool materializes = layer.kind != LayerKind::kFlatten;
        if (with_acts && materializes &&
            cost.value().out_bytes > vmem_budget) {
            // Staged in CMEM, a spilled output avoids the HBM write
            // and the consumer's read: 2 bytes of HBM per byte.
            candidates.push_back({layer.id, /*is_weight=*/false,
                                  cost.value().out_bytes, 2.0});
        }
    }
    return candidates;
}

void
AllocateGreedy(std::vector<Candidate> candidates, int64_t budget,
               CmemPolicy policy,
               std::vector<double>* weight_fraction,
               std::vector<double>* act_fraction,
               int64_t* pinned_weight_bytes, int64_t* staged_act_bytes)
{
    switch (policy) {
      case CmemPolicy::kByBandwidthSaved:
        std::stable_sort(candidates.begin(), candidates.end(),
                         [](const Candidate& a, const Candidate& b) {
                             if (a.score != b.score) {
                                 return a.score > b.score;
                             }
                             // Tie-break: smaller items first so more
                             // layers benefit fully.
                             return a.bytes < b.bytes;
                         });
        break;
      case CmemPolicy::kBySize:
        std::stable_sort(candidates.begin(), candidates.end(),
                         [](const Candidate& a, const Candidate& b) {
                             return a.bytes > b.bytes;
                         });
        break;
      case CmemPolicy::kByProgramOrder:
        break;  // candidates are already collected in layer order
    }
    int64_t remaining = budget;
    for (const auto& c : candidates) {
        if (remaining <= 0) break;
        const int64_t take = std::min(remaining, c.bytes);
        const double fraction =
            static_cast<double>(take) / static_cast<double>(c.bytes);
        if (c.is_weight) {
            (*weight_fraction)[static_cast<size_t>(c.layer_id)] =
                fraction;
            *pinned_weight_bytes += take;
        } else {
            (*act_fraction)[static_cast<size_t>(c.layer_id)] = fraction;
            *staged_act_bytes += take;
        }
        remaining -= take;
    }
}

}  // namespace

StatusOr<PinPlan>
PlanWeightPinning(const Graph& graph, int64_t batch, DType weight_dtype,
                  DType act_dtype, int64_t cmem_budget)
{
    if (!graph.finalized()) {
        return Status::FailedPrecondition("graph not finalized");
    }
    PinPlan plan;
    plan.fraction.assign(static_cast<size_t>(graph.num_layers()), 0.0);
    std::vector<double> act_unused(
        static_cast<size_t>(graph.num_layers()), 0.0);
    int64_t act_bytes_unused = 0;
    auto candidates = CollectCandidates(
        graph, batch, weight_dtype, act_dtype, /*vmem_budget=*/0,
        /*with_acts=*/false, &plan.total_weight_bytes);
    if (cmem_budget > 0) {
        AllocateGreedy(std::move(candidates), cmem_budget,
                       CmemPolicy::kByBandwidthSaved, &plan.fraction,
                       &act_unused, &plan.pinned_bytes,
                       &act_bytes_unused);
    }
    return plan;
}

const char*
CmemPolicyName(CmemPolicy policy)
{
    switch (policy) {
      case CmemPolicy::kByBandwidthSaved: return "bandwidth-saved";
      case CmemPolicy::kBySize: return "largest-first";
      case CmemPolicy::kByProgramOrder: return "program-order";
    }
    return "?";
}

StatusOr<CmemPlan>
PlanCmem(const Graph& graph, int64_t batch, DType weight_dtype,
         DType act_dtype, int64_t cmem_budget, int64_t vmem_budget,
         CmemPolicy policy)
{
    if (!graph.finalized()) {
        return Status::FailedPrecondition("graph not finalized");
    }
    CmemPlan plan;
    plan.weight_fraction.assign(
        static_cast<size_t>(graph.num_layers()), 0.0);
    plan.act_fraction.assign(static_cast<size_t>(graph.num_layers()),
                             0.0);
    auto candidates = CollectCandidates(
        graph, batch, weight_dtype, act_dtype, vmem_budget,
        /*with_acts=*/true, &plan.total_weight_bytes);
    if (cmem_budget > 0) {
        AllocateGreedy(std::move(candidates), cmem_budget, policy,
                       &plan.weight_fraction, &plan.act_fraction,
                       &plan.pinned_weight_bytes,
                       &plan.staged_act_bytes);
    }
    return plan;
}

}  // namespace t4i
