/**
 * @file
 * The XLA-lite compiler: lowers a model Graph to a device Program for a
 * specific chip, batch size and dtype.
 *
 * Lesson 2 — compiler compatibility trumps binary compatibility — is
 * modeled with an optimization-level ladder that mirrors the mechanisms
 * real XLA releases delivered over ~20 months on unchanged hardware:
 *
 *   O0  baseline lowering: every intermediate spills to HBM, weights
 *       stream per inference, no cross-layer overlap;
 *   O1  + activations stay in VMEM when they fit;
 *   O2  + operator fusion: pointwise/normalization ops consume their
 *       producer's stream, eliminating round trips entirely;
 *   O3  + CMEM weight pinning and chunked weight prefetch, overlapping
 *       the next layer's DMA with the current layer's compute.
 *
 * Experiment E9 sweeps this ladder; everything else uses O3.
 */
#ifndef T4I_COMPILER_COMPILER_H
#define T4I_COMPILER_COMPILER_H

#include "src/arch/chip.h"
#include "src/compiler/memory_planner.h"
#include "src/compiler/program.h"
#include "src/graph/graph.h"
#include "src/ici/topology.h"

namespace t4i {

/** Compilation knobs. */
struct CompileOptions {
    int64_t batch = 1;
    DType dtype = DType::kBf16;      ///< weights & activations
    int opt_level = 3;               ///< 0..3, see file comment
    int num_chips = 1;               ///< weight-sharded data layout + ICI
    /** Wiring of the ICI domain when num_chips > 1. */
    IciTopology ici_topology = IciTopology::kRing;
    bool include_host_transfers = true;  ///< PCIe in/out instructions
    /** Overrides the chip's CMEM size when >= 0 (for the E8 sweep). */
    int64_t cmem_override_bytes = -1;
    /** CMEM allocation policy (ablation A8). */
    CmemPolicy cmem_policy = CmemPolicy::kByBandwidthSaved;
    /**
     * Fraction of each decoder block's KV-cache stream served from
     * CMEM instead of HBM (autoregressive decode residency, see
     * src/llm/). 0 (the default) keeps the cache entirely in HBM and
     * emits exactly the pre-LLM instruction stream; the planner in
     * src/llm/kv_cache.h derives the fraction from what fits beside
     * the pinned weights.
     */
    double kv_cmem_fraction = 0.0;
};

/**
 * Compiles @p graph for @p chip. Fails when the chip lacks the requested
 * dtype (e.g. bf16 on TPUv1 — exactly the paper's Lesson 6 scenario) or
 * the model's working set exceeds device memory.
 */
StatusOr<Program> Compile(const Graph& graph, const ChipConfig& chip,
                          const CompileOptions& options);

}  // namespace t4i

#endif  // T4I_COMPILER_COMPILER_H
