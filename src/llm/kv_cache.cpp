#include "src/llm/kv_cache.h"

#include <algorithm>

#include "src/compiler/memory_planner.h"
#include "src/models/zoo.h"

namespace t4i {
namespace llm {

int64_t
KvCmemBudgetBytes(const LlmModelConfig& model, const ChipConfig& chip)
{
    if (chip.cmem_bytes <= 0) return 0;
    Graph graph = BuildDecodeStep(model.name + "_plan", model.layers,
                                  model.d_model, model.num_heads,
                                  model.d_ff, /*context_len=*/1,
                                  model.vocab);
    auto plan = PlanWeightPinning(graph, /*batch=*/1, model.dtype,
                                  model.dtype, chip.cmem_bytes);
    T4I_CHECK(plan.ok(), plan.status().ToString().c_str());
    return std::max<int64_t>(
        chip.cmem_bytes - plan.value().pinned_bytes, 0);
}

double
PlanKvResidency(const LlmModelConfig& model, const ChipConfig& chip,
                int64_t batch, int64_t avg_ctx)
{
    const int64_t working_set =
        batch * avg_ctx * KvBytesPerToken(model);
    if (working_set <= 0) return 1.0;
    const int64_t budget = KvCmemBudgetBytes(model, chip);
    return std::min(1.0, static_cast<double>(budget) /
                             static_cast<double>(working_set));
}

KvCacheManager::KvCacheManager(const KvCacheConfig& config)
{
    const int64_t per_token = std::max<int64_t>(
        config.bytes_per_token, 1);
    cmem_capacity_tokens_ =
        std::max<int64_t>(config.cmem_budget_bytes, 0) / per_token;
    capacity_tokens_ =
        cmem_capacity_tokens_ +
        std::max<int64_t>(config.hbm_budget_bytes, 0) / per_token;
}

bool
KvCacheManager::CanReserve(int64_t tokens) const
{
    return total_tokens_ + tokens <= capacity_tokens_;
}

bool
KvCacheManager::Reserve(uint64_t seq, int64_t tokens)
{
    if (!CanReserve(tokens)) {
        ++failed_allocs_;
        return false;
    }
    seqs_[seq] += tokens;
    total_tokens_ += tokens;
    peak_tokens_ = std::max(peak_tokens_, total_tokens_);
    return true;
}

bool
KvCacheManager::Grow(uint64_t seq)
{
    if (total_tokens_ + 1 > capacity_tokens_) {
        ++failed_allocs_;
        return false;
    }
    seqs_[seq] += 1;
    total_tokens_ += 1;
    peak_tokens_ = std::max(peak_tokens_, total_tokens_);
    return true;
}

int64_t
KvCacheManager::Release(uint64_t seq)
{
    auto it = seqs_.find(seq);
    if (it == seqs_.end()) return 0;
    const int64_t tokens = it->second;
    total_tokens_ -= tokens;
    seqs_.erase(it);
    return tokens;
}

int64_t
KvCacheManager::SeqTokens(uint64_t seq) const
{
    auto it = seqs_.find(seq);
    return it == seqs_.end() ? 0 : it->second;
}

int64_t
KvCacheManager::cmem_tokens() const
{
    return std::min(total_tokens_, cmem_capacity_tokens_);
}

int64_t
KvCacheManager::hbm_tokens() const
{
    return total_tokens_ - cmem_tokens();
}

double
KvCacheManager::CmemFraction() const
{
    if (total_tokens_ <= 0) return 1.0;
    return static_cast<double>(cmem_tokens()) /
           static_cast<double>(total_tokens_);
}

}  // namespace llm
}  // namespace t4i
