/**
 * @file
 * Scenario execution for LLM serving programs: the `llm` directive
 * (src/load/scenario.h) routes a scenario here instead of the
 * request-serving cluster. Same artifact contract as RunScenario —
 * exact-set alert grading, run-failing conservation, tail forensics
 * with the expect-dominant verdict, and a run report — but the run
 * underneath is the continuous-batching LLM cell with token SLOs
 * (TTFT/TPOT) and KV-cache residency.
 */
#ifndef T4I_LLM_LLM_SCENARIO_H
#define T4I_LLM_LLM_SCENARIO_H

#include "src/cluster/scenario_run.h"
#include "src/common/status.h"
#include "src/llm/serve_llm.h"
#include "src/load/scenario.h"

namespace t4i {
namespace llm {

/** RunLlmScenario's extra output on top of the shared outcome. */
struct LlmScenarioOutcome {
    ScenarioOutcome outcome;
    LlmResult llm;
};

/**
 * Runs an LLM scenario (scenario.llm.enabled must be true) on
 * Tpu_v4i and grades it exactly like RunScenario: fired alert set ==
 * expected set, conservation books (requests, tokens, KV drain, and
 * the collector's window deltas) close, expect-dominant honored.
 */
StatusOr<LlmScenarioOutcome> RunLlmScenario(
    const load::Scenario& scenario,
    const ScenarioRunOptions& options);

}  // namespace llm
}  // namespace t4i

#endif  // T4I_LLM_LLM_SCENARIO_H
