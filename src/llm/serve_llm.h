/**
 * @file
 * Continuous-batching LLM serving cell on the discrete-event sim
 * clock.
 *
 * The scheduler is iteration-level (Orca-style): the running batch is
 * re-formed at every token boundary, so requests join as soon as a
 * slot and KV capacity exist and leave the moment their last token is
 * emitted — no slot idles behind a long neighbor the way static
 * batching wastes it. Three modes:
 *
 *   - kContinuous: shared pipeline; admitted prompts prefill between
 *     decode iterations, then join the running batch.
 *   - kStatic: classic batch serving — the batch forms once, prefills,
 *     decodes until *every* member finishes, only then re-forms. The
 *     goodput gap vs kContinuous is the E22 table.
 *   - kDisaggregated: prefill runs on a dedicated pipeline concurrent
 *     with decode (the prefill/decode disaggregation knob); prompts
 *     no longer steal decode iterations, and decode tokens no longer
 *     delay TTFT behind a flood of long prompts.
 *
 * KV-cache residency is the binding constraint (the v2->Ironwood
 * retrospective's point): every sequence holds prompt+generated
 * tokens in the two-tier KvCacheManager, the current CMEM-resident
 * fraction feeds the compiled step-cost model, and when growth fails
 * the youngest sequence is preempted and later recomputed.
 *
 * Accounting extends the serving conservation law to tokens:
 *   arrived == completed + dropped + shed   (per tenant and total;
 *       preempted-and-requeued requests stay in flight, they are not
 *       terminal states), and
 *   llm.tokens_out == sum over completed requests of output_tokens
 *       (each completed request's tokens tile exactly; recomputed
 *       tokens count as llm.recompute_tokens, never double as
 *       output).
 * Finish() fails the run when the books do not close.
 *
 * Token-level SLOs: TTFT (arrival -> first token, the prefill exit)
 * and TPOT (inter-token gap during decode) land in `llm.ttft_seconds`
 * / `llm.tpot_seconds` histograms, flowing through the windowed
 * time-series, alert, SLO-budget, and report layers unchanged. Every
 * request gets a root span whose queue / kv_wait / batch / prefill /
 * decode children tile the reported latency bit for bit, so the
 * critical-path forensics can name which phase made p99 blow up.
 */
#ifndef T4I_LLM_SERVE_LLM_H
#define T4I_LLM_SERVE_LLM_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/arch/chip.h"
#include "src/common/status.h"
#include "src/llm/kv_cache.h"
#include "src/llm/model.h"
#include "src/load/arrivals.h"
#include "src/obs/registry.h"
#include "src/obs/spans.h"
#include "src/obs/timeseries.h"

namespace t4i {
namespace llm {

enum class LlmMode { kContinuous, kStatic, kDisaggregated };

const char* LlmModeName(LlmMode mode);
StatusOr<LlmMode> ParseLlmMode(const std::string& name);

/** Lognormal token-length distribution; sigma 0 pins the mean. */
struct LlmLengthSpec {
    double mean = 256.0;
    double sigma = 0.0;
    int64_t max = 4096;
};

/** One tenant's LLM traffic contract. */
struct LlmTenant {
    std::string name = "LLM0";
    /** Poisson arrival rate (requests/s); ignored when an external
     *  arrival source drives the cell. */
    double rate = 20.0;
    LlmLengthSpec prompt{256.0, 0.0, 4096};
    LlmLengthSpec output{32.0, 0.0, 1024};
    /** Token-level SLOs (histograms always record; these classify
     *  slo_miss). */
    double ttft_slo_s = 0.050;
    double tpot_slo_s = 0.005;
    /** Queue deadline (arrival + deadline drops un-admitted work);
     *  0 = none. */
    double deadline_s = 0.0;
    /** Shared-prefix arrival correlation: with probability frac a
     *  request's first `len` prompt tokens are already resident (a
     *  prefix-cache hit: no prefill compute, no KV charge). */
    double shared_prefix_frac = 0.0;
    int64_t shared_prefix_len = 0;
};

/** A prompt-length shock: prompts sampled in [at, at+dur) are
 *  multiplied by mult (the long-context flood). */
struct ContextFlood {
    double at_s = 0.0;
    double dur_s = 0.0;
    double mult = 1.0;
    /** Tenant index, or -1 for all. */
    int tenant = -1;
};

struct LlmCellConfig {
    LlmModelConfig model;
    ChipConfig chip;
    LlmMode mode = LlmMode::kContinuous;
    /** Decode-batch slot cap (the residency-vs-batch axis). */
    int64_t max_batch = 8;
    /** Admission queue cap; arrivals beyond it are shed. */
    int64_t max_queue = 256;
    /** Arrival window; queues drain afterwards. */
    double duration_s = 1.0;
    uint64_t seed = 42;
    std::vector<LlmTenant> tenants;
    std::vector<ContextFlood> floods;
    /** KV tier budgets in bytes; -1 derives the CMEM tier from the
     *  chip minus pinned weights, and the HBM tier from a quarter of
     *  device DRAM. */
    int64_t kv_cmem_budget_bytes = -1;
    int64_t kv_hbm_budget_bytes = -1;
    /** Cost override (tests / fixtures); default compiles the real
     *  graphs via CompiledLlmCostModel. Not owned. */
    LlmCostModel* cost_model = nullptr;
    /** External arrival stream (scenario programs); tenant rates are
     *  ignored when set. Not owned. */
    load::ArrivalSource* arrival_source = nullptr;
    // Telemetry sinks (all optional, none owned).
    obs::MetricsRegistry* registry = nullptr;
    obs::SpanCollector* spans = nullptr;
    obs::TimeSeriesCollector* timeseries = nullptr;
    std::string request_span_name = "llm";
};

struct LlmTenantStats {
    std::string name;
    int64_t arrived = 0;
    int64_t completed = 0;
    int64_t dropped = 0;
    int64_t shed = 0;
    int64_t preemptions = 0;
    int64_t prefix_hits = 0;
    int64_t tokens_in = 0;
    int64_t tokens_out = 0;
    int64_t ttft_slo_miss = 0;
    int64_t tpot_slo_miss = 0;
    double ttft_p50_s = 0.0, ttft_p95_s = 0.0, ttft_p99_s = 0.0;
    double tpot_p50_s = 0.0, tpot_p99_s = 0.0;
};

struct LlmResult {
    int64_t arrived = 0;
    int64_t completed = 0;
    int64_t dropped = 0;
    int64_t shed = 0;
    int64_t preemptions = 0;
    int64_t recompute_tokens = 0;
    int64_t tokens_in = 0;
    int64_t tokens_out = 0;
    int64_t iterations = 0;
    int64_t kv_peak_tokens = 0;
    double kv_cmem_fraction_min = 1.0;
    /** End of drain (>= duration_s). */
    double duration_s = 0.0;
    double goodput_tokens_per_s = 0.0;
    double ttft_p95_s = 0.0;
    double tpot_p99_s = 0.0;
    std::vector<LlmTenantStats> tenants;
    /** Books closed: arrived == completed + dropped + shed (per
     *  tenant and total), tokens tiled, KV drained to zero. */
    bool conservation_ok = false;
    std::string conservation_error;
};

/**
 * Runs one LLM cell to full drain. Returns an error Status only on
 * configuration mistakes; a conservation violation is reported in
 * the result (callers treat it as run-failing).
 */
StatusOr<LlmResult> RunLlmCell(const LlmCellConfig& config);

}  // namespace llm
}  // namespace t4i

#endif  // T4I_LLM_SERVE_LLM_H
