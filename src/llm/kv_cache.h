/**
 * @file
 * KV-cache residency manager: the memory half of autoregressive
 * serving.
 *
 * Every resident sequence owns prompt+generated tokens of KV cache;
 * capacity is two tiers sized like the chip — a CMEM tier (what fits
 * beside the pinned weights behind the wide on-chip port) and an HBM
 * tier. The manager keeps *global* tier accounting: the CMEM tier
 * always holds the first `cmem_capacity` tokens of the working set,
 * so the resident fraction `CmemFraction()` is exactly the
 * `kv_cmem_fraction` the compiler splits the per-step KV stream by —
 * raising batch (or context) past the CMEM budget is what flips
 * decode from CMEM- to HBM-bound in the simulated counters.
 *
 * Admission is capacity-checked (a sequence that cannot fit its
 * prompt plus one output token is refused); per-token growth during
 * decode can fail when the working set hits both budgets, which the
 * scheduler resolves by preempting a victim sequence and recomputing
 * it later (release + re-prefill — the classic recompute flavor of
 * paged-KV preemption).
 */
#ifndef T4I_LLM_KV_CACHE_H
#define T4I_LLM_KV_CACHE_H

#include <cstdint>
#include <map>

#include "src/arch/chip.h"
#include "src/llm/model.h"

namespace t4i {
namespace llm {

/** Tier budgets, in tokens (derived from bytes by the caller). */
struct KvCacheConfig {
    int64_t bytes_per_token = 1;
    int64_t cmem_budget_bytes = 0;
    int64_t hbm_budget_bytes = 0;
};

/**
 * CMEM bytes left for KV cache after the compiler pins weights:
 * chip CMEM minus the decode graph's pinned-weight bytes (the same
 * PlanWeightPinning pass O3 compilation runs). Never negative.
 */
int64_t KvCmemBudgetBytes(const LlmModelConfig& model,
                          const ChipConfig& chip);

/**
 * The CMEM-resident fraction a decode step at @p batch sequences of
 * @p avg_ctx tokens would see — the planning-time twin of
 * KvCacheManager::CmemFraction(), used by benches/tests to pick the
 * compile-time kv_cmem_fraction for a hypothetical operating point.
 */
double PlanKvResidency(const LlmModelConfig& model,
                       const ChipConfig& chip, int64_t batch,
                       int64_t avg_ctx);

class KvCacheManager {
  public:
    explicit KvCacheManager(const KvCacheConfig& config);

    /** Tokens the two tiers can hold together. */
    int64_t capacity_tokens() const { return capacity_tokens_; }
    int64_t cmem_capacity_tokens() const
    {
        return cmem_capacity_tokens_;
    }

    /** True when @p tokens more would fit right now. */
    bool CanReserve(int64_t tokens) const;

    /** Reserves @p tokens for @p seq (admission: prompt + 1). False
     *  (and no change) when capacity is short. */
    bool Reserve(uint64_t seq, int64_t tokens);

    /** Grows @p seq by one decode token. False on capacity miss. */
    bool Grow(uint64_t seq);

    /** Releases everything @p seq holds (completion or preemption).
     *  Returns the token count released. */
    int64_t Release(uint64_t seq);

    int64_t SeqTokens(uint64_t seq) const;
    int64_t total_tokens() const { return total_tokens_; }
    int64_t cmem_tokens() const;
    int64_t hbm_tokens() const;
    int64_t peak_tokens() const { return peak_tokens_; }
    int64_t resident_seqs() const
    {
        return static_cast<int64_t>(seqs_.size());
    }
    int64_t failed_allocs() const { return failed_allocs_; }

    /** CMEM-resident fraction of the current working set (1 when
     *  empty: an empty cache spills nothing). */
    double CmemFraction() const;

  private:
    int64_t capacity_tokens_ = 0;
    int64_t cmem_capacity_tokens_ = 0;
    int64_t total_tokens_ = 0;
    int64_t peak_tokens_ = 0;
    int64_t failed_allocs_ = 0;
    std::map<uint64_t, int64_t> seqs_;
};

}  // namespace llm
}  // namespace t4i

#endif  // T4I_LLM_KV_CACHE_H
