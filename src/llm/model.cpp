#include "src/llm/model.h"

#include <algorithm>
#include <cmath>

#include "src/compiler/compiler.h"
#include "src/models/zoo.h"
#include "src/sim/machine.h"

namespace t4i {
namespace llm {

namespace {

/** Rounds @p v up to the next power of two >= @p floor (bucketing
 *  keeps the compile memo small without flattering the cost: a
 *  request is charged the cost of the bucket it fits in). */
int64_t
PowerOfTwoBucket(int64_t v, int64_t floor_value)
{
    int64_t bucket = floor_value;
    while (bucket < v) bucket *= 2;
    return bucket;
}

}  // namespace

StatusOr<LlmModelConfig>
LlmModelByName(const std::string& name)
{
    LlmModelConfig model;
    if (name == "TINYLM") {
        model.name = "TINYLM";
        return model;
    }
    if (name == "GPT2L") {
        // The bench_a4 decoder-serving shape (GPT-2-large class).
        model.name = "GPT2L";
        model.layers = 24;
        model.d_model = 1024;
        model.num_heads = 16;
        model.d_ff = 4096;
        model.vocab = 50257;
        model.max_ctx = 4096;
        return model;
    }
    return Status::InvalidArgument("unknown LLM model '" + name +
                                   "' (TINYLM | GPT2L)");
}

int64_t
KvBytesPerToken(const LlmModelConfig& model)
{
    return 2 * model.d_model * static_cast<int64_t>(model.layers) *
           DTypeBytes(model.dtype);
}

int64_t
LlmWeightBytes(const LlmModelConfig& model)
{
    const int64_t per_block =
        4 * model.d_model * model.d_model +
        2 * model.d_model * model.d_ff + 4 * model.d_model +
        model.d_ff;
    const int64_t head = model.d_model * (model.vocab / 8);
    return (per_block * model.layers + head) *
           DTypeBytes(model.dtype);
}

CompiledLlmCostModel::CompiledLlmCostModel(const LlmModelConfig& model,
                                           const ChipConfig& chip)
    : model_(model), chip_(chip)
{
}

double
CompiledLlmCostModel::PrefillSeconds(int64_t prompt_tokens)
{
    const int64_t bucket = std::min(
        model_.max_ctx,
        PowerOfTwoBucket(std::max<int64_t>(prompt_tokens, 1), 16));
    auto it = prefill_memo_.find(bucket);
    if (it != prefill_memo_.end()) return it->second;

    Graph graph = BuildDecoderPrefill(
        model_.name + "_prefill", model_.layers, model_.d_model,
        model_.num_heads, model_.d_ff, bucket, model_.vocab);
    CompileOptions opts;
    opts.batch = 1;
    opts.dtype = model_.dtype;
    opts.include_host_transfers = false;
    auto program = Compile(graph, chip_, opts);
    T4I_CHECK(program.ok(), program.status().ToString().c_str());
    auto sim = Simulate(program.value(), chip_);
    T4I_CHECK(sim.ok(), sim.status().ToString().c_str());
    ++simulations_;
    prefill_memo_[bucket] = sim.value().latency_s;
    return sim.value().latency_s;
}

double
CompiledLlmCostModel::DecodeStepSeconds(int64_t batch, int64_t avg_ctx,
                                        double kv_cmem_fraction)
{
    const int64_t ctx_bucket = std::min(
        model_.max_ctx,
        PowerOfTwoBucket(std::max<int64_t>(avg_ctx, 1), 64));
    // Eighth-steps keep the CMEM->HBM flip visible without an
    // unbounded memo.
    const int64_t frac_bucket = static_cast<int64_t>(
        std::lround(std::clamp(kv_cmem_fraction, 0.0, 1.0) * 8.0));
    const auto key = std::make_tuple(batch, ctx_bucket, frac_bucket);
    auto it = decode_memo_.find(key);
    if (it != decode_memo_.end()) return it->second;

    Graph graph = BuildDecodeStep(
        model_.name + "_decode", model_.layers, model_.d_model,
        model_.num_heads, model_.d_ff, ctx_bucket, model_.vocab);
    CompileOptions opts;
    opts.batch = std::max<int64_t>(batch, 1);
    opts.dtype = model_.dtype;
    opts.include_host_transfers = false;
    opts.kv_cmem_fraction =
        static_cast<double>(frac_bucket) / 8.0;
    auto program = Compile(graph, chip_, opts);
    T4I_CHECK(program.ok(), program.status().ToString().c_str());
    auto sim = Simulate(program.value(), chip_);
    T4I_CHECK(sim.ok(), sim.status().ToString().c_str());
    ++simulations_;
    decode_memo_[key] = sim.value().latency_s;
    return sim.value().latency_s;
}

}  // namespace llm
}  // namespace t4i
