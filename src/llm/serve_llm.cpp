#include "src/llm/serve_llm.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <memory>

#include "src/common/stats.h"
#include "src/common/strings.h"

namespace t4i {
namespace llm {

namespace {

constexpr double kNoEvent = std::numeric_limits<double>::infinity();

/** One in-flight request (also the KV sequence). */
struct LlmRequest {
    uint64_t id = 0;  ///< KV sequence id + length-substream index
    int tenant = 0;
    double arrival_s = 0.0;
    double deadline_abs_s = 0.0;  ///< 0 = none
    int64_t prompt_tokens = 0;    ///< full prompt (incl. shared prefix)
    int64_t prefix_tokens = 0;    ///< prefix-cache hit (not prefilled)
    int64_t output_tokens = 1;
    uint64_t source_id = 0;  ///< arrival-source feedback handle

    // Progress. tokens_done survives preemption (generated tokens are
    // recomputed, not re-emitted); max_tokens_seen is the high-water
    // mark that keeps TPOT samples from double-counting on recompute.
    int64_t tokens_done = 0;
    int64_t max_tokens_seen = 0;
    bool ttft_recorded = false;
    double last_token_s = 0.0;
    double tpot_sum_s = 0.0;
    int64_t tpot_count = 0;
    bool ttft_missed = false;

    // Disaggregated prefill pipeline.
    double prefill_end_s = 0.0;

    // Span tree. Exactly one of queue/kv_wait/batch/prefill/decode is
    // open at a time; each closes where the next opens, so the
    // children tile the root bit for bit.
    uint64_t trace_id = 0;
    obs::SpanId root_span = 0;
    obs::SpanId phase_span = 0;
};

/** Per-tenant mutable books. */
struct TenantBooks {
    obs::Counter* arrived = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* dropped = nullptr;
    obs::Counter* shed = nullptr;
    obs::Counter* preemptions = nullptr;
    obs::Counter* prefix_hits = nullptr;
    obs::Counter* tokens_in = nullptr;
    obs::Counter* tokens_out = nullptr;
    obs::Counter* ttft_slo_miss = nullptr;
    obs::Counter* tpot_slo_miss = nullptr;
    obs::HistogramMetric* ttft_hist = nullptr;
    obs::HistogramMetric* tpot_hist = nullptr;
    obs::HistogramMetric* latency_hist = nullptr;
    LlmTenantStats stats;
    PercentileTracker ttft;
    PercentileTracker tpot;
};

/** Draws one lognormal token count: mean-preserving (mu = ln(mean) -
 *  sigma^2/2), sigma 0 pins the mean exactly. */
int64_t
DrawTokens(const LlmLengthSpec& spec, Rng& rng)
{
    double mean = std::max(spec.mean, 1.0);
    double sample = mean;
    if (spec.sigma > 0.0) {
        const double mu =
            std::log(mean) - 0.5 * spec.sigma * spec.sigma;
        sample = std::exp(mu + spec.sigma * rng.NextGaussian());
    } else {
        // Burn the draw so sigma toggles never shift later streams.
        (void)rng.NextGaussian();
    }
    const int64_t tokens = static_cast<int64_t>(std::llround(sample));
    return std::clamp<int64_t>(tokens, 1, std::max<int64_t>(spec.max, 1));
}

class LlmCell {
  public:
    explicit LlmCell(const LlmCellConfig& config) : cfg_(config) {}

    StatusOr<LlmResult> Run();

  private:
    // --- setup ---
    Status Validate() const;
    void BindMetrics();
    void SeedInternalArrivals();

    // --- event loop ---
    void DeliverArrivals(double now);
    void AddRequest(double t_s, size_t tenant, double size,
                    double deadline_override_s, uint64_t source_id);
    void SweepDeadlines(double now);
    void Admit(double now);
    void CollectPrefills(double now);
    bool DoWork(double* now);
    void RunSharedPrefill(double* now);
    void RunDecodeIteration(double* now);
    double NextEventTime() const;

    // --- terminal events ---
    void Complete(LlmRequest& req, double now);
    void Drop(LlmRequest& req, double now, const char* reason);
    void RecordFirstToken(LlmRequest& req, double now);
    void RecordDecodeToken(LlmRequest& req, double now);
    void Preempt(size_t running_idx, double now);

    // --- spans ---
    void OpenRoot(LlmRequest& req, double now);
    void Phase(LlmRequest& req, const char* name, double now);
    void CloseRoot(LlmRequest& req, double now, const char* outcome);

    void Tick(double now);
    void UpdateKvGauges();
    double FloodMult(double t_s, size_t tenant) const;
    int64_t PrefillTokens(const LlmRequest& req) const;

    LlmCellConfig cfg_;
    std::unique_ptr<CompiledLlmCostModel> owned_cost_;
    LlmCostModel* cost_ = nullptr;
    std::unique_ptr<KvCacheManager> kv_;

    std::deque<LlmRequest> queue_;
    std::vector<LlmRequest> prefill_q_;  ///< admitted, prefill pending
    std::vector<LlmRequest> running_;    ///< decoding batch
    /** Pre-generated internal Poisson arrivals (time-sorted), when no
     *  external source drives the cell. */
    struct InternalArrival {
        double t_s;
        size_t tenant;
    };
    std::vector<InternalArrival> internal_;
    size_t next_internal_ = 0;

    uint64_t next_request_id_ = 1;
    bool head_blocked_ = false;
    double prefill_free_s_ = 0.0;  ///< disagg prefill-pipeline cursor

    std::vector<TenantBooks> books_;
    PercentileTracker ttft_all_;
    PercentileTracker tpot_all_;
    LlmResult result_;

    obs::Counter* iterations_ = nullptr;
    obs::Counter* recompute_ = nullptr;
    obs::Counter* load_arrivals_ = nullptr;
    obs::Counter* load_client_retries_ = nullptr;
    obs::HistogramMetric* batch_hist_ = nullptr;
    obs::HistogramMetric* prefill_hist_ = nullptr;
    obs::HistogramMetric* decode_hist_ = nullptr;
    obs::Gauge* kv_tokens_g_ = nullptr;
    obs::Gauge* kv_cmem_g_ = nullptr;
    obs::Gauge* kv_hbm_g_ = nullptr;
    obs::Gauge* kv_frac_g_ = nullptr;
    obs::Gauge* kv_peak_g_ = nullptr;
    obs::Gauge* goodput_g_ = nullptr;
};

Status
LlmCell::Validate() const
{
    if (cfg_.tenants.empty())
        return Status::InvalidArgument("llm cell needs >= 1 tenant");
    if (cfg_.max_batch < 1)
        return Status::InvalidArgument("llm max_batch must be >= 1");
    if (cfg_.max_queue < 1)
        return Status::InvalidArgument("llm max_queue must be >= 1");
    if (cfg_.duration_s <= 0.0)
        return Status::InvalidArgument("llm duration must be > 0");
    for (const auto& t : cfg_.tenants) {
        if (t.name.empty())
            return Status::InvalidArgument("llm tenant needs a name");
        if (cfg_.arrival_source == nullptr && t.rate <= 0.0)
            return Status::InvalidArgument(
                "llm tenant '" + t.name + "' needs rate > 0");
        if (t.prompt.mean < 1.0 || t.output.mean < 1.0)
            return Status::InvalidArgument(
                "llm tenant '" + t.name +
                "' prompt/output mean must be >= 1 token");
        if (t.shared_prefix_frac < 0.0 || t.shared_prefix_frac > 1.0)
            return Status::InvalidArgument(
                "llm shared_prefix_frac must be in [0, 1]");
    }
    for (const auto& f : cfg_.floods) {
        if (f.dur_s < 0.0 || f.mult <= 0.0)
            return Status::InvalidArgument(
                "llm context-flood needs dur >= 0 and mult > 0");
        if (f.tenant >= static_cast<int>(cfg_.tenants.size()))
            return Status::InvalidArgument(
                "llm context-flood tenant out of range");
    }
    return Status::Ok();
}

void
LlmCell::BindMetrics()
{
    auto* reg = cfg_.registry;
    books_.resize(cfg_.tenants.size());
    for (size_t i = 0; i < cfg_.tenants.size(); ++i) {
        auto& b = books_[i];
        b.stats.name = cfg_.tenants[i].name;
        if (reg == nullptr) continue;
        const obs::Labels labels = {{"tenant", cfg_.tenants[i].name}};
        b.arrived = reg->GetCounter("llm.arrived", labels);
        b.completed = reg->GetCounter("llm.completed", labels);
        b.dropped = reg->GetCounter("llm.dropped", labels);
        b.shed = reg->GetCounter("llm.shed", labels);
        b.preemptions = reg->GetCounter("llm.preemptions", labels);
        b.prefix_hits = reg->GetCounter("llm.prefix_hits", labels);
        b.tokens_in = reg->GetCounter("llm.tokens_in", labels);
        b.tokens_out = reg->GetCounter("llm.tokens_out", labels);
        b.ttft_slo_miss = reg->GetCounter("llm.ttft_slo_miss", labels);
        b.tpot_slo_miss = reg->GetCounter("llm.tpot_slo_miss", labels);
        b.ttft_hist = reg->GetHistogram("llm.ttft_seconds", labels);
        b.tpot_hist = reg->GetHistogram("llm.tpot_seconds", labels);
        b.latency_hist =
            reg->GetHistogram("llm.latency_seconds", labels);
    }
    if (reg == nullptr) return;
    iterations_ = reg->GetCounter("llm.iterations");
    recompute_ = reg->GetCounter("llm.recompute_tokens");
    batch_hist_ = reg->GetHistogram("llm.batch_size");
    prefill_hist_ = reg->GetHistogram("llm.prefill_seconds");
    decode_hist_ = reg->GetHistogram("llm.decode_step_seconds");
    kv_tokens_g_ = reg->GetGauge("llm.kv_tokens");
    kv_cmem_g_ = reg->GetGauge("llm.kv_cmem_tokens");
    kv_hbm_g_ = reg->GetGauge("llm.kv_hbm_tokens");
    kv_frac_g_ = reg->GetGauge("llm.kv_cmem_fraction");
    kv_peak_g_ = reg->GetGauge("llm.kv_peak_tokens");
    goodput_g_ = reg->GetGauge("llm.goodput_tokens_per_s");
    if (cfg_.arrival_source != nullptr) {
        // Mirror the serving cells: source-driven runs account the
        // offered load under the shared load.* family.
        load_arrivals_ = reg->GetCounter("load.arrivals");
        load_client_retries_ = reg->GetCounter("load.client_retries");
    }
}

void
LlmCell::SeedInternalArrivals()
{
    if (cfg_.arrival_source != nullptr) return;
    for (size_t i = 0; i < cfg_.tenants.size(); ++i) {
        Rng rng = Substream(cfg_.seed, "llm.arrival", i);
        double t = 0.0;
        while (true) {
            t += rng.NextExponential(cfg_.tenants[i].rate);
            if (t >= cfg_.duration_s) break;
            internal_.push_back({t, i});
        }
    }
    std::stable_sort(internal_.begin(), internal_.end(),
                     [](const InternalArrival& a,
                        const InternalArrival& b) {
                         if (a.t_s != b.t_s) return a.t_s < b.t_s;
                         return a.tenant < b.tenant;
                     });
}

double
LlmCell::FloodMult(double t_s, size_t tenant) const
{
    double mult = 1.0;
    for (const auto& f : cfg_.floods) {
        if (t_s < f.at_s || t_s >= f.at_s + f.dur_s) continue;
        if (f.tenant >= 0 &&
            static_cast<size_t>(f.tenant) != tenant)
            continue;
        mult *= f.mult;
    }
    return mult;
}

int64_t
LlmCell::PrefillTokens(const LlmRequest& req) const
{
    // Recompute covers the generated tokens too; the shared prefix
    // never needs prefilling.
    return req.prompt_tokens - req.prefix_tokens + req.tokens_done;
}

void
LlmCell::AddRequest(double t_s, size_t tenant, double size,
                    double deadline_override_s, uint64_t source_id)
{
    const LlmTenant& tcfg = cfg_.tenants[tenant];
    auto& b = books_[tenant];
    ++b.stats.arrived;
    ++result_.arrived;
    if (b.arrived != nullptr) b.arrived->Increment();

    LlmRequest req;
    req.id = next_request_id_++;
    req.tenant = static_cast<int>(tenant);
    req.arrival_s = t_s;
    req.source_id = source_id;

    // Lengths + prefix draw from a per-request substream so every
    // request is reproducible regardless of scheduling order.
    Rng rng = Substream(cfg_.seed, "llm.len", req.id);
    const double prompt_mult = FloodMult(t_s, tenant) * size;
    int64_t prompt = DrawTokens(tcfg.prompt, rng);
    prompt = static_cast<int64_t>(std::llround(
        static_cast<double>(prompt) * std::max(prompt_mult, 0.0)));
    int64_t output = DrawTokens(tcfg.output, rng);
    const bool prefix_hit =
        rng.NextBool(tcfg.shared_prefix_frac) &&
        tcfg.shared_prefix_len > 0;
    output = std::clamp<int64_t>(output, 1, cfg_.model.max_ctx - 1);
    prompt = std::clamp<int64_t>(prompt, 1,
                                 cfg_.model.max_ctx - output);
    req.prompt_tokens = prompt;
    req.output_tokens = output;
    if (prefix_hit) {
        // Keep >= 1 token to prefill so every admitted request still
        // passes through the pipeline.
        req.prefix_tokens =
            std::min<int64_t>(tcfg.shared_prefix_len, prompt - 1);
        if (req.prefix_tokens > 0) {
            ++b.stats.prefix_hits;
            if (b.prefix_hits != nullptr) b.prefix_hits->Increment();
        }
    }
    const double deadline = deadline_override_s > 0.0
                                ? deadline_override_s
                                : tcfg.deadline_s;
    if (deadline > 0.0) req.deadline_abs_s = t_s + deadline;

    if (static_cast<int64_t>(queue_.size()) >= cfg_.max_queue) {
        // Shed at the door: no span, terminal failure.
        ++b.stats.shed;
        ++result_.shed;
        if (b.shed != nullptr) b.shed->Increment();
        if (cfg_.arrival_source != nullptr && source_id != 0)
            cfg_.arrival_source->OnRequestEnd(source_id, t_s, false);
        return;
    }
    OpenRoot(req, t_s);
    Phase(req, "queue", t_s);
    queue_.push_back(std::move(req));
}

void
LlmCell::DeliverArrivals(double now)
{
    if (cfg_.arrival_source != nullptr) {
        load::LoadArrival arr;
        while (cfg_.arrival_source->Peek(&arr) && arr.t_s <= now) {
            arr = cfg_.arrival_source->Take();
            if (arr.tenant >= cfg_.tenants.size()) continue;
            if (load_arrivals_ != nullptr) load_arrivals_->Increment();
            if (arr.client_retry && load_client_retries_ != nullptr)
                load_client_retries_->Increment();
            AddRequest(arr.t_s, arr.tenant, arr.size, arr.deadline_s,
                       arr.id);
        }
        return;
    }
    while (next_internal_ < internal_.size() &&
           internal_[next_internal_].t_s <= now) {
        const auto& a = internal_[next_internal_++];
        AddRequest(a.t_s, a.tenant, 1.0, 0.0, 0);
    }
}

void
LlmCell::SweepDeadlines(double now)
{
    for (auto it = queue_.begin(); it != queue_.end();) {
        if (it->deadline_abs_s > 0.0 && now > it->deadline_abs_s) {
            Drop(*it, it->deadline_abs_s, "deadline");
            it = queue_.erase(it);
            head_blocked_ = false;
        } else {
            ++it;
        }
    }
}

void
LlmCell::Admit(double now)
{
    const bool statik = cfg_.mode == LlmMode::kStatic;
    if (statik && (!running_.empty() || !prefill_q_.empty())) return;
    while (!queue_.empty()) {
        const int64_t active = static_cast<int64_t>(running_.size()) +
                               static_cast<int64_t>(prefill_q_.size());
        if (active >= cfg_.max_batch) break;
        LlmRequest& head = queue_.front();
        const int64_t need = PrefillTokens(head) + 1;
        if (!kv_->Reserve(head.id, need)) {
            if (kv_->total_tokens() == 0) {
                // Empty cache and still no room: this request can
                // never fit. Terminal, not a wait.
                Drop(head, now, "kv_overflow");
                queue_.pop_front();
                continue;
            }
            // Head-of-line blocked on KV capacity: visible as a
            // kv_wait phase until residency frees up.
            if (!head_blocked_) {
                head_blocked_ = true;
                Phase(head, "kv_wait", now);
            }
            break;
        }
        head_blocked_ = false;
        Phase(head, "batch", now);
        if (cfg_.mode == LlmMode::kDisaggregated) {
            // Dedicated prefill pipeline, serialized on its own
            // cursor, concurrent with decode.
            const double start = std::max(now, prefill_free_s_);
            const double dur =
                cost_->PrefillSeconds(PrefillTokens(head));
            head.prefill_end_s = start + dur;
            prefill_free_s_ = head.prefill_end_s;
            if (prefill_hist_ != nullptr) prefill_hist_->Observe(dur);
            Phase(head, "prefill", start);
        }
        prefill_q_.push_back(std::move(head));
        queue_.pop_front();
    }
}

void
LlmCell::CollectPrefills(double now)
{
    if (cfg_.mode != LlmMode::kDisaggregated) return;
    for (auto it = prefill_q_.begin(); it != prefill_q_.end();) {
        if (it->prefill_end_s <= now) {
            LlmRequest req = std::move(*it);
            it = prefill_q_.erase(it);
            RecordFirstToken(req, req.prefill_end_s);
            if (req.tokens_done >= req.output_tokens) {
                Complete(req, req.prefill_end_s);
            } else {
                Phase(req, "decode", req.prefill_end_s);
                running_.push_back(std::move(req));
            }
        } else {
            ++it;
        }
    }
}

void
LlmCell::RunSharedPrefill(double* now)
{
    LlmRequest req = std::move(prefill_q_.front());
    prefill_q_.erase(prefill_q_.begin());
    const double dur = cost_->PrefillSeconds(PrefillTokens(req));
    Phase(req, "prefill", *now);
    *now += dur;
    if (prefill_hist_ != nullptr) prefill_hist_->Observe(dur);
    RecordFirstToken(req, *now);
    if (req.tokens_done >= req.output_tokens) {
        Complete(req, *now);
    } else {
        Phase(req, "decode", *now);
        running_.push_back(std::move(req));
    }
}

void
LlmCell::RunDecodeIteration(double* now)
{
    // Grow every sequence by its next token; when residency runs out,
    // preempt the youngest sequence (recompute later) and retry.
    for (size_t i = 0; i < running_.size();) {
        if (kv_->Grow(running_[i].id)) {
            ++i;
            continue;
        }
        if (running_.size() == 1) {
            // No victim left to evict; the lone sequence cannot fit
            // its own next token. Terminal.
            kv_->Release(running_[0].id);
            Drop(running_[0], *now, "kv_overflow");
            running_.clear();
            return;
        }
        Preempt(running_.size() - 1, *now);
        if (i >= running_.size()) break;
    }
    if (running_.empty()) return;

    const int64_t batch = static_cast<int64_t>(running_.size());
    const int64_t avg_ctx =
        std::max<int64_t>(kv_->total_tokens() / batch, 1);
    const double frac = kv_->CmemFraction();
    result_.kv_cmem_fraction_min =
        std::min(result_.kv_cmem_fraction_min, frac);
    const double dt =
        cost_->DecodeStepSeconds(batch, avg_ctx, frac);
    *now += dt;
    ++result_.iterations;
    if (iterations_ != nullptr) iterations_->Increment();
    if (batch_hist_ != nullptr)
        batch_hist_->Observe(static_cast<double>(batch));
    if (decode_hist_ != nullptr) decode_hist_->Observe(dt);

    for (auto it = running_.begin(); it != running_.end();) {
        RecordDecodeToken(*it, *now);
        if (it->tokens_done >= it->output_tokens) {
            Complete(*it, *now);
            it = running_.erase(it);
        } else {
            ++it;
        }
    }
    UpdateKvGauges();
}

bool
LlmCell::DoWork(double* now)
{
    if (cfg_.mode == LlmMode::kDisaggregated) {
        if (running_.empty()) return false;
        RunDecodeIteration(now);
        return true;
    }
    // Shared pipeline: pending prefills run between decode
    // iterations (chunked at token granularity — the continuous-
    // batching join point).
    if (!prefill_q_.empty()) {
        RunSharedPrefill(now);
        return true;
    }
    if (!running_.empty()) {
        RunDecodeIteration(now);
        return true;
    }
    return false;
}

double
LlmCell::NextEventTime() const
{
    double next = kNoEvent;
    if (cfg_.arrival_source != nullptr) {
        load::LoadArrival arr;
        if (cfg_.arrival_source->Peek(&arr))
            next = std::min(next, arr.t_s);
    } else if (next_internal_ < internal_.size()) {
        next = std::min(next, internal_[next_internal_].t_s);
    }
    if (cfg_.mode == LlmMode::kDisaggregated) {
        for (const auto& req : prefill_q_)
            next = std::min(next, req.prefill_end_s);
    }
    // A deadline can fire while the pipeline idles.
    for (const auto& req : queue_)
        if (req.deadline_abs_s > 0.0)
            next = std::min(next, req.deadline_abs_s);
    return next;
}

void
LlmCell::RecordFirstToken(LlmRequest& req, double now)
{
    if (req.max_tokens_seen > 0) {
        // Recompute prefill: the pass replays the preempted tokens
        // and emits one fresh token at its end, whose TPOT gap spans
        // the whole preemption stall.
        RecordDecodeToken(req, now);
        return;
    }
    ++req.tokens_done;
    req.max_tokens_seen = req.tokens_done;
    req.last_token_s = now;
    req.ttft_recorded = true;
    auto& b = books_[static_cast<size_t>(req.tenant)];
    const double ttft = now - req.arrival_s;
    b.ttft.Add(ttft);
    ttft_all_.Add(ttft);
    if (b.ttft_hist != nullptr) {
        b.ttft_hist->Observe(ttft);
        if (req.trace_id != 0)
            b.ttft_hist->AttachExemplar(ttft, req.trace_id, now);
    }
    if (ttft > cfg_.tenants[static_cast<size_t>(req.tenant)].ttft_slo_s) {
        req.ttft_missed = true;
        ++b.stats.ttft_slo_miss;
        if (b.ttft_slo_miss != nullptr) b.ttft_slo_miss->Increment();
    }
}

void
LlmCell::RecordDecodeToken(LlmRequest& req, double now)
{
    ++req.tokens_done;
    if (req.tokens_done <= req.max_tokens_seen) {
        // Replayed (recomputed) token: already sampled once.
        req.last_token_s = now;
        return;
    }
    req.max_tokens_seen = req.tokens_done;
    const double gap = now - req.last_token_s;
    req.last_token_s = now;
    req.tpot_sum_s += gap;
    ++req.tpot_count;
    auto& b = books_[static_cast<size_t>(req.tenant)];
    b.tpot.Add(gap);
    tpot_all_.Add(gap);
    if (b.tpot_hist != nullptr) {
        b.tpot_hist->Observe(gap);
        if (req.trace_id != 0)
            b.tpot_hist->AttachExemplar(gap, req.trace_id, now);
    }
}

void
LlmCell::Preempt(size_t running_idx, double now)
{
    LlmRequest req = std::move(running_[running_idx]);
    running_.erase(running_.begin() +
                   static_cast<std::ptrdiff_t>(running_idx));
    const int64_t released = kv_->Release(req.id);
    result_.recompute_tokens += released;
    if (recompute_ != nullptr) recompute_->Increment(released);
    auto& b = books_[static_cast<size_t>(req.tenant)];
    ++b.stats.preemptions;
    ++result_.preemptions;
    if (b.preemptions != nullptr) b.preemptions->Increment();
    // Back to the head of the queue: generated tokens are kept in the
    // books and recomputed on readmission.
    Phase(req, "queue", now);
    queue_.push_front(std::move(req));
    head_blocked_ = false;
}

void
LlmCell::Complete(LlmRequest& req, double now)
{
    kv_->Release(req.id);
    auto& b = books_[static_cast<size_t>(req.tenant)];
    const auto& tcfg = cfg_.tenants[static_cast<size_t>(req.tenant)];
    ++b.stats.completed;
    ++result_.completed;
    b.stats.tokens_in += req.prompt_tokens;
    b.stats.tokens_out += req.output_tokens;
    result_.tokens_in += req.prompt_tokens;
    result_.tokens_out += req.output_tokens;
    if (b.completed != nullptr) b.completed->Increment();
    if (b.tokens_in != nullptr)
        b.tokens_in->Increment(req.prompt_tokens);
    if (b.tokens_out != nullptr)
        b.tokens_out->Increment(req.output_tokens);
    const double latency = now - req.arrival_s;
    if (b.latency_hist != nullptr) {
        b.latency_hist->Observe(latency);
        if (req.trace_id != 0)
            b.latency_hist->AttachExemplar(latency, req.trace_id, now);
    }
    bool tpot_missed = false;
    if (req.tpot_count > 0 &&
        req.tpot_sum_s / static_cast<double>(req.tpot_count) >
            tcfg.tpot_slo_s) {
        tpot_missed = true;
        ++b.stats.tpot_slo_miss;
        if (b.tpot_slo_miss != nullptr) b.tpot_slo_miss->Increment();
    }
    if (cfg_.spans != nullptr && req.root_span != 0 &&
        (req.ttft_missed || tpot_missed))
        cfg_.spans->SetAttribute(req.root_span, "slo_miss", "1");
    CloseRoot(req, now, "completed");
    if (cfg_.arrival_source != nullptr && req.source_id != 0)
        cfg_.arrival_source->OnRequestEnd(req.source_id, now, true);
    Tick(now);
}

void
LlmCell::Drop(LlmRequest& req, double now, const char* reason)
{
    auto& b = books_[static_cast<size_t>(req.tenant)];
    ++b.stats.dropped;
    ++result_.dropped;
    if (b.dropped != nullptr) b.dropped->Increment();
    if (cfg_.spans != nullptr && req.root_span != 0)
        cfg_.spans->SetAttribute(req.root_span, "drop_reason", reason);
    CloseRoot(req, now, "dropped");
    if (cfg_.arrival_source != nullptr && req.source_id != 0)
        cfg_.arrival_source->OnRequestEnd(req.source_id, now, false);
    Tick(now);
}

void
LlmCell::OpenRoot(LlmRequest& req, double now)
{
    if (cfg_.spans == nullptr) return;
    req.trace_id = cfg_.spans->NewTrace();
    req.root_span = cfg_.spans->StartSpan(
        req.trace_id, 0, cfg_.request_span_name, now);
    cfg_.spans->SetAttribute(
        req.root_span, "tenant",
        cfg_.tenants[static_cast<size_t>(req.tenant)].name);
}

void
LlmCell::Phase(LlmRequest& req, const char* name, double now)
{
    if (cfg_.spans == nullptr || req.root_span == 0) return;
    if (req.phase_span != 0) cfg_.spans->EndSpan(req.phase_span, now);
    req.phase_span = cfg_.spans->StartSpan(req.trace_id,
                                           req.root_span, name, now);
}

void
LlmCell::CloseRoot(LlmRequest& req, double now, const char* outcome)
{
    if (cfg_.spans == nullptr || req.root_span == 0) return;
    if (req.phase_span != 0) {
        cfg_.spans->EndSpan(req.phase_span, now);
        req.phase_span = 0;
    }
    cfg_.spans->SetAttribute(req.root_span, "outcome", outcome);
    cfg_.spans->EndSpan(req.root_span, now);
    req.root_span = 0;
}

void
LlmCell::Tick(double now)
{
    if (cfg_.timeseries != nullptr) cfg_.timeseries->Tick(now);
}

void
LlmCell::UpdateKvGauges()
{
    result_.kv_peak_tokens = kv_->peak_tokens();
    if (kv_tokens_g_ == nullptr) return;
    kv_tokens_g_->Set(static_cast<double>(kv_->total_tokens()));
    kv_cmem_g_->Set(static_cast<double>(kv_->cmem_tokens()));
    kv_hbm_g_->Set(static_cast<double>(kv_->hbm_tokens()));
    kv_frac_g_->Set(kv_->CmemFraction());
    kv_peak_g_->Set(static_cast<double>(kv_->peak_tokens()));
}

StatusOr<LlmResult>
LlmCell::Run()
{
    auto valid = Validate();
    if (!valid.ok()) return valid;
    if (cfg_.cost_model != nullptr) {
        cost_ = cfg_.cost_model;
    } else {
        owned_cost_ = std::make_unique<CompiledLlmCostModel>(
            cfg_.model, cfg_.chip);
        cost_ = owned_cost_.get();
    }
    KvCacheConfig kv_cfg;
    kv_cfg.bytes_per_token = KvBytesPerToken(cfg_.model);
    kv_cfg.cmem_budget_bytes =
        cfg_.kv_cmem_budget_bytes >= 0
            ? cfg_.kv_cmem_budget_bytes
            : KvCmemBudgetBytes(cfg_.model, cfg_.chip);
    kv_cfg.hbm_budget_bytes = cfg_.kv_hbm_budget_bytes >= 0
                                  ? cfg_.kv_hbm_budget_bytes
                                  : cfg_.chip.dram_bytes / 4;
    kv_ = std::make_unique<KvCacheManager>(kv_cfg);
    BindMetrics();
    SeedInternalArrivals();
    UpdateKvGauges();

    double now = 0.0;
    while (true) {
        DeliverArrivals(now);
        SweepDeadlines(now);
        Admit(now);
        CollectPrefills(now);
        if (DoWork(&now)) {
            Tick(now);
            continue;
        }
        const double next = NextEventTime();
        if (next == kNoEvent) break;
        now = std::max(now, next);
    }

    result_.duration_s = std::max(now, cfg_.duration_s);
    result_.goodput_tokens_per_s =
        static_cast<double>(result_.tokens_out) / result_.duration_s;
    result_.ttft_p95_s = ttft_all_.Percentile(95.0);
    result_.tpot_p99_s = tpot_all_.Percentile(99.0);
    if (goodput_g_ != nullptr)
        goodput_g_->Set(result_.goodput_tokens_per_s);
    UpdateKvGauges();
    Tick(result_.duration_s);

    // Close the books: every arrival must be terminal, the KV cache
    // must be fully drained, and completed tokens must tile.
    result_.conservation_ok = true;
    int64_t tokens_out_check = 0;
    for (size_t i = 0; i < books_.size(); ++i) {
        auto& s = books_[i].stats;
        s.ttft_p50_s = books_[i].ttft.Percentile(50.0);
        s.ttft_p95_s = books_[i].ttft.Percentile(95.0);
        s.ttft_p99_s = books_[i].ttft.Percentile(99.0);
        s.tpot_p50_s = books_[i].tpot.Percentile(50.0);
        s.tpot_p99_s = books_[i].tpot.Percentile(99.0);
        tokens_out_check += s.tokens_out;
        if (s.arrived != s.completed + s.dropped + s.shed) {
            result_.conservation_ok = false;
            result_.conservation_error = StrFormat(
                "tenant %s: arrived %lld != completed %lld + dropped "
                "%lld + shed %lld",
                s.name.c_str(), (long long)s.arrived,
                (long long)s.completed, (long long)s.dropped,
                (long long)s.shed);
        }
        result_.tenants.push_back(s);
    }
    if (result_.conservation_ok &&
        result_.arrived !=
            result_.completed + result_.dropped + result_.shed) {
        result_.conservation_ok = false;
        result_.conservation_error = "global request books off";
    }
    if (result_.conservation_ok && kv_->total_tokens() != 0) {
        result_.conservation_ok = false;
        result_.conservation_error = StrFormat(
            "kv cache not drained: %lld tokens resident",
            (long long)kv_->total_tokens());
    }
    if (result_.conservation_ok &&
        tokens_out_check != result_.tokens_out) {
        result_.conservation_ok = false;
        result_.conservation_error = "tokens_out does not tile";
    }
    return result_;
}

}  // namespace

const char*
LlmModeName(LlmMode mode)
{
    switch (mode) {
        case LlmMode::kContinuous: return "continuous";
        case LlmMode::kStatic: return "static";
        case LlmMode::kDisaggregated: return "disagg";
    }
    return "?";
}

StatusOr<LlmMode>
ParseLlmMode(const std::string& name)
{
    if (name == "continuous") return LlmMode::kContinuous;
    if (name == "static") return LlmMode::kStatic;
    if (name == "disagg" || name == "disaggregated")
        return LlmMode::kDisaggregated;
    return Status::InvalidArgument(
        "unknown llm mode '" + name +
        "' (continuous | static | disagg)");
}

StatusOr<LlmResult>
RunLlmCell(const LlmCellConfig& config)
{
    LlmCell cell(config);
    return cell.Run();
}

}  // namespace llm
}  // namespace t4i
