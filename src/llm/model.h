/**
 * @file
 * LLM workload description + step-cost model for autoregressive
 * serving (src/llm/serve_llm.h).
 *
 * The paper's Lessons 8-9 (DNNs grow ~1.5x/yr; workloads evolve under
 * the hardware) point the 2020-era BERT/CNN catalog straight at
 * decoder-only serving. An LLM request has two phases with opposite
 * roofline regimes:
 *
 *   - prefill: the whole prompt flows through every block in one
 *     batched pass — big matmuls, compute-bound, KV cache *written*;
 *   - decode: one token per iteration against the growing KV cache —
 *     matvecs, memory-bound, the cache (and weights) stream back
 *     every step.
 *
 * CompiledLlmCostModel grounds both phases in the real compiler +
 * cycle simulator: it compiles BuildDecoderPrefill / BuildDecodeStep
 * graphs (src/models/zoo.h) at bucketed (batch, context, KV-residency
 * fraction) points and memoizes the simulated latencies, so the
 * scheduler's inner loop stays fast while every cost it quotes is one
 * the roofline/counter model would reproduce. FixedLlmCostModel is
 * the hand-computable test double.
 */
#ifndef T4I_LLM_MODEL_H
#define T4I_LLM_MODEL_H

#include <cstdint>
#include <map>
#include <string>
#include <tuple>

#include "src/arch/chip.h"
#include "src/common/status.h"
#include "src/graph/graph.h"

namespace t4i {
namespace llm {

/** One decoder-only model's shape. */
struct LlmModelConfig {
    std::string name = "TINYLM";
    int layers = 4;
    int64_t d_model = 512;
    int64_t num_heads = 8;
    int64_t d_ff = 2048;
    int64_t vocab = 32000;
    /** Hard context-window cap (prompt + generated tokens). */
    int64_t max_ctx = 4096;
    DType dtype = DType::kBf16;
};

/** Catalog lookup: TINYLM (4x512, the fast default) or GPT2L
 *  (24x1024, the bench_a4 decoder shape). */
StatusOr<LlmModelConfig> LlmModelByName(const std::string& name);

/** KV-cache bytes one token occupies across every layer (K and V). */
int64_t KvBytesPerToken(const LlmModelConfig& model);

/** Parameter bytes at the model dtype (all blocks + LM head). */
int64_t LlmWeightBytes(const LlmModelConfig& model);

/** Phase costs the scheduler charges against the sim clock. */
class LlmCostModel {
  public:
    virtual ~LlmCostModel() = default;

    /** One prefill pass over @p prompt_tokens (batch of one prompt). */
    virtual double PrefillSeconds(int64_t prompt_tokens) = 0;

    /**
     * One decode iteration: @p batch sequences, average context
     * @p avg_ctx tokens, @p kv_cmem_fraction of the cache resident in
     * CMEM (the rest streams from HBM).
     */
    virtual double DecodeStepSeconds(int64_t batch, int64_t avg_ctx,
                                     double kv_cmem_fraction) = 0;
};

/** Compiles + simulates the real graphs, memoized per bucket. */
class CompiledLlmCostModel : public LlmCostModel {
  public:
    CompiledLlmCostModel(const LlmModelConfig& model,
                         const ChipConfig& chip);

    double PrefillSeconds(int64_t prompt_tokens) override;
    double DecodeStepSeconds(int64_t batch, int64_t avg_ctx,
                             double kv_cmem_fraction) override;

    /** Compile+simulate calls actually made (memoization hits skip). */
    int64_t simulations() const { return simulations_; }

  private:
    LlmModelConfig model_;
    ChipConfig chip_;
    std::map<int64_t, double> prefill_memo_;
    std::map<std::tuple<int64_t, int64_t, int64_t>, double>
        decode_memo_;
    int64_t simulations_ = 0;
};

/** Hand-computable costs for tests and quantile fixtures. */
class FixedLlmCostModel : public LlmCostModel {
  public:
    FixedLlmCostModel(double prefill_s_per_token, double decode_step_s)
        : prefill_s_per_token_(prefill_s_per_token),
          decode_step_s_(decode_step_s)
    {
    }

    double
    PrefillSeconds(int64_t prompt_tokens) override
    {
        return prefill_s_per_token_ *
               static_cast<double>(prompt_tokens);
    }

    double
    DecodeStepSeconds(int64_t, int64_t, double) override
    {
        return decode_step_s_;
    }

  private:
    double prefill_s_per_token_;
    double decode_step_s_;
};

}  // namespace llm
}  // namespace t4i

#endif  // T4I_LLM_MODEL_H
