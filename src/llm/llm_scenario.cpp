#include "src/llm/llm_scenario.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "src/arch/catalog.h"
#include "src/obs/alerts.h"
#include "src/obs/sampling.h"
#include "src/obs/slo.h"
#include "src/obs/spans.h"
#include "src/obs/timeseries.h"

namespace t4i {
namespace llm {

namespace {

constexpr double kMiB = 1024.0 * 1024.0;

LlmTenant
MakeTenant(const load::ScenarioTenant& st,
           const load::LlmTenantProgram& prog,
           const load::LlmProgram& llm)
{
    LlmTenant t;
    t.name = st.name;
    t.rate = st.rate;
    t.deadline_s = st.deadline_s;
    t.prompt.mean = prog.prompt_mean;
    t.prompt.sigma = prog.prompt_sigma;
    t.prompt.max = static_cast<int64_t>(prog.prompt_max);
    t.output.mean = prog.output_mean;
    t.output.sigma = prog.output_sigma;
    t.output.max = static_cast<int64_t>(prog.output_max);
    t.ttft_slo_s = llm.ttft_slo_s;
    t.tpot_slo_s = llm.tpot_slo_s;
    t.shared_prefix_frac = prog.shared_prefix_frac;
    t.shared_prefix_len =
        static_cast<int64_t>(prog.shared_prefix_len);
    return t;
}

}  // namespace

StatusOr<LlmScenarioOutcome>
RunLlmScenario(const load::Scenario& scenario,
               const ScenarioRunOptions& options)
{
    if (!scenario.llm.enabled) {
        return Status::InvalidArgument(
            "RunLlmScenario needs an `llm` directive");
    }
    if (options.registry == nullptr) {
        return Status::InvalidArgument(
            "RunLlmScenario needs a metrics registry");
    }
    auto model = LlmModelByName(scenario.llm.model);
    T4I_RETURN_IF_ERROR(model.status());
    auto mode = ParseLlmMode(scenario.llm.mode);
    T4I_RETURN_IF_ERROR(mode.status());
    const uint64_t seed =
        options.override_seed ? options.seed : scenario.seed;

    // --- arrival program (flash crowds, bursts, traces, retry
    // --- storms all compose with the LLM cell) ----------------------
    std::vector<double> rates;
    std::vector<std::string> names;
    for (const load::ScenarioTenant& st : scenario.tenants) {
        rates.push_back(st.rate);
        names.push_back(st.name);
    }
    load::Scenario seeded = scenario;
    seeded.seed = seed;
    auto source_or = load::BuildArrivalSource(seeded, rates, names);
    T4I_RETURN_IF_ERROR(source_or.status());
    std::unique_ptr<load::ArrivalSource> source =
        std::move(source_or).ConsumeValue();

    // --- sinks -------------------------------------------------------
    obs::MetricsRegistry& reg = *options.registry;
    obs::AlertEngine alerts;
    alerts.BindRegistry(&reg);
    if (!scenario.alert_rules_text.empty()) {
        T4I_RETURN_IF_ERROR(
            alerts.AddRulesFromText(scenario.alert_rules_text));
    }
    obs::TimeSeriesOptions ts_options;
    ts_options.window_s = scenario.window_s;
    obs::TimeSeriesCollector collector(ts_options);
    collector.BindRegistry(&reg);
    if (alerts.rule_count() > 0) collector.BindAlerts(&alerts);
    obs::SloTracker slo_tracker;
    slo_tracker.BindRegistry(&reg);
    if (!scenario.slo_objectives_text.empty()) {
        T4I_RETURN_IF_ERROR(slo_tracker.AddObjectivesFromText(
            scenario.slo_objectives_text));
    }

    // --- cell config -------------------------------------------------
    LlmCellConfig config;
    config.model = model.value();
    config.chip = Tpu_v4i();
    config.mode = mode.value();
    config.max_batch = scenario.llm.max_batch;
    config.max_queue = scenario.llm.max_queue;
    config.duration_s = scenario.duration_s;
    config.seed = seed;
    for (size_t i = 0; i < scenario.tenants.size(); ++i) {
        config.tenants.push_back(MakeTenant(
            scenario.tenants[i],
            i < scenario.llm.tenants.size()
                ? scenario.llm.tenants[i]
                : load::LlmTenantProgram{},
            scenario.llm));
    }
    for (const load::LlmContextFlood& f : scenario.llm.floods) {
        config.floods.push_back(
            {f.at_s, f.dur_s, f.mult, f.tenant});
    }
    if (scenario.llm.kv_cmem_mb >= 0.0) {
        config.kv_cmem_budget_bytes = static_cast<int64_t>(
            scenario.llm.kv_cmem_mb * kMiB);
    }
    if (scenario.llm.kv_hbm_mb >= 0.0) {
        config.kv_hbm_budget_bytes = static_cast<int64_t>(
            scenario.llm.kv_hbm_mb * kMiB);
    }
    config.arrival_source = source.get();
    config.registry = &reg;
    config.timeseries = &collector;
    obs::SpanCollector internal_spans;
    config.spans = options.spans;
    if (options.forensics && config.spans == nullptr) {
        internal_spans.BindRegistry(&reg);
        config.spans = &internal_spans;
    }

    auto result = RunLlmCell(config);
    T4I_RETURN_IF_ERROR(result.status());

    LlmScenarioOutcome out;
    out.llm = std::move(result).ConsumeValue();
    ScenarioOutcome& outcome = out.outcome;
    outcome.policy = LlmModeName(config.mode);

    slo_tracker.Finish(out.llm.duration_s);
    collector.Finish(out.llm.duration_s);

    // Aggregate books, so shared printers/graders read one shape.
    outcome.cluster.arrived = out.llm.arrived;
    outcome.cluster.completed = out.llm.completed;
    outcome.cluster.dropped = out.llm.dropped;
    outcome.cluster.shed = out.llm.shed;
    outcome.cluster.duration_s = out.llm.duration_s;
    outcome.cluster.availability =
        out.llm.arrived > 0
            ? static_cast<double>(out.llm.completed) /
                  static_cast<double>(out.llm.arrived)
            : 1.0;

    // --- conservation: request books, token tiling, KV drain, and
    // --- the collector's window deltas -------------------------------
    outcome.conservation_ok =
        out.llm.conservation_ok &&
        collector.CheckConservation().ok();

    // --- alert verdict: exact set equality ---------------------------
    outcome.time_to_first_alert_s = -1.0;
    for (const obs::AlertStatus& status : alerts.statuses()) {
        if (status.state != obs::AlertState::kFiring) continue;
        outcome.fired.push_back(status.rule.name);
        if (outcome.time_to_first_alert_s < 0.0 ||
            status.fired_at_s < outcome.time_to_first_alert_s) {
            outcome.time_to_first_alert_s = status.fired_at_s;
            outcome.first_alert = status.rule.name;
        }
    }
    const std::set<std::string> fired(outcome.fired.begin(),
                                      outcome.fired.end());
    const std::set<std::string> expected(scenario.expect.begin(),
                                         scenario.expect.end());
    for (const std::string& name : expected) {
        if (fired.find(name) == fired.end()) {
            outcome.missing.push_back(name);
        }
    }
    for (const std::string& name : outcome.fired) {
        if (expected.find(name) == expected.end()) {
            outcome.unexpected.push_back(name);
        }
    }
    outcome.alerts_pass =
        outcome.missing.empty() && outcome.unexpected.empty();

    // --- goodput trough: completions net of token-SLO misses ---------
    std::vector<double> good;
    std::vector<double> bad;
    for (const obs::TimeSeries& series : collector.series()) {
        const bool completed = series.name == "llm.completed";
        const bool miss = series.name == "llm.ttft_slo_miss" ||
                          series.name == "llm.tpot_slo_miss";
        if (!completed && !miss) continue;
        std::vector<double>& sums = completed ? good : bad;
        if (sums.size() < series.points.size()) {
            sums.resize(series.points.size(), 0.0);
        }
        for (size_t i = 0; i < series.points.size(); ++i) {
            sums[i] += series.points[i].rate_per_s;
        }
    }
    size_t first = good.size();
    size_t last = 0;
    for (size_t i = 0; i < good.size(); ++i) {
        if (good[i] <= 0.0) continue;
        if (first == good.size()) first = i;
        last = i;
    }
    double trough = std::numeric_limits<double>::infinity();
    for (size_t i = first; i < good.size() && i <= last; ++i) {
        const double miss_rate = i < bad.size() ? bad[i] : 0.0;
        trough = std::min(trough, good[i] - miss_rate);
    }
    outcome.goodput_trough_rps =
        first < good.size() ? trough + 0.0 : 0.0;

    // --- tail forensics + expect-dominant ----------------------------
    if (options.forensics && config.spans != nullptr) {
        obs::TailSamplerOptions sampler_options;
        sampler_options.seed = seed;
        obs::TailSampler sampler(sampler_options);
        for (const obs::AlertStatus& status : alerts.statuses()) {
            if (status.fire_count > 0) {
                sampler.AddAlertWindow(status.fired_at_s,
                                       out.llm.duration_s);
            }
        }
        outcome.forensics =
            obs::BuildForensics(*config.spans, sampler, &reg, &reg);
        for (const auto& [tenant, component] :
             outcome.forensics.critical_path.dominant) {
            if (tenant == scenario.expect_dominant_tenant) {
                outcome.dominant_actual = component;
                break;
            }
        }
        if (!scenario.expect_dominant.empty()) {
            outcome.dominant_pass =
                outcome.dominant_actual == scenario.expect_dominant;
        }
    }

    if (options.build_report) {
        obs::ReportMeta meta;
        meta.command = "check-scenario";
        meta.app = scenario.name;
        meta.duration_s = out.llm.duration_s;
        meta.seed = static_cast<int64_t>(seed);
        meta.window_s = collector.window_s();
        outcome.report = obs::BuildRunReport(
            meta, &reg, &collector, &slo_tracker,
            alerts.rule_count() > 0 ? &alerts : nullptr);
        obs::AttachForensics(outcome.forensics, &outcome.report);
    }
    return out;
}

}  // namespace llm
}  // namespace t4i
