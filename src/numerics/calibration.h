/**
 * @file
 * Post-training quantization calibration (the engineering work Lesson 6
 * says int8-only hardware forces on every model).
 *
 * Deploying an fp32-trained model on TPUv1 meant choosing int8 scales
 * from sample activations. How those scales are chosen matters a lot on
 * heavy-tailed data: naive min/max lets one outlier blow up the scale,
 * percentile clipping trades saturation for resolution, and MSE-optimal
 * clipping searches for the best trade. This module implements the
 * standard methods so the numerics experiments can quantify exactly how
 * much engineering effort buys — and how far it still falls short of
 * just having bf16 (Lesson 6's punchline).
 */
#ifndef T4I_NUMERICS_CALIBRATION_H
#define T4I_NUMERICS_CALIBRATION_H

#include <vector>

#include "src/common/status.h"
#include "src/numerics/quantize.h"

namespace t4i {

/** Scale-selection strategies for post-training quantization. */
enum class CalibrationMethod {
    kMinMax,        ///< full observed range (outlier-sensitive)
    kPercentile999, ///< clip to the 99.9th percentile of |x|
    kPercentile99,  ///< clip to the 99th percentile of |x|
    kMseOptimal,    ///< grid-search the clip that minimizes MSE
};

const char* CalibrationMethodName(CalibrationMethod method);

/**
 * Chooses symmetric int8 parameters for @p samples using @p method.
 * Fails on empty input.
 */
StatusOr<QuantParams> Calibrate(const std::vector<float>& samples,
                                CalibrationMethod method);

/**
 * Convenience: calibrate on @p samples, then fake-quantize @p data with
 * the chosen parameters and report the error vs the original.
 */
StatusOr<ErrorMetrics> CalibratedQuantError(
    const std::vector<float>& samples, const std::vector<float>& data,
    CalibrationMethod method);

}  // namespace t4i

#endif  // T4I_NUMERICS_CALIBRATION_H
