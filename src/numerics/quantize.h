/**
 * @file
 * Int8 post-training quantization (Lessons 4 & 6).
 *
 * TPUv1 was int8-only; deploying an fp32-trained model on it required a
 * quantization step that cost engineering time and sometimes accuracy.
 * TPUv4i keeps int8 (2x MXU rate) but also offers bf16 so that models can
 * ship unchanged. This module implements the int8 path — symmetric and
 * asymmetric affine quantization with per-tensor or per-channel scales —
 * so experiment E13 can measure exactly the error the paper's Lesson 6
 * warns about, alongside bf16's.
 */
#ifndef T4I_NUMERICS_QUANTIZE_H
#define T4I_NUMERICS_QUANTIZE_H

#include <cstdint>
#include <vector>

#include "src/common/status.h"

namespace t4i {

/** Affine quantization parameters: real = scale * (q - zero_point). */
struct QuantParams {
    double scale = 1.0;
    int32_t zero_point = 0;
};

/** How scales are derived from data. */
enum class QuantScheme {
    kSymmetric,   ///< zero_point = 0; range = [-max|x|, +max|x|].
    kAsymmetric,  ///< full affine; range = [min x, max x].
};

/** Chooses quantization parameters for the given data. */
QuantParams ChooseQuantParams(const std::vector<float>& data,
                              QuantScheme scheme);

/** Quantizes to int8 with saturation. */
std::vector<int8_t> QuantizeInt8(const std::vector<float>& data,
                                 const QuantParams& params);

/** Dequantizes back to float. */
std::vector<float> DequantizeInt8(const std::vector<int8_t>& data,
                                  const QuantParams& params);

/** Round trip: quantize then dequantize (models the int8 datapath). */
std::vector<float> FakeQuantInt8(const std::vector<float>& data,
                                 QuantScheme scheme);

/** Per-output-channel fake quantization for a [rows x cols] weight matrix,
 *  scales chosen per row. This is the standard per-channel weight scheme. */
std::vector<float> FakeQuantInt8PerChannel(const std::vector<float>& data,
                                           int64_t rows, int64_t cols,
                                           QuantScheme scheme);

/** Error metrics between a reference and an approximation. */
struct ErrorMetrics {
    double max_abs_error = 0.0;
    double mean_abs_error = 0.0;
    double rms_error = 0.0;
    /** Signal-to-quantization-noise ratio in dB (higher is better). */
    double sqnr_db = 0.0;
};

/** Computes error metrics; inputs must have equal size. */
StatusOr<ErrorMetrics> ComputeError(const std::vector<float>& reference,
                                    const std::vector<float>& approx);

}  // namespace t4i

#endif  // T4I_NUMERICS_QUANTIZE_H
