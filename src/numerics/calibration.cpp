#include "src/numerics/calibration.h"

#include <algorithm>
#include <cmath>

namespace t4i {
namespace {

/** |x| percentile of the samples (q in [0,100]). */
double
AbsPercentile(std::vector<float> magnitudes, double q)
{
    std::sort(magnitudes.begin(), magnitudes.end());
    const double rank =
        q / 100.0 * static_cast<double>(magnitudes.size() - 1);
    const auto lo = static_cast<size_t>(std::floor(rank));
    const auto hi = static_cast<size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return magnitudes[lo] * (1.0 - frac) + magnitudes[hi] * frac;
}

QuantParams
ParamsForClip(double clip)
{
    QuantParams p;
    p.scale = std::max(clip, 1e-30) / 127.0;
    p.zero_point = 0;
    return p;
}

/** Mean squared error of fake-quantizing @p data with clip bound. */
double
MseForClip(const std::vector<float>& data, double clip)
{
    const QuantParams p = ParamsForClip(clip);
    double sum = 0.0;
    for (float x : data) {
        double q = std::nearbyint(static_cast<double>(x) / p.scale);
        q = std::clamp(q, -128.0, 127.0);
        const double back = q * p.scale;
        const double e = back - static_cast<double>(x);
        sum += e * e;
    }
    return sum / static_cast<double>(data.size());
}

}  // namespace

const char*
CalibrationMethodName(CalibrationMethod method)
{
    switch (method) {
      case CalibrationMethod::kMinMax: return "min/max";
      case CalibrationMethod::kPercentile999: return "p99.9";
      case CalibrationMethod::kPercentile99: return "p99";
      case CalibrationMethod::kMseOptimal: return "MSE-optimal";
    }
    return "?";
}

StatusOr<QuantParams>
Calibrate(const std::vector<float>& samples, CalibrationMethod method)
{
    if (samples.empty()) {
        return Status::InvalidArgument("no calibration samples");
    }
    std::vector<float> magnitudes(samples.size());
    for (size_t i = 0; i < samples.size(); ++i) {
        magnitudes[i] = std::fabs(samples[i]);
    }
    const double max_abs =
        *std::max_element(magnitudes.begin(), magnitudes.end());

    switch (method) {
      case CalibrationMethod::kMinMax:
        return ParamsForClip(max_abs);

      case CalibrationMethod::kPercentile999:
        return ParamsForClip(AbsPercentile(magnitudes, 99.9));

      case CalibrationMethod::kPercentile99:
        return ParamsForClip(AbsPercentile(magnitudes, 99.0));

      case CalibrationMethod::kMseOptimal: {
        // Golden-ratio-free simple grid: 64 clip candidates spanning
        // p90..max on a log scale.
        const double lo =
            std::max(AbsPercentile(magnitudes, 90.0), 1e-30);
        const double hi = std::max(max_abs, lo * (1.0 + 1e-9));
        double best_clip = hi;
        double best_mse = MseForClip(samples, hi);
        for (int i = 0; i < 64; ++i) {
            const double t = static_cast<double>(i) / 63.0;
            const double clip =
                lo * std::pow(hi / lo, t);
            const double mse = MseForClip(samples, clip);
            if (mse < best_mse) {
                best_mse = mse;
                best_clip = clip;
            }
        }
        return ParamsForClip(best_clip);
      }
    }
    return Status::Internal("unhandled calibration method");
}

StatusOr<ErrorMetrics>
CalibratedQuantError(const std::vector<float>& samples,
                     const std::vector<float>& data,
                     CalibrationMethod method)
{
    auto params = Calibrate(samples, method);
    T4I_RETURN_IF_ERROR(params.status());
    auto round_trip =
        DequantizeInt8(QuantizeInt8(data, params.value()),
                       params.value());
    return ComputeError(data, round_trip);
}

}  // namespace t4i
