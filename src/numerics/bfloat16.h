/**
 * @file
 * Software bfloat16 (Lesson 6: some inference apps need floating point).
 *
 * TPUv2 onward compute in bfloat16: the top 16 bits of an IEEE-754 binary32
 * value (1 sign, 8 exponent, 7 mantissa bits). The wide exponent keeps
 * fp32-trained models deployable without retraining (Lesson 4, backwards ML
 * compatibility); the narrow mantissa is what the numerics experiments
 * (E13) quantify. Conversion uses round-to-nearest-even, matching hardware.
 */
#ifndef T4I_NUMERICS_BFLOAT16_H
#define T4I_NUMERICS_BFLOAT16_H

#include <cstdint>
#include <cstring>

namespace t4i {

/** 16-bit brain floating point value. Storage-only; compute is via float. */
class BFloat16 {
  public:
    BFloat16() = default;

    /** Converts from float with round-to-nearest-even. */
    explicit BFloat16(float f) : bits_(RoundFromFloat(f)) {}

    /** Reinterprets raw bits. */
    static BFloat16
    FromBits(uint16_t bits)
    {
        BFloat16 b;
        b.bits_ = bits;
        return b;
    }

    /** Widens back to float (exact; bf16 values are a subset of fp32). */
    float
    ToFloat() const
    {
        uint32_t wide = static_cast<uint32_t>(bits_) << 16;
        float f;
        std::memcpy(&f, &wide, sizeof(f));
        return f;
    }

    uint16_t bits() const { return bits_; }

    friend bool
    operator==(BFloat16 a, BFloat16 b)
    {
        return a.bits_ == b.bits_;
    }

  private:
    static uint16_t
    RoundFromFloat(float f)
    {
        uint32_t x;
        std::memcpy(&x, &f, sizeof(x));
        // NaN must stay NaN: set a mantissa bit so truncation cannot turn
        // it into infinity.
        if ((x & 0x7fffffffu) > 0x7f800000u) {
            return static_cast<uint16_t>((x >> 16) | 0x0040u);
        }
        // Round to nearest even on the bit below the cut.
        uint32_t lsb = (x >> 16) & 1u;
        uint32_t rounding_bias = 0x7fffu + lsb;
        return static_cast<uint16_t>((x + rounding_bias) >> 16);
    }

    uint16_t bits_ = 0;
};

/** Convenience: float -> bf16 -> float round trip (the MXU input path). */
inline float
Bf16Round(float f)
{
    return BFloat16(f).ToFloat();
}

}  // namespace t4i

#endif  // T4I_NUMERICS_BFLOAT16_H
