#include "src/numerics/quantize.h"

#include <algorithm>
#include <cmath>

namespace t4i {
namespace {

constexpr int32_t kQMin = -128;
constexpr int32_t kQMax = 127;

int8_t
QuantizeOne(float x, const QuantParams& p)
{
    double q = std::nearbyint(static_cast<double>(x) / p.scale) +
               p.zero_point;
    q = std::clamp(q, static_cast<double>(kQMin),
                   static_cast<double>(kQMax));
    return static_cast<int8_t>(q);
}

}  // namespace

QuantParams
ChooseQuantParams(const std::vector<float>& data, QuantScheme scheme)
{
    QuantParams p;
    if (data.empty()) return p;
    float lo = data[0];
    float hi = data[0];
    for (float x : data) {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    if (scheme == QuantScheme::kSymmetric) {
        double bound = std::max(std::fabs(lo), std::fabs(hi));
        if (bound == 0.0) bound = 1.0;
        p.scale = bound / 127.0;
        p.zero_point = 0;
    } else {
        // Range must include zero so that zero is exactly representable.
        double rlo = std::min<double>(lo, 0.0);
        double rhi = std::max<double>(hi, 0.0);
        if (rhi == rlo) rhi = rlo + 1.0;
        p.scale = (rhi - rlo) / 255.0;
        double zp = kQMin - rlo / p.scale;
        p.zero_point = static_cast<int32_t>(std::nearbyint(
            std::clamp(zp, static_cast<double>(kQMin),
                       static_cast<double>(kQMax))));
    }
    return p;
}

std::vector<int8_t>
QuantizeInt8(const std::vector<float>& data, const QuantParams& params)
{
    std::vector<int8_t> out(data.size());
    for (size_t i = 0; i < data.size(); ++i) {
        out[i] = QuantizeOne(data[i], params);
    }
    return out;
}

std::vector<float>
DequantizeInt8(const std::vector<int8_t>& data, const QuantParams& params)
{
    std::vector<float> out(data.size());
    for (size_t i = 0; i < data.size(); ++i) {
        out[i] = static_cast<float>(
            params.scale * (static_cast<int32_t>(data[i]) -
                            params.zero_point));
    }
    return out;
}

std::vector<float>
FakeQuantInt8(const std::vector<float>& data, QuantScheme scheme)
{
    QuantParams p = ChooseQuantParams(data, scheme);
    return DequantizeInt8(QuantizeInt8(data, p), p);
}

std::vector<float>
FakeQuantInt8PerChannel(const std::vector<float>& data, int64_t rows,
                        int64_t cols, QuantScheme scheme)
{
    T4I_CHECK(static_cast<int64_t>(data.size()) == rows * cols,
              "shape mismatch");
    std::vector<float> out(data.size());
    std::vector<float> row(static_cast<size_t>(cols));
    for (int64_t r = 0; r < rows; ++r) {
        const float* src = data.data() + r * cols;
        std::copy(src, src + cols, row.begin());
        std::vector<float> fq = FakeQuantInt8(row, scheme);
        std::copy(fq.begin(), fq.end(), out.begin() + r * cols);
    }
    return out;
}

StatusOr<ErrorMetrics>
ComputeError(const std::vector<float>& reference,
             const std::vector<float>& approx)
{
    if (reference.size() != approx.size()) {
        return Status::InvalidArgument("size mismatch in ComputeError");
    }
    if (reference.empty()) {
        return Status::InvalidArgument("empty inputs to ComputeError");
    }
    ErrorMetrics m;
    double sum_abs = 0.0;
    double sum_sq = 0.0;
    double signal_sq = 0.0;
    for (size_t i = 0; i < reference.size(); ++i) {
        double e = static_cast<double>(reference[i]) - approx[i];
        sum_abs += std::fabs(e);
        sum_sq += e * e;
        signal_sq +=
            static_cast<double>(reference[i]) * reference[i];
        m.max_abs_error = std::max(m.max_abs_error, std::fabs(e));
    }
    const double n = static_cast<double>(reference.size());
    m.mean_abs_error = sum_abs / n;
    m.rms_error = std::sqrt(sum_sq / n);
    if (sum_sq == 0.0) {
        m.sqnr_db = 120.0;  // conventionally "exact" on our scale
    } else if (signal_sq == 0.0) {
        m.sqnr_db = 0.0;
    } else {
        m.sqnr_db = 10.0 * std::log10(signal_sq / sum_sq);
    }
    return m;
}

}  // namespace t4i
