#include "src/graph/layer.h"

#include "src/common/strings.h"

namespace t4i {

const char*
DTypeName(DType t)
{
    switch (t) {
      case DType::kInt8: return "int8";
      case DType::kBf16: return "bf16";
      case DType::kFp32: return "fp32";
    }
    return "?";
}

const char*
LayerKindName(LayerKind kind)
{
    switch (kind) {
      case LayerKind::kInput: return "Input";
      case LayerKind::kDense: return "Dense";
      case LayerKind::kConv2d: return "Conv2d";
      case LayerKind::kDepthwiseConv2d: return "DwConv2d";
      case LayerKind::kMaxPool: return "MaxPool";
      case LayerKind::kGlobalPool: return "GlobalPool";
      case LayerKind::kLstm: return "LSTM";
      case LayerKind::kAttention: return "Attention";
      case LayerKind::kFeedForward: return "FeedForward";
      case LayerKind::kLayerNorm: return "LayerNorm";
      case LayerKind::kSoftmax: return "Softmax";
      case LayerKind::kEmbedding: return "Embedding";
      case LayerKind::kElementwise: return "Elementwise";
      case LayerKind::kFlatten: return "Flatten";
      case LayerKind::kConcat: return "Concat";
      case LayerKind::kDecoderBlock: return "DecoderBlock";
    }
    return "?";
}

int64_t
FeatureElements(const std::vector<int64_t>& shape)
{
    int64_t n = 1;
    for (int64_t d : shape) n *= d;
    return n;
}

StatusOr<std::vector<int64_t>>
InferShape(const Layer& layer, const std::vector<int64_t>& in_shape)
{
    const LayerParams& p = layer.params;
    switch (layer.kind) {
      case LayerKind::kInput:
        return layer.out_shape.empty()
                   ? StatusOr<std::vector<int64_t>>(Status::InvalidArgument(
                         "Input layer needs an explicit shape"))
                   : StatusOr<std::vector<int64_t>>(layer.out_shape);

      case LayerKind::kDense: {
        if (in_shape.empty() || in_shape.back() != p.in_features) {
            return Status::InvalidArgument(StrFormat(
                "Dense '%s': input last dim %lld != in_features %lld",
                layer.name.c_str(),
                in_shape.empty()
                    ? -1LL
                    : static_cast<long long>(in_shape.back()),
                static_cast<long long>(p.in_features)));
        }
        std::vector<int64_t> out = in_shape;
        out.back() = p.out_features;
        return out;
      }

      case LayerKind::kConv2d: {
        if (in_shape.size() != 3) {
            return Status::InvalidArgument(
                "Conv2d expects per-sample [H, W, C] input");
        }
        const int64_t h = in_shape[0];
        const int64_t w = in_shape[1];
        const int64_t oh = (h + 2 * p.pad - p.kernel_h) / p.stride + 1;
        const int64_t ow = (w + 2 * p.pad - p.kernel_w) / p.stride + 1;
        if (oh <= 0 || ow <= 0) {
            return Status::InvalidArgument("Conv2d output is empty");
        }
        return std::vector<int64_t>{oh, ow, p.out_channels};
      }

      case LayerKind::kDepthwiseConv2d: {
        if (in_shape.size() != 3) {
            return Status::InvalidArgument(
                "DwConv2d expects per-sample [H, W, C] input");
        }
        const int64_t oh =
            (in_shape[0] + 2 * p.pad - p.kernel_h) / p.stride + 1;
        const int64_t ow =
            (in_shape[1] + 2 * p.pad - p.kernel_w) / p.stride + 1;
        if (oh <= 0 || ow <= 0) {
            return Status::InvalidArgument("DwConv2d output is empty");
        }
        return std::vector<int64_t>{oh, ow, in_shape[2]};
      }

      case LayerKind::kMaxPool: {
        if (in_shape.size() != 3) {
            return Status::InvalidArgument(
                "MaxPool expects per-sample [H, W, C] input");
        }
        const int64_t oh = (in_shape[0] - p.kernel_h) / p.stride + 1;
        const int64_t ow = (in_shape[1] - p.kernel_w) / p.stride + 1;
        if (oh <= 0 || ow <= 0) {
            return Status::InvalidArgument("MaxPool output is empty");
        }
        return std::vector<int64_t>{oh, ow, in_shape[2]};
      }

      case LayerKind::kGlobalPool: {
        if (in_shape.size() != 3) {
            return Status::InvalidArgument(
                "GlobalPool expects per-sample [H, W, C] input");
        }
        return std::vector<int64_t>{in_shape[2]};
      }

      case LayerKind::kLstm: {
        // Input [seq, features] -> output [seq, hidden].
        if (in_shape.size() != 2 || in_shape[0] != p.seq_len) {
            return Status::InvalidArgument(
                "LSTM expects per-sample [seq_len, features] input");
        }
        return std::vector<int64_t>{p.seq_len, p.hidden_dim};
      }

      case LayerKind::kAttention: {
        if (in_shape.size() != 2 || in_shape[1] != p.d_model) {
            return Status::InvalidArgument(
                "Attention expects per-sample [seq, d_model] input");
        }
        return in_shape;
      }

      case LayerKind::kFeedForward: {
        if (in_shape.size() != 2 || in_shape[1] != p.d_model) {
            return Status::InvalidArgument(
                "FeedForward expects per-sample [seq, d_model] input");
        }
        return in_shape;
      }

      case LayerKind::kLayerNorm:
      case LayerKind::kSoftmax:
      case LayerKind::kElementwise:
        return in_shape;

      case LayerKind::kEmbedding:
        // Output: one embed_dim vector per lookup.
        return std::vector<int64_t>{p.lookups_per_sample, p.embed_dim};

      case LayerKind::kFlatten:
        return std::vector<int64_t>{FeatureElements(in_shape)};

      case LayerKind::kConcat:
        // Per-input contribution; Graph::Finalize sums over all
        // inputs to produce the true output shape.
        return std::vector<int64_t>{FeatureElements(in_shape)};

      case LayerKind::kDecoderBlock: {
        if (in_shape.size() != 2 || in_shape[0] != p.seq_len ||
            in_shape[1] != p.d_model) {
            return Status::InvalidArgument(
                "DecoderBlock expects per-sample [seq_len, d_model] "
                "input");
        }
        return in_shape;
      }
    }
    return Status::Internal("unhandled layer kind");
}

StatusOr<LayerCost>
ComputeLayerCost(const Layer& layer, const std::vector<int64_t>& in_shape,
                 int64_t batch, DType weight_dtype, DType act_dtype)
{
    auto out_shape = InferShape(layer, in_shape);
    T4I_RETURN_IF_ERROR(out_shape.status());

    const LayerParams& p = layer.params;
    const double b = static_cast<double>(batch);
    const int64_t wb = DTypeBytes(weight_dtype);
    const int64_t ab = DTypeBytes(act_dtype);
    const int64_t in_elems = FeatureElements(in_shape);
    const int64_t out_elems = FeatureElements(out_shape.value());

    LayerCost cost;
    cost.in_bytes = batch * in_elems * ab;
    cost.out_bytes = batch * out_elems * ab;

    switch (layer.kind) {
      case LayerKind::kInput:
        cost.in_bytes = 0;
        break;

      case LayerKind::kDense: {
        // Rows = batch times any leading per-sample dims (e.g. sequence).
        const int64_t rows =
            batch * (in_elems / p.in_features);
        cost.flops = 2.0 * static_cast<double>(rows) *
                     static_cast<double>(p.in_features) *
                     static_cast<double>(p.out_features);
        cost.weight_bytes =
            (p.in_features * p.out_features + p.out_features) * wb;
        break;
      }

      case LayerKind::kConv2d: {
        const auto& os = out_shape.value();
        const int64_t cin = in_shape[2];
        const double macs = b * static_cast<double>(os[0]) *
                            static_cast<double>(os[1]) *
                            static_cast<double>(p.out_channels) *
                            static_cast<double>(p.kernel_h) *
                            static_cast<double>(p.kernel_w) *
                            static_cast<double>(cin);
        cost.flops = 2.0 * macs;
        cost.weight_bytes =
            (p.kernel_h * p.kernel_w * cin * p.out_channels +
             p.out_channels) * wb;
        break;
      }

      case LayerKind::kDepthwiseConv2d: {
        const auto& os = out_shape.value();
        const double macs = b * static_cast<double>(os[0]) *
                            static_cast<double>(os[1]) *
                            static_cast<double>(in_shape[2]) *
                            static_cast<double>(p.kernel_h) *
                            static_cast<double>(p.kernel_w);
        cost.flops = 2.0 * macs;
        cost.weight_bytes =
            (p.kernel_h * p.kernel_w * in_shape[2] + in_shape[2]) * wb;
        break;
      }

      case LayerKind::kMaxPool:
        cost.flops = b * static_cast<double>(out_elems) *
                     static_cast<double>(p.kernel_h * p.kernel_w);
        break;

      case LayerKind::kGlobalPool:
        cost.flops = b * static_cast<double>(in_elems);
        break;

      case LayerKind::kLstm: {
        const int64_t in_dim = in_shape[1];
        // Four gates, two matmuls per step plus pointwise gate math.
        const double macs_per_step =
            static_cast<double>(4 * p.hidden_dim) *
            static_cast<double>(in_dim + p.hidden_dim);
        cost.flops = b * static_cast<double>(p.seq_len) *
                         (2.0 * macs_per_step +
                          10.0 * static_cast<double>(p.hidden_dim));
        cost.weight_bytes =
            (4 * p.hidden_dim * (in_dim + p.hidden_dim) +
             4 * p.hidden_dim) * wb;
        break;
      }

      case LayerKind::kAttention: {
        const double s = static_cast<double>(in_shape[0]);
        const double d = static_cast<double>(p.d_model);
        // QKV projections + output projection: 4 * d*d per token.
        const double proj_macs = b * s * 4.0 * d * d;
        // Scores and weighted sum: 2 * s^2 * d per batch element.
        const double attn_macs = b * 2.0 * s * s * d;
        cost.flops = 2.0 * (proj_macs + attn_macs);
        cost.weight_bytes = (4 * p.d_model * p.d_model + 4 * p.d_model) * wb;
        break;
      }

      case LayerKind::kFeedForward: {
        const double s = static_cast<double>(in_shape[0]);
        const double macs = b * s * 2.0 *
                            static_cast<double>(p.d_model) *
                            static_cast<double>(p.d_ff);
        cost.flops = 2.0 * macs;
        cost.weight_bytes =
            (2 * p.d_model * p.d_ff + p.d_model + p.d_ff) * wb;
        break;
      }

      case LayerKind::kLayerNorm:
        cost.flops = b * 8.0 * static_cast<double>(in_elems);
        break;

      case LayerKind::kSoftmax:
        cost.flops = b * 5.0 * static_cast<double>(in_elems);
        break;

      case LayerKind::kEmbedding:
        // Lookups are pure memory traffic; weights are the table.
        cost.flops = 0.0;
        cost.weight_bytes = p.vocab * p.embed_dim * wb;
        cost.in_bytes = batch * p.lookups_per_sample *
                        static_cast<int64_t>(sizeof(int32_t));
        break;

      case LayerKind::kElementwise:
        cost.flops = b * p.flops_per_element *
                     static_cast<double>(out_elems);
        cost.in_bytes = batch * in_elems * ab * p.arity;
        break;

      case LayerKind::kFlatten:
        // Pure relabeling of the layout; no compute, no extra traffic.
        cost.flops = 0.0;
        cost.in_bytes = 0;
        cost.out_bytes = 0;
        break;

      case LayerKind::kConcat: {
        // A gather/copy of every input into one buffer. If the graph
        // has been finalized, the true (summed) output shape is on the
        // layer; otherwise fall back to the single-input view.
        const int64_t elems =
            layer.out_shape.empty() ? in_elems
                                    : FeatureElements(layer.out_shape);
        cost.flops = b * static_cast<double>(elems);
        cost.in_bytes = batch * elems * ab;
        cost.out_bytes = batch * elems * ab;
        break;
      }

      case LayerKind::kDecoderBlock: {
        // seq_len sequential single-token steps. Each step: QKV +
        // output projections (4 d^2), attention over the growing
        // kv_len + t cache (2 d (kv+t)), and the FFN (2 d d_ff).
        const double t_steps = static_cast<double>(p.seq_len);
        const double d = static_cast<double>(p.d_model);
        const double proj_macs = t_steps * 4.0 * d * d;
        const double avg_ctx =
            static_cast<double>(p.kv_len) + (t_steps - 1.0) / 2.0;
        const double attn_macs = t_steps * 2.0 * d * avg_ctx;
        const double ffn_macs =
            t_steps * 2.0 * d * static_cast<double>(p.d_ff);
        cost.flops = b * 2.0 * (proj_macs + attn_macs + ffn_macs);
        cost.weight_bytes =
            (4 * p.d_model * p.d_model +
             2 * p.d_model * p.d_ff + 4 * p.d_model + p.d_ff) * wb;
        break;
      }
    }
    return cost;
}

}  // namespace t4i
