#include "src/graph/graph.h"

#include "src/common/strings.h"

namespace t4i {

int
Graph::AddInput(const std::string& name, std::vector<int64_t> shape)
{
    Layer layer;
    layer.id = static_cast<int>(layers_.size());
    layer.kind = LayerKind::kInput;
    layer.name = name;
    layer.out_shape = std::move(shape);
    layers_.push_back(std::move(layer));
    finalized_ = false;
    return layers_.back().id;
}

int
Graph::AddLayer(LayerKind kind, const std::string& name,
                std::vector<int> inputs, LayerParams params)
{
    Layer layer;
    layer.id = static_cast<int>(layers_.size());
    layer.kind = kind;
    layer.name = name;
    layer.inputs = std::move(inputs);
    layer.params = params;
    layers_.push_back(std::move(layer));
    finalized_ = false;
    return layers_.back().id;
}

const Layer&
Graph::layer(int id) const
{
    T4I_CHECK(id >= 0 && id < num_layers(), "layer id out of range");
    return layers_[static_cast<size_t>(id)];
}

std::vector<int64_t>
Graph::InputShapeOf(int id) const
{
    const Layer& l = layer(id);
    if (l.inputs.empty()) return {};
    return layer(l.inputs[0]).out_shape;
}

Status
Graph::Finalize()
{
    for (auto& l : layers_) {
        if (l.kind == LayerKind::kInput) {
            if (!l.inputs.empty()) {
                return Status::InvalidArgument(
                    "input layer '" + l.name + "' must have no producers");
            }
            if (l.out_shape.empty()) {
                return Status::InvalidArgument(
                    "input layer '" + l.name + "' needs a shape");
            }
            continue;
        }
        if (l.inputs.empty()) {
            return Status::InvalidArgument(
                "layer '" + l.name + "' has no inputs");
        }
        for (int in : l.inputs) {
            if (in < 0 || in >= l.id) {
                return Status::InvalidArgument(StrFormat(
                    "layer '%s' references id %d (must be a prior layer)",
                    l.name.c_str(), in));
            }
        }
        const auto& first = layers_[static_cast<size_t>(l.inputs[0])];
        if (l.kind == LayerKind::kConcat) {
            // Concat accepts heterogeneous inputs; the output is the
            // flattened sum of all of them.
            int64_t total = 0;
            for (int in : l.inputs) {
                total += FeatureElements(
                    layers_[static_cast<size_t>(in)].out_shape);
            }
            l.out_shape = {total};
            continue;
        }
        // Other multi-input layers must agree on shape (residual adds).
        for (size_t i = 1; i < l.inputs.size(); ++i) {
            const auto& other =
                layers_[static_cast<size_t>(l.inputs[i])];
            if (other.out_shape != first.out_shape) {
                return Status::InvalidArgument(
                    "layer '" + l.name + "' has mismatched input shapes");
            }
        }
        auto shape = InferShape(l, first.out_shape);
        T4I_RETURN_IF_ERROR(shape.status());
        l.out_shape = std::move(shape).ConsumeValue();
    }
    finalized_ = true;
    return Status::Ok();
}

StatusOr<ModelCost>
Graph::Cost(int64_t batch, DType weight_dtype, DType act_dtype) const
{
    if (!finalized_) {
        return Status::FailedPrecondition("graph not finalized");
    }
    ModelCost total;
    for (const auto& l : layers_) {
        if (l.kind == LayerKind::kInput) continue;
        auto c = ComputeLayerCost(l, InputShapeOf(l.id), batch,
                                  weight_dtype, act_dtype);
        T4I_RETURN_IF_ERROR(c.status());
        total.total_flops += c.value().flops;
        total.weight_bytes += c.value().weight_bytes;
        total.activation_bytes += c.value().in_bytes + c.value().out_bytes;
    }
    const double denom = static_cast<double>(total.weight_bytes) +
                         static_cast<double>(total.activation_bytes);
    total.ops_per_byte = denom > 0 ? total.total_flops / denom : 0.0;
    total.ops_per_weight_byte =
        total.weight_bytes > 0
            ? total.total_flops / static_cast<double>(total.weight_bytes)
            : 0.0;
    return total;
}

std::string
Graph::ToString() const
{
    std::string out = "Graph '" + name_ + "':\n";
    for (const auto& l : layers_) {
        std::vector<std::string> shape_parts;
        for (int64_t d : l.out_shape) {
            shape_parts.push_back(
                StrFormat("%lld", static_cast<long long>(d)));
        }
        out += StrFormat("  #%d %-12s %-24s -> [%s]\n", l.id,
                         LayerKindName(l.kind), l.name.c_str(),
                         StrJoin(shape_parts, ", ").c_str());
    }
    return out;
}

std::string
Graph::ToDot() const
{
    std::string out = "digraph \"" + name_ + "\" {\n"
                      "  rankdir=TB;\n  node [shape=box, "
                      "fontname=\"monospace\"];\n";
    for (const auto& l : layers_) {
        std::vector<std::string> shape_parts;
        for (int64_t d : l.out_shape) {
            shape_parts.push_back(
                StrFormat("%lld", static_cast<long long>(d)));
        }
        out += StrFormat("  n%d [label=\"%s\\n%s [%s]\"%s];\n", l.id,
                         l.name.c_str(), LayerKindName(l.kind),
                         StrJoin(shape_parts, ",").c_str(),
                         l.kind == LayerKind::kInput
                             ? ", style=filled, fillcolor=lightgrey"
                             : "");
        for (int in : l.inputs) {
            out += StrFormat("  n%d -> n%d;\n", in, l.id);
        }
    }
    out += "}\n";
    return out;
}

}  // namespace t4i
