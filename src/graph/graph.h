/**
 * @file
 * Model graph: a DAG of Layers with builder, validation, shape inference
 * and whole-model cost accounting (weights, FLOPs, ops/byte).
 */
#ifndef T4I_GRAPH_GRAPH_H
#define T4I_GRAPH_GRAPH_H

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/graph/layer.h"

namespace t4i {

/** Whole-model static summary at a batch size and dtype pair. */
struct ModelCost {
    double total_flops = 0.0;       ///< per batch
    int64_t weight_bytes = 0;
    int64_t activation_bytes = 0;   ///< sum of inter-layer traffic
    /** FLOPs per byte of (weights + activations) — operational
     *  intensity if nothing is cached on chip. */
    double ops_per_byte = 0.0;
    /** FLOPs per weight byte — intensity when activations stay on chip,
     *  the regime the paper's rooflines use. */
    double ops_per_weight_byte = 0.0;
};

/** A DAG of layers. Layer 0..k are in insertion order; ids are indices. */
class Graph {
  public:
    explicit Graph(std::string name) : name_(std::move(name)) {}

    const std::string& name() const { return name_; }

    /** Adds an input layer with the given per-sample feature shape. */
    int AddInput(const std::string& name, std::vector<int64_t> shape);

    /** Adds a layer fed by @p inputs; returns its id. */
    int AddLayer(LayerKind kind, const std::string& name,
                 std::vector<int> inputs, LayerParams params);

    int num_layers() const { return static_cast<int>(layers_.size()); }
    const Layer& layer(int id) const;
    const std::vector<Layer>& layers() const { return layers_; }

    /**
     * Validates the DAG (edges point backward, arities match) and runs
     * shape inference, filling every layer's out_shape.
     */
    Status Finalize();

    bool finalized() const { return finalized_; }

    /**
     * Whole-model cost at a given batch/dtype. Graph must be finalized.
     */
    StatusOr<ModelCost> Cost(int64_t batch, DType weight_dtype,
                             DType act_dtype) const;

    /** Per-layer input shape (first input's out_shape; empty for inputs). */
    std::vector<int64_t> InputShapeOf(int id) const;

    /** Multi-line human-readable description. */
    std::string ToString() const;

    /** Graphviz DOT rendering of the DAG (nodes labeled kind+shape). */
    std::string ToDot() const;

  private:
    std::string name_;
    std::vector<Layer> layers_;
    bool finalized_ = false;
};

}  // namespace t4i

#endif  // T4I_GRAPH_GRAPH_H
