/**
 * @file
 * Layer definitions for the model IR.
 *
 * A Layer is a coarse-grained operator carrying its per-sample parameters
 * (feature dimensions, kernel sizes, sequence lengths). Batch size is NOT
 * part of the IR: inference batch is chosen at compile/serving time
 * (Lesson 10 — the app picks the largest batch that meets its latency
 * SLO), so all cost queries take the batch as an argument.
 *
 * Data type is also bound late: the same model can be compiled for bf16 or
 * int8 execution (Lessons 4 & 6).
 */
#ifndef T4I_GRAPH_LAYER_H
#define T4I_GRAPH_LAYER_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace t4i {

/** Element types supported by the datapaths. */
enum class DType { kInt8 = 1, kBf16 = 2, kFp32 = 4 };

/** Bytes per element of a DType. */
inline int64_t
DTypeBytes(DType t)
{
    return static_cast<int64_t>(t);
}

const char* DTypeName(DType t);

/** Operator kinds understood by the compiler. */
enum class LayerKind {
    kInput,       ///< graph input; carries the per-sample feature shape
    kDense,       ///< fully connected: [B, in] x [in, out] + bias + act
    kConv2d,      ///< 2-D convolution, NHWC
    kDepthwiseConv2d, ///< depthwise 2-D convolution (one filter per
                  ///< channel; MobileNet-era op that maps poorly onto
                  ///< systolic arrays — Lesson 9's evolution pressure)
    kMaxPool,     ///< max pooling
    kGlobalPool,  ///< global average pooling [B,H,W,C] -> [B,C]
    kLstm,        ///< multi-step LSTM layer (runs seq_len cell steps)
    kAttention,   ///< multi-head self-attention block (QKV + output proj)
    kFeedForward, ///< transformer FFN (two dense layers, GELU)
    kLayerNorm,   ///< row-wise layer normalization
    kSoftmax,     ///< row-wise softmax
    kEmbedding,   ///< table lookup: gathers rows of a [vocab, dim] table
    kElementwise, ///< pointwise op (ReLU/add/residual), possibly 2 inputs
    kFlatten,     ///< reshapes the per-sample features to 1-D (zero cost)
    kConcat,      ///< concatenates flattened inputs (DLRM interaction,
                  ///< detector heads); inputs may differ in shape
    kDecoderBlock,///< autoregressive transformer block: seq_len
                  ///< *sequential* decode steps of self-attention over
                  ///< a kv_len-token cache plus an FFN (post-2020 LLM
                  ///< serving — the growth direction of Lesson 9)
};

const char* LayerKindName(LayerKind kind);

/** Activation applied at the end of a Dense/Conv layer. */
enum class Activation { kNone, kRelu, kGelu, kTanh, kSigmoid };

/** Parameters; only the fields relevant to `kind` are meaningful. */
struct LayerParams {
    // kDense
    int64_t in_features = 0;
    int64_t out_features = 0;

    // kConv2d / kMaxPool
    int64_t kernel_h = 0;
    int64_t kernel_w = 0;
    int64_t stride = 1;
    int64_t pad = 0;
    int64_t out_channels = 0;

    // kLstm
    int64_t seq_len = 0;
    int64_t hidden_dim = 0;

    // kAttention / kFeedForward / kDecoderBlock
    int64_t d_model = 0;
    int64_t num_heads = 0;
    int64_t d_ff = 0;
    /** kDecoderBlock: tokens already in the KV cache (prompt length). */
    int64_t kv_len = 0;
    /**
     * kDecoderBlock: process all seq_len tokens in one batched pass
     * (the prefill phase of autoregressive serving — compute-bound
     * matmuls that *write* the KV cache) instead of seq_len
     * sequential single-token decode steps that stream it back.
     */
    bool prefill = false;

    // kEmbedding
    int64_t vocab = 0;
    int64_t embed_dim = 0;
    int64_t lookups_per_sample = 0;

    // kElementwise
    int64_t arity = 1;
    double flops_per_element = 1.0;

    Activation activation = Activation::kNone;
};

/** One node of the model graph. */
struct Layer {
    int id = -1;
    LayerKind kind = LayerKind::kInput;
    std::string name;
    std::vector<int> inputs;       ///< producer layer ids
    LayerParams params;
    /** Per-sample output feature shape (no batch dim), filled by
     *  shape inference. */
    std::vector<int64_t> out_shape;
};

/** Product of a feature shape (elements per sample). */
int64_t FeatureElements(const std::vector<int64_t>& shape);

/**
 * Static cost of one layer at a given batch and weight dtype.
 * FLOPs count multiply and add separately (2 * MACs), matching how the
 * paper quotes peak TFLOPS.
 */
struct LayerCost {
    double flops = 0.0;          ///< per-batch total
    int64_t weight_bytes = 0;    ///< parameter bytes at the weight dtype
    int64_t in_bytes = 0;        ///< activation bytes read (batch, act dtype)
    int64_t out_bytes = 0;       ///< activation bytes written
};

/**
 * Computes the static cost of @p layer.
 * @param in_shape per-sample input feature shape (from the producer)
 * @param batch inference batch size
 * @param weight_dtype dtype of parameters
 * @param act_dtype dtype of activations
 */
StatusOr<LayerCost> ComputeLayerCost(const Layer& layer,
                                     const std::vector<int64_t>& in_shape,
                                     int64_t batch, DType weight_dtype,
                                     DType act_dtype);

/**
 * Shape inference for one layer given its (first) input's per-sample
 * shape. Returns the per-sample output shape.
 */
StatusOr<std::vector<int64_t>> InferShape(
    const Layer& layer, const std::vector<int64_t>& in_shape);

}  // namespace t4i

#endif  // T4I_GRAPH_LAYER_H
