#!/usr/bin/env bash
# Regenerates everything: build, tests, all experiment benches, all
# examples. Outputs land in test_output.txt / bench_output.txt at the
# repository root (the canonical artifacts EXPERIMENTS.md refers to),
# plus bench_output.json: the BENCH_JSON summary line every bench
# emits, collected into one JSON array for downstream tooling.
#
# Exit status is non-zero if the configure, build, any test, or any
# bench fails.
set -u -o pipefail
cd "$(dirname "$0")/.."

fail=0

# Use whatever generator the build tree already has (or the platform
# default); fall back to Ninja only for a fresh configure that fails.
if ! cmake -B build -S .; then
    cmake -B build -S . -G Ninja || exit 1
fi
cmake --build build -j "$(nproc)" || exit 1

ctest --test-dir build -j "$(nproc)" --output-on-failure 2>&1 \
    | tee test_output.txt || fail=1

(
    rc=0
    for b in build/bench/*; do
        [ -x "$b" ] || continue
        "$b" || { echo "BENCH FAILED: $b"; rc=1; }
    done
    exit $rc
) 2>&1 | tee bench_output.txt || fail=1

# Collect the one-line machine-readable summaries into a JSON array.
sed -n 's/^BENCH_JSON //p' bench_output.txt \
    | awk 'BEGIN { print "[" } NR > 1 { print "," } { print }
           END { print "]" }' > bench_output.json
echo "wrote bench_output.json ($(grep -c '^BENCH_JSON ' bench_output.txt || true) benches)"

# Keep a timestamped copy so bench metrics can be compared across
# runs (bench/history/ is tracked; prune old entries by hand).
mkdir -p bench/history
history_file="bench/history/bench_$(date -u +%Y%m%dT%H%M%SZ).json"
cp bench_output.json "$history_file"
echo "wrote $history_file"

# Gate the full set against the checked-in baselines (refresh with
# `tools/perf_gate.py --update` after intentional perf changes).
python3 tools/perf_gate.py --baselines bench/baselines.json \
    --current bench_output.json --require-all || fail=1

echo
echo "Examples (smoke):"
./build/examples/quickstart BERT0 16 | tail -3 || fail=1
./build/examples/ten_lessons | head -8 || fail=1

exit $fail
