#!/usr/bin/env bash
# Regenerates everything: build, tests, all experiment benches, all
# examples. Outputs land in test_output.txt / bench_output.txt at the
# repository root (the canonical artifacts EXPERIMENTS.md refers to).
set -u
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do "$b"; done 2>&1 | tee bench_output.txt

echo
echo "Examples (smoke):"
./build/examples/quickstart BERT0 16 | tail -3
./build/examples/ten_lessons | head -8
