#!/usr/bin/env bash
# CI entry point: tier-1 verification (configure, build, ctest) plus
# an observability smoke check — run one CLI invocation with
# --metrics-json and make sure every metric name the repo promises
# (tools/metrics_schema.txt) actually appears in the emitted JSON —
# and a perf-regression gate: re-run the fast benches and compare
# their BENCH_JSON lines against bench/baselines.json with
# tools/perf_gate.py (refresh bands with `perf_gate.py --update`
# after an intentional performance change).
set -u -o pipefail
cd "$(dirname "$0")/.."

# --- tier 1: build + tests -------------------------------------------
if ! cmake -B build -S .; then
    cmake -B build -S . -G Ninja || exit 1
fi
cmake --build build -j "$(nproc)" || exit 1
ctest --test-dir build -j "$(nproc)" --output-on-failure || exit 1

# --- observability smoke ---------------------------------------------
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
metrics="$workdir/metrics.json"
trace="$workdir/trace.json"

./build/examples/t4sim_cli run --app BERT0 --batch 16 \
    "--metrics-json=$metrics" "--trace-out=$trace" || exit 1
[ -s "$metrics" ] || { echo "CI: $metrics missing or empty"; exit 1; }
[ -s "$trace" ] || { echo "CI: $trace missing or empty"; exit 1; }

# --- cluster-outage smoke --------------------------------------------
# One of three cells dies at t=1.4 of 2.0 under a lagged health check:
# the router must fail over, request conservation must hold (the CLI
# exits nonzero when the books don't balance), and availability must
# stay above the N+k-predicted floor (--require-floor). The snapshot
# also supplies the cluster.* names for the schema diff below.
cmetrics="$workdir/cluster_metrics.json"
ctrace="$workdir/cluster_trace.json"
report_a="$workdir/cluster_report_a.json"
./build/examples/t4sim_cli serve-cluster --app BERT0 --batch 16 \
    --cells 3 --fail-cell 1 --fail-at 1.4 --health-interval 0.1 \
    --require-floor \
    "--metrics-json=$cmetrics" "--trace-out=$ctrace" \
    "--report-out=$report_a" || exit 1
[ -s "$cmetrics" ] || { echo "CI: $cmetrics missing or empty"; exit 1; }
cavail="$(grep -o '"name":"cluster.availability","labels":{},"value":[0-9.eE+-]*' \
    "$cmetrics" | sed 's/.*"value"://')"
[ -n "$cavail" ] || { echo "CI: cluster.availability gauge missing"; exit 1; }
grep -q '"cell 1 unhealthy"' "$ctrace" \
    || { echo "CI: router never noticed the dead cell on the trace"; exit 1; }

# --- LLM serving smoke -----------------------------------------------
# One continuous-batching cell: token conservation is run-failing
# (nonzero exit when the books don't close), the TTFT alert gate must
# trip on a firing rule and stay quiet otherwise, identical seeds must
# produce bit-identical report artifacts, and the metrics snapshot
# supplies the llm.* names for the schema diff below.
lmetrics="$workdir/llm_metrics.json"
lreport_a="$workdir/llm_report_a.json"
lreport_b="$workdir/llm_report_b.json"
./build/examples/t4sim_cli serve-llm --model TINYLM --mode continuous \
    --rate 200 --prompt-mean 128 --output-mean 16 --duration 0.5 \
    "--metrics-json=$lmetrics" "--report-out=$lreport_a" || exit 1
[ -s "$lmetrics" ] || { echo "CI: $lmetrics missing or empty"; exit 1; }
./build/examples/t4sim_cli serve-llm --model TINYLM --mode continuous \
    --rate 200 --prompt-mean 128 --output-mean 16 --duration 0.5 \
    "--report-out=$lreport_b" > /dev/null || exit 1
./build/examples/t4sim_cli diff "$lreport_a" "$lreport_b" \
    || { echo "CI: serve-llm reports differ across identical seeds"; exit 1; }
printf 'alert ttft-hot llm.ttft_seconds:p95 > 0.000001 for 0\n' \
    > "$workdir/llm_hot.rules"
printf 'alert ttft-cold llm.ttft_seconds:p95 > 10 for 0\n' \
    > "$workdir/llm_cold.rules"
if ./build/examples/t4sim_cli serve-llm --model TINYLM --rate 200 \
    --duration 0.5 "--alerts=$workdir/llm_hot.rules" > /dev/null; then
    echo "CI: serve-llm exited zero despite a firing TTFT rule"
    exit 1
fi
./build/examples/t4sim_cli serve-llm --model TINYLM --rate 200 \
    --duration 0.5 "--alerts=$workdir/llm_cold.rules" > /dev/null \
    || { echo "CI: serve-llm exited nonzero with no firing rule"; exit 1; }

# Names present in the emitted snapshots (run + serve-cluster), one
# per line. The pipeline's status must be checked explicitly: the
# script runs without `set -e`, so a failed grep (no names at all — an
# empty or malformed snapshot) would otherwise sail on and "pass" the
# schema check with zero names.
if ! cat "$metrics" "$cmetrics" "$lmetrics" \
    | grep -o '"name":"[^"]*"' | sed 's/"name":"//;s/"$//' \
    | sort -u > "$workdir/emitted.txt"; then
    echo "CI: failed to extract metric names from $metrics + $cmetrics + $lmetrics"
    exit 1
fi

missing=0
while IFS= read -r key; do
    case "$key" in ''|'#'*) continue ;; esac
    if ! grep -qxF "$key" "$workdir/emitted.txt"; then
        echo "CI: metric '$key' promised by tools/metrics_schema.txt" \
             "but absent from $metrics"
        missing=1
    fi
done < tools/metrics_schema.txt
if [ "$missing" -ne 0 ]; then
    echo "CI: emitted metric names were:"
    sed 's/^/  /' "$workdir/emitted.txt"
    exit 1
fi

# --- run report + cross-run diff smoke -------------------------------
# The serve-cluster drill above also wrote a versioned report.json
# artifact. Re-run it with identical flags (the sim is deterministic,
# so the artifacts must agree bit-for-bit under diff's default bands),
# then seed a perturbation into a copy and require `diff` to trip.
report_b="$workdir/cluster_report_b.json"
./build/examples/t4sim_cli serve-cluster --app BERT0 --batch 16 \
    --cells 3 --fail-cell 1 --fail-at 1.4 --health-interval 0.1 \
    --require-floor "--report-out=$report_b" > /dev/null || exit 1
[ -s "$report_a" ] || { echo "CI: report artifact missing"; exit 1; }

# Versioned-schema check: the artifact must parse as JSON and carry
# the promised top-level sections (the report-side analogue of the
# metric-name schema diff above).
python3 - "$report_a" <<'EOF' || exit 1
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
assert report["schema_version"] == 2, report["schema_version"]
for key in ("meta", "series", "slos", "alerts", "critical_path",
            "exemplars", "metrics"):
    assert key in report, f"report.json missing top-level '{key}'"
assert report["meta"]["tool"] == "t4sim_cli", report["meta"]
assert report["series"], "no windowed series in report"
assert report["slos"], "no SLO section in report"
EOF

./build/examples/t4sim_cli diff "$report_a" "$report_b" \
    || { echo "CI: diff of identical runs was not clean"; exit 1; }

# Negative test: nudge one counter in a copy; diff must exit nonzero.
report_bad="$workdir/cluster_report_bad.json"
python3 - "$report_b" "$report_bad" <<'EOF' || exit 1
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
for key in report["metrics"]:
    if key.startswith("serving.completed"):
        report["metrics"][key] += 5
        break
else:
    raise SystemExit("no serving.completed metric to perturb")
with open(sys.argv[2], "w") as f:
    json.dump(report, f)
EOF
if ./build/examples/t4sim_cli diff "$report_a" "$report_bad" > /dev/null; then
    echo "CI: diff exited zero on a perturbed report"
    exit 1
fi

# The perf gate's report mode reuses the tolerance machinery on the
# artifacts' final-metric snapshots (identical runs must pass).
python3 tools/perf_gate.py --baselines bench/baselines.json \
    --reports "$report_a" "$report_b" || exit 1

# Both render formats must produce non-empty output.
./build/examples/t4sim_cli report "$report_a" > "$workdir/report.md" \
    || { echo "CI: report markdown render failed"; exit 1; }
[ -s "$workdir/report.md" ] || { echo "CI: markdown render empty"; exit 1; }
./build/examples/t4sim_cli report "$report_a" --format csv \
    > "$workdir/report.csv" || { echo "CI: report csv render failed"; exit 1; }
[ -s "$workdir/report.csv" ] || { echo "CI: csv render empty"; exit 1; }

# The enriched trace must carry at least one counter track and one
# flow event (acceptance criteria for the observability subsystem).
grep -q '"ph":"C"' "$trace" || { echo "CI: no counter track in trace"; exit 1; }
grep -q '"ph":"s"' "$trace" || { echo "CI: no flow event in trace"; exit 1; }

# --- fault-injection smoke -------------------------------------------
# Scripted single-device failure in a 4-device cell plus transient
# batch errors: the run must report degraded availability, non-zero
# retries, and fault instants on the trace.
fmetrics="$workdir/fault_metrics.json"
ftrace="$workdir/fault_trace.json"
./build/examples/t4sim_cli run --app BERT0 --batch 16 --devices 4 \
    --fail-at 0.5 --repair-at 1.2 --fault-p 0.02 \
    "--metrics-json=$fmetrics" "--trace-out=$ftrace" || exit 1

avail="$(grep -o '"name":"serving.availability","labels":{},"value":[0-9.eE+-]*' \
    "$fmetrics" | sed 's/.*"value"://')"
case "$avail" in
    '') echo "CI: serving.availability gauge missing under faults"; exit 1 ;;
    1|1.0) echo "CI: availability still 1.0 despite scripted failure"; exit 1 ;;
esac

retries="$(grep -o '"name":"serving.retries"[^}]*},"value":[0-9]*' \
    "$fmetrics" | sed 's/.*"value"://')"
if [ -z "$retries" ] || [ "$retries" -eq 0 ]; then
    echo "CI: serving.retries counter missing or zero under transient faults"
    exit 1
fi

grep -q '"fault: down"' "$ftrace" || { echo "CI: no fault instant in trace"; exit 1; }

# --- black-box flight-recorder smoke ---------------------------------
# A scripted device failure must trigger the post-mortem dump: the
# file exists, parses as JSON, and carries a fault event, the device
# states, and the spliced registry snapshot.
blackbox="$workdir/blackbox.json"
spans="$workdir/spans.jsonl"
./build/examples/t4sim_cli run --app BERT0 --batch 16 --devices 4 \
    --fail-at 0.5 --repair-at 1.2 \
    "--blackbox-out=$blackbox" "--spans-out=$spans" || exit 1
[ -s "$blackbox" ] || { echo "CI: black-box dump missing after scripted failure"; exit 1; }
python3 - "$blackbox" <<'EOF' || exit 1
import json, sys
with open(sys.argv[1]) as f:
    dump = json.load(f)
assert dump["reason"].startswith("fault"), dump["reason"]
kinds = {e["kind"] for e in dump["events"]}
assert "fault" in kinds, f"no fault event in dump (kinds: {kinds})"
assert any(d["down"] for d in dump["devices"]), "no device down at dump time"
assert isinstance(dump["metrics"], dict), "registry snapshot missing"
assert isinstance(dump["open_spans"], list), "open-span list missing"
EOF
[ -s "$spans" ] || { echo "CI: span JSONL missing"; exit 1; }
python3 -c "
import json, sys
spans = [json.loads(l) for l in open(sys.argv[1])]
assert spans, 'no spans exported'
roots = [s for s in spans if s['parent_id'] == 0]
assert roots, 'no root spans'
" "$spans" || exit 1

# --- alert gate smoke ------------------------------------------------
# `check` must exit nonzero when a rule fires and zero when none do.
echo 'alert always serving.duration_seconds > 0.1 for 0' > "$workdir/firing.rules"
echo 'alert never serving.duration_seconds > 1e9 for 0' > "$workdir/quiet.rules"
if ./build/examples/t4sim_cli check --app BERT0 --batch 16 \
    "--alerts=$workdir/firing.rules" > /dev/null 2>&1; then
    echo "CI: check exited zero despite a firing alert rule"
    exit 1
fi
./build/examples/t4sim_cli check --app BERT0 --batch 16 \
    "--alerts=$workdir/quiet.rules" > /dev/null \
    || { echo "CI: check exited nonzero with no firing rule"; exit 1; }

# --- tail-forensics smoke --------------------------------------------
# The sampler's two contracts, checked on the healthy steady-state
# scenario where they actually bite: keep at most 10% of traces, yet
# keep 100% of SLO violators / non-completions, and every exported
# exemplar must resolve to a kept trace. The same run exercises the
# scenario-level --spans-out/--blackbox-out plumbing.
fspans="$workdir/forensics_spans.jsonl"
fbb="$workdir/forensics_blackbox.json"
freport="$workdir/forensics_report.json"
./build/examples/t4sim_cli check --scenario scenarios/steady_state.scn \
    "--spans-out=$fspans" "--blackbox-out=$fbb" \
    "--report-out=$freport" > /dev/null || exit 1
[ -s "$fspans" ] || { echo "CI: scenario span JSONL missing"; exit 1; }
python3 - "$fspans" "$fbb" "$freport" <<'EOF' || exit 1
import json, sys
spans = [json.loads(l) for l in open(sys.argv[1])]
roots = {s["trace_id"]: s for s in spans if s["parent_id"] == 0}
report = json.load(open(sys.argv[3]))
cp = report["critical_path"]
kept = set(cp["kept_trace_ids"])
assert cp["traces"] == len(roots), (cp["traces"], len(roots))
assert cp["untiled"] == 0, f"{cp['untiled']} kept paths failed to tile"
frac = cp["kept"] / cp["traces"]
assert frac <= 0.10, f"sampler kept {frac:.1%} of healthy traces (> 10%)"
violators = {
    tid for tid, root in roots.items()
    if root["attributes"].get("slo_miss") == "1"
    or root["attributes"].get("outcome") != "completed"
}
assert violators <= kept, \
    f"{len(violators - kept)} SLO violators were not kept"
for ex in report["exemplars"]:
    assert ex["trace_id"] in kept, \
        f"exemplar for {ex['metric']} points at unkept trace {ex['trace_id']}"
# The scenario black box carries the forensics summary (kept ids +
# exemplar refs), and it must agree with the report.
bb = json.load(open(sys.argv[2]))
assert bb["forensics"] is not None, "black box has no forensics field"
assert set(bb["forensics"]["kept_trace_ids"]) == kept, \
    "black-box kept set disagrees with the report"
EOF

# Offline explain over the artifacts must exit zero (every exemplar
# resolves, every path tiles)...
./build/examples/t4sim_cli explain "--spans=$fspans" \
    "--report=$freport" > /dev/null \
    || { echo "CI: explain rejected a clean run's artifacts"; exit 1; }
# ...and nonzero once an exemplar is tampered to an unknown trace.
freport_bad="$workdir/forensics_report_bad.json"
python3 - "$freport" "$freport_bad" <<'EOF' || exit 1
import json, sys
report = json.load(open(sys.argv[1]))
assert report["exemplars"], "no exemplars to tamper with"
report["exemplars"][0]["trace_id"] = 10**9
json.dump(report, open(sys.argv[2], "w"))
EOF
if ./build/examples/t4sim_cli explain "--spans=$fspans" \
    "--report=$freport_bad" > /dev/null 2>&1; then
    echo "CI: explain exited zero on an unresolvable exemplar"
    exit 1
fi

# --- adversarial scenario matrix (chaos gate) ------------------------
# Every checked-in scenario is a CI assertion: steady state, flash
# crowds at absorbable and overwhelming multipliers, heavy-tailed
# sizes, correlated bursts meeting a dead cell, closed-loop trace
# replay, the retry-storm pair whose whole point is the split
# verdict — the same storm must PAGE under fixed backoff and recover
# (stay quiet) under jittered exponential backoff — and the LLM
# long-context-flood pair, where the same prompt-length shock pages
# TTFT on a shared prefill/decode pipeline and must stay quiet under
# prefill disaggregation. `check --scenario`
# exits nonzero when an expected alert stays quiet, an unexpected one
# fires, request conservation is violated, or a scenario's declared
# dominant tail component (`expect-dominant`, graded from the
# critical-path forensics; retry_storm_fixed.scn pins `queue`) does
# not match the measured one.
scn_count=0
for scn in scenarios/*.scn; do
    ./build/examples/t4sim_cli check --scenario "$scn" > /dev/null \
        || { echo "CI: scenario $scn failed its contract"; exit 1; }
    scn_count=$((scn_count + 1))
done
if [ "$scn_count" -lt 10 ]; then
    echo "CI: scenario matrix shrank ($scn_count < 10 scenarios)"
    exit 1
fi
# The metastability split must hold under a fresh seed too, not just
# the checked-in one: override the seed on both storm halves and
# require the same fixed-pages / jitter-recovers verdict.
for scn in scenarios/retry_storm_fixed.scn scenarios/retry_storm_jitter.scn; do
    ./build/examples/t4sim_cli check --scenario "$scn" --seed 2 \
        > /dev/null \
        || { echo "CI: $scn verdict flipped under --seed 2"; exit 1; }
done

# --- perf-regression gate --------------------------------------------
# Re-run the fast benches (sub-second each, plus the few-second E21
# forensics drill; the full set lives in tools/run_all.sh) and gate
# their metrics against the checked-in baselines. The sim is deterministic, so any drift is a real change:
# either a regression or an intentional one that should come with a
# `perf_gate.py --update` refresh of bench/baselines.json.
fast_benches="bench_a1_mxu_geometry bench_a3_bandwidth bench_e05_roofline
              bench_e07_latency_batch bench_e11_multitenancy
              bench_e18_latency_breakdown bench_e21_forensics
              bench_e22_llm"
bench_out="$workdir/bench_fast.txt"
for b in $fast_benches; do
    ./build/bench/"$b" >> "$bench_out" \
        || { echo "CI: bench $b failed"; exit 1; }
done
python3 tools/perf_gate.py --baselines bench/baselines.json \
    --current "$bench_out" || exit 1

# Negative test: the gate must actually trip. perf_gate's self-test
# perturbs a baselined metric beyond its band (and tightens a band to
# zero around a nudged value) and asserts both are flagged.
python3 tools/perf_gate.py --baselines bench/baselines.json \
    --current "$bench_out" --self-test || exit 1

echo "CI: ok (tests green, metrics schema satisfied, trace enriched," \
     "fault smoke: availability $avail, $retries retries," \
     "cluster outage smoke: availability $cavail above the N+k floor," \
     "black-box dump + span export valid, alert gate trips correctly," \
     "scenario matrix: $scn_count scenarios honored their contracts," \
     "tail forensics: keep discipline + exemplar joins + explain ok," \
     "report artifact + diff triage ok, perf gate green + self-test)"
