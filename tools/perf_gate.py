#!/usr/bin/env python3
"""Performance-regression gate for the experiment benches.

Every bench binary emits one machine-readable ``BENCH_JSON {...}``
summary line (see bench/bench_util.h).  This tool compares those lines
against the checked-in baselines in ``bench/baselines.json`` and exits
non-zero when any metric drifts outside its tolerance band — the CI
hook that keeps the simulator's modeled performance from regressing
silently (the repo-level analogue of the paper's lesson that DSAs need
built-in performance visibility).

Usage:
  perf_gate.py --current bench_output.json            # gate
  perf_gate.py --current bench_output.txt --update    # refresh bands
  perf_gate.py --reports base.json current.json       # gate two runs
  perf_gate.py --self-test                            # negative test

``--reports`` gates the final-metric snapshots of two ``report.json``
run artifacts (``t4sim_cli ... --report-out``) against each other
using the same tolerance/ignore machinery — the scripted face of
``t4sim_cli diff`` for CI pipelines that already carry a baselines
file.

``--current`` accepts either the JSON array ``tools/run_all.sh``
writes (bench_output.json) or raw bench stdout containing
``BENCH_JSON`` lines.  Only benches present in the current input are
gated, so CI can run a fast subset; pass --require-all to also fail
when a baselined bench is missing from the input.

Baselines format (bench/baselines.json)::

  {
    "version": 1,
    "default_tolerance": {"rel": 0.02, "abs": 1e-9},
    "tolerances": {"serving.latency_seconds": {"rel": 0.25}},
    "ignore": ["compiler.pass."],
    "ignore_benches": ["E16"],
    "benches": {"A1": {"metric{label=v}": 123.0, ...}, ...}
  }

Tolerance lookup is by longest matching *name prefix* (the part of
the flat key before ``{``), falling back to default_tolerance.  A
metric passes when |current - baseline| <= abs + rel * |baseline|.
Metrics whose name starts with an ``ignore`` prefix are never gated
nor baselined — host wall-clock timings (compiler pass seconds) vary
machine to machine and are not modeled performance.  Benches listed in
``ignore_benches`` are skipped entirely (E16 runs google-benchmark,
whose adaptive iteration counts make every cumulative counter
wall-clock dependent).
"""

import argparse
import json
import sys

HIST_FIELDS = ("count", "mean", "min", "max", "sum", "p50", "p95", "p99")


def load_bench_lines(path):
    """Returns {bench_id: {flat_metric_key: float}} from either a
    bench_output.json array or raw text with BENCH_JSON lines."""
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    stripped = text.lstrip()
    records = []
    if stripped.startswith("["):
        records = json.loads(stripped)
    else:
        for line in text.splitlines():
            if line.startswith("BENCH_JSON "):
                records.append(json.loads(line[len("BENCH_JSON "):]))
    benches = {}
    for rec in records:
        flat = {}
        for key, value in rec.get("counters", {}).items():
            flat[key] = float(value)
        for key, value in rec.get("gauges", {}).items():
            flat[key] = float(value)
        for key, body in rec.get("histograms", {}).items():
            for field in HIST_FIELDS:
                if field in body:
                    flat["%s.%s" % (key, field)] = float(body[field])
        benches[rec["bench"]] = flat
    return benches


def load_report_metrics(path):
    """Returns {flat_metric_key: float} from a versioned report.json
    run artifact (src/obs/report.h)."""
    with open(path, "r", encoding="utf-8") as f:
        report = json.load(f)
    version = report.get("schema_version")
    if version not in (1, 2):
        raise SystemExit("perf_gate: %s has report schema_version %r "
                         "(this tool reads 1..2)" % (path, version))
    return {key: float(value)
            for key, value in report.get("metrics", {}).items()}


def report_gate(baselines, base_metrics, cur_metrics, label="report"):
    """Gates one report metric snapshot against another, reusing the
    bench tolerance/ignore configuration from the baselines file."""
    shaped = dict(baselines)
    shaped["benches"] = {label: base_metrics}
    shaped.pop("ignore_benches", None)
    return compare(shaped, {label: cur_metrics})


def metric_name(flat_key):
    """Name part of a flat key: 'a.b{x=1}.p95' -> 'a.b'."""
    brace = flat_key.find("{")
    return flat_key if brace < 0 else flat_key[:brace]


def ignored(flat_key, baselines):
    name = metric_name(flat_key)
    return any(name.startswith(p) for p in baselines.get("ignore", []))


def tolerance_for(flat_key, baselines):
    """Longest-prefix tolerance lookup, falling back to the default."""
    name = metric_name(flat_key)
    best, best_len = None, -1
    for prefix, tol in baselines.get("tolerances", {}).items():
        if name.startswith(prefix) and len(prefix) > best_len:
            best, best_len = tol, len(prefix)
    default = baselines.get("default_tolerance", {})
    tol = dict(default)
    if best:
        tol.update(best)
    return float(tol.get("rel", 0.02)), float(tol.get("abs", 1e-9))


def compare(baselines, current, require_all=False):
    """Returns a list of human-readable violation strings."""
    violations = []
    base_benches = baselines.get("benches", {})
    skip = set(baselines.get("ignore_benches", []))
    for bench_id, base_metrics in sorted(base_benches.items()):
        if bench_id in skip:
            continue
        if bench_id not in current:
            if require_all:
                violations.append(
                    "%s: baselined bench missing from current run"
                    % bench_id)
            continue
        cur_metrics = current[bench_id]
        for key, base_value in sorted(base_metrics.items()):
            if ignored(key, baselines):
                continue
            rel, abs_tol = tolerance_for(key, baselines)
            if key not in cur_metrics:
                violations.append(
                    "%s: metric '%s' disappeared (baseline %g)"
                    % (bench_id, key, base_value))
                continue
            cur_value = cur_metrics[key]
            band = abs_tol + rel * abs(base_value)
            drift = cur_value - base_value
            if abs(drift) > band:
                violations.append(
                    "%s: %s drifted %+g (%.4g -> %.4g, band +/-%.4g, "
                    "rel %.3g)" % (bench_id, key, drift, base_value,
                                   cur_value, band, rel))
    return violations


def update(baselines, current):
    """Refreshes baseline values for every bench in the current run,
    keeping tolerances and benches not re-run."""
    benches = baselines.setdefault("benches", {})
    skip = set(baselines.get("ignore_benches", []))
    for bench_id, metrics in current.items():
        if bench_id in skip:
            continue
        benches[bench_id] = {k: metrics[k] for k in sorted(metrics)
                             if not ignored(k, baselines)}
    return baselines


def self_test(baselines_path, current_path):
    """Negative test for CI: the simulator is deterministic, so real
    runs drift by exactly zero and a green gate alone proves little.
    Perturb one baselined metric beyond its band and assert the gate
    flags it; tighten a band to zero around a perturbed value and
    assert that fails too; and assert the unperturbed input passes."""
    with open(baselines_path, "r", encoding="utf-8") as f:
        baselines = json.load(f)
    current = load_bench_lines(current_path)

    clean = compare(baselines, current)
    if clean:
        print("perf_gate self-test: baseline input did not pass:")
        for v in clean[:10]:
            print("  " + v)
        return 1

    # Pick a baselined metric with a nonzero value present in the
    # current run and push the current value far outside its band.
    for bench_id, metrics in sorted(baselines["benches"].items()):
        if bench_id not in current:
            continue
        for key in sorted(metrics):
            base_value = metrics[key]
            if key in current[bench_id] and base_value != 0.0:
                rel, abs_tol = tolerance_for(key, baselines)
                perturbed = {
                    bench_id: dict(
                        current[bench_id],
                        **{key: base_value * (1.0 + 10.0 * rel) +
                           10.0 * abs_tol + 1.0})}
                if not compare(baselines, perturbed):
                    print("perf_gate self-test: perturbed %s/%s "
                          "escaped the gate" % (bench_id, key))
                    return 1
                # Deliberately tightened band: zero tolerance around
                # a value nudged by less than the normal band.
                tight = json.loads(json.dumps(baselines))
                tight["default_tolerance"] = {"rel": 0.0, "abs": 0.0}
                tight["tolerances"] = {}
                nudged = {
                    bench_id: dict(current[bench_id],
                                   **{key: base_value + 1e-6 *
                                      max(1.0, abs(base_value))})}
                if not compare(tight, nudged):
                    print("perf_gate self-test: tightened band did "
                          "not flag %s/%s" % (bench_id, key))
                    return 1
                # Report mode: identical snapshots must pass and a
                # perturbed counter must trip under the same bands.
                snap = {"serving.completed{tenant=A}": 128.0,
                        "sim.mxu_utilization": 0.5}
                if report_gate(baselines, snap, dict(snap)):
                    print("perf_gate self-test: identical report "
                          "snapshots did not pass")
                    return 1
                bad = dict(snap,
                           **{"serving.completed{tenant=A}": 256.0})
                if not report_gate(baselines, snap, bad):
                    print("perf_gate self-test: perturbed report "
                          "snapshot escaped the gate")
                    return 1
                print("perf_gate self-test: ok (clean pass, perturbed "
                      "%s/%s caught, tightened band caught, report "
                      "mode caught)" % (bench_id, key))
                return 0
    print("perf_gate self-test: no usable baselined metric found")
    return 1


def main():
    parser = argparse.ArgumentParser(
        description="Gate bench metrics against bench/baselines.json")
    parser.add_argument("--baselines", default="bench/baselines.json")
    parser.add_argument("--current", default="bench_output.json",
                        help="bench_output.json array or raw bench "
                             "stdout with BENCH_JSON lines")
    parser.add_argument("--update", action="store_true",
                        help="rewrite baselines from the current run")
    parser.add_argument("--require-all", action="store_true",
                        help="fail when a baselined bench is absent")
    parser.add_argument("--self-test", action="store_true",
                        help="assert the gate trips on a perturbed "
                             "metric (negative CI test)")
    parser.add_argument("--reports", nargs=2,
                        metavar=("BASE", "CURRENT"),
                        help="gate two report.json run artifacts "
                             "against each other instead of benches")
    args = parser.parse_args()

    if args.self_test:
        return self_test(args.baselines, args.current)

    if args.reports:
        with open(args.baselines, "r", encoding="utf-8") as f:
            baselines = json.load(f)
        base_metrics = load_report_metrics(args.reports[0])
        cur_metrics = load_report_metrics(args.reports[1])
        violations = report_gate(baselines, base_metrics, cur_metrics)
        if violations:
            print("perf_gate: FAIL — %d report metric(s) outside "
                  "tolerance:" % len(violations))
            for v in violations:
                print("  " + v)
            return 1
        gated = sum(1 for k in base_metrics
                    if not ignored(k, baselines))
        print("perf_gate: ok (report mode, %d metrics gated)" % gated)
        return 0

    current = load_bench_lines(args.current)
    if not current:
        print("perf_gate: no BENCH_JSON records in %s" % args.current)
        return 1

    if args.update:
        try:
            with open(args.baselines, "r", encoding="utf-8") as f:
                baselines = json.load(f)
        except FileNotFoundError:
            baselines = {
                "version": 1,
                "default_tolerance": {"rel": 0.02, "abs": 1e-9},
                "tolerances": {
                    # Serving latencies come from a seeded but
                    # scheduling-sensitive discrete-event sim; give
                    # them (and anything downstream of them) slack.
                    "serving.": {"rel": 0.25},
                },
                # Host wall-clock timings are not modeled performance.
                "ignore": ["compiler.pass.", "e20.wall_"],
                # E16 is google-benchmark: adaptive iteration counts
                # make its cumulative counters wall-clock dependent.
                "ignore_benches": ["E16"],
                "benches": {},
            }
        update(baselines, current)
        with open(args.baselines, "w", encoding="utf-8") as f:
            json.dump(baselines, f, indent=1, sort_keys=True)
            f.write("\n")
        total = sum(len(m) for m in baselines["benches"].values())
        print("perf_gate: wrote %s (%d benches, %d metrics)"
              % (args.baselines, len(baselines["benches"]), total))
        return 0

    with open(args.baselines, "r", encoding="utf-8") as f:
        baselines = json.load(f)
    violations = compare(baselines, current, args.require_all)
    skip = set(baselines.get("ignore_benches", []))
    gated = [b for b in baselines.get("benches", {})
             if b in current and b not in skip]
    if violations:
        print("perf_gate: FAIL — %d metric(s) outside tolerance:"
              % len(violations))
        for v in violations:
            print("  " + v)
        return 1
    print("perf_gate: ok (%d benches gated: %s)"
          % (len(gated), ", ".join(sorted(gated)) or "none"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
